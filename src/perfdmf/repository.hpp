// PerfDMF-like performance data management.
//
// The original PerfDMF stores parallel profiles in a relational database
// under an Application -> Experiment -> Trial hierarchy and offers query
// utilities to the analysis layer (PerfExplorer). This module reproduces
// that hierarchy as a sharded on-disk store of binary PKB snapshots
// (pkb_format.hpp) with an in-memory LRU cache in front:
//
//   repo-dir/
//     index.tsv        app \t experiment \t trial \t relative-path
//     shard-00/ ... shard-15/   one .pkb file per trial, placed by a
//                               hash of (app, experiment, trial)
//
// Sharding keeps directory fan-out bounded for repositories with tens of
// thousands of trials and gives concurrent bulk ingest naturally disjoint
// write targets. The legacy flat layout (one .pkprof text snapshot per
// trial next to index.tsv) is still loadable; load() dispatches on the
// indexed file's extension.
//
// Two ways to open a repository:
//   load(dir)    eagerly materializes every trial (optionally fanned out
//                across a ThreadPool), like the original behaviour;
//   attach(dir)  reads only the index, then demand-loads trials through
//                get()/view() into an LRU cache with a configurable byte
//                budget, so a repository much larger than memory can be
//                queried.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "profile/profile.hpp"
#include "profile/trial_view.hpp"

namespace perfknow {
class ThreadPool;
}

namespace perfknow::perfdmf {

class PkbView;

/// Handle type the analysis layer passes around. Trials are shared:
/// analysis operations never copy the value cube.
using TrialPtr = std::shared_ptr<profile::Trial>;
using ConstTrialPtr = std::shared_ptr<const profile::Trial>;
/// Read-only handle; may be backed by an unmaterialized PkbView.
using TrialViewPtr = std::shared_ptr<const profile::TrialView>;

/// Application -> Experiment -> Trial store, the PerfDMF schema.
class Repository {
 public:
  /// Default cache budget for demand-loaded trials (bytes).
  static constexpr std::size_t kDefaultCacheBudget =
      std::size_t{256} * 1024 * 1024;

  Repository();
  Repository(Repository&&) noexcept;
  Repository& operator=(Repository&&) noexcept;
  Repository(const Repository&) = delete;
  Repository& operator=(const Repository&) = delete;
  ~Repository();

  /// Inserts (replacing any previous trial with the same coordinates).
  /// Directly-put trials are pinned: they are never evicted.
  void put(const std::string& application, const std::string& experiment,
           TrialPtr trial);

  /// put() plus a lineage link: the trial becomes the newest version of
  /// the (application, experiment) history chain. Its predecessor is the
  /// previous chain head, or `predecessor` when given explicitly (pass
  /// "" with an empty chain to start a new root). The link is stamped
  /// into the trial's metadata as "version.predecessor" so it survives
  /// inside the PKB snapshot too, and lineage is persisted by save() in
  /// lineage.tsv next to index.tsv.
  void put_version(const std::string& application,
                   const std::string& experiment, TrialPtr trial,
                   const std::string& predecessor = "");

  /// Version names in lineage order, oldest first. Experiments with no
  /// recorded lineage fall back to name order (= trials()), so history()
  /// stays usable on repositories written before lineage existed; any
  /// unlinked trials are appended after the chain in name order.
  [[nodiscard]] std::vector<std::string> history(
      const std::string& application, const std::string& experiment) const;

  /// Predecessor of `version` in the lineage chain; "" for a chain root
  /// or a version with no recorded link. Throws NotFoundError when the
  /// experiment itself is unknown.
  [[nodiscard]] std::string predecessor_of(const std::string& application,
                                           const std::string& experiment,
                                           const std::string& version) const;

  /// Drops all but the newest `keep` versions of the lineage chain,
  /// erasing their trials from the store. The surviving oldest version
  /// becomes the new chain root. Returns the removed names, oldest
  /// first. Does not delete backing snapshot files (save() to a fresh
  /// directory, or let the caller clean orphans).
  std::vector<std::string> prune_history(const std::string& application,
                                         const std::string& experiment,
                                         std::size_t keep);

  /// Fetches a trial; throws NotFoundError naming the missing level.
  /// In an attached repository this demand-loads (and caches) the
  /// snapshot; ParseError diagnostics name the snapshot file.
  [[nodiscard]] TrialPtr get(const std::string& application,
                             const std::string& experiment,
                             const std::string& trial) const;

  /// Read-only fetch. For PKB-backed trials this returns the mmap-backed
  /// PkbView without materializing the value cube — the cheap path for
  /// analysis that only reads. Falls back to the materialized trial for
  /// text snapshots and in-memory entries.
  [[nodiscard]] TrialViewPtr view(const std::string& application,
                                  const std::string& experiment,
                                  const std::string& trial) const;

  [[nodiscard]] bool contains(const std::string& application,
                              const std::string& experiment,
                              const std::string& trial) const noexcept;

  /// Removes a trial; returns false when it was absent. Does not delete
  /// the backing snapshot file.
  bool erase(const std::string& application, const std::string& experiment,
             const std::string& trial);

  [[nodiscard]] std::vector<std::string> applications() const;
  [[nodiscard]] std::vector<std::string> experiments(
      const std::string& application) const;
  [[nodiscard]] std::vector<std::string> trials(
      const std::string& application, const std::string& experiment) const;

  /// All trials of one experiment ordered by name — the unit a parametric
  /// study (scalability analysis) consumes.
  [[nodiscard]] std::vector<TrialPtr> experiment_trials(
      const std::string& application, const std::string& experiment) const;

  [[nodiscard]] std::size_t trial_count() const noexcept;

  /// Persists the whole repository in the sharded PKB layout: one binary
  /// snapshot per trial under shard-NN/, plus index.tsv, under `dir`
  /// (created if needed).
  void save(const std::filesystem::path& dir) const;

  /// Eagerly loads a repository previously written by save() — either
  /// the sharded PKB layout or the legacy flat .pkprof layout. Parse
  /// failures name the snapshot file that was being read. The overload
  /// taking a ThreadPool fans the per-trial snapshot parsing across it.
  [[nodiscard]] static Repository load(const std::filesystem::path& dir);
  [[nodiscard]] static Repository load(const std::filesystem::path& dir,
                                       ThreadPool& pool);

  /// Opens a repository lazily: only index.tsv is read. Trials are
  /// demand-loaded by get()/view() into an LRU cache capped at
  /// `cache_budget` bytes (counting snapshot sizes); least-recently-used
  /// unpinned entries are dropped first. Evicted trials stay alive for
  /// callers that still hold their shared_ptr.
  [[nodiscard]] static Repository attach(
      const std::filesystem::path& dir,
      std::size_t cache_budget = kDefaultCacheBudget);

  /// Adjusts the demand-load cache budget, evicting as needed.
  void set_cache_budget(std::size_t bytes);
  /// Bytes currently charged against the cache budget.
  [[nodiscard]] std::size_t cached_bytes() const;
  /// Number of trials currently resident in memory (pinned or cached).
  [[nodiscard]] std::size_t resident_trials() const;

 private:
  struct Entry;
  struct Cache;

  using EntryPtr = std::shared_ptr<Entry>;

  void insert_entry(const std::string& application,
                    const std::string& experiment, const std::string& trial,
                    EntryPtr entry);
  [[nodiscard]] const EntryPtr& find_entry(const std::string& application,
                                           const std::string& experiment,
                                           const std::string& trial) const;
  /// Demand-loads `entry`'s PKB view (publishing and charging it) and
  /// returns it. Caller must hold the entry's load mutex and must NOT
  /// hold the cache mutex: the file open/mmap/schema parse runs with the
  /// cache unlocked so other entries stay serviceable during I/O.
  [[nodiscard]] std::shared_ptr<PkbView> load_view(Entry& entry) const;
  /// Demand-loads `entry`'s materialized trial (same locking contract as
  /// load_view); returns the already-resident trial when there is one.
  [[nodiscard]] TrialPtr load_trial(Entry& entry) const;
  /// Streams one entry's snapshot to `dest` (temp file + atomic rename;
  /// verifies a schema-only view's column CRC before re-signing it).
  void save_entry(Entry& entry, const std::filesystem::path& dest) const;
  void touch_locked(Entry& entry) const;
  void charge_locked(Entry& entry, std::size_t bytes) const;
  void evict_to_budget_locked() const;

  static Repository open_index(const std::filesystem::path& dir,
                               bool eager, ThreadPool* pool,
                               std::size_t cache_budget);

  // application -> experiment -> trial-name -> entry
  std::map<std::string,
           std::map<std::string, std::map<std::string, EntryPtr>>>
      store_;
  /// One versioned trial in an experiment's history chain.
  struct VersionLink {
    std::string version;
    std::string predecessor;  ///< empty for a chain root
  };
  // application -> experiment -> ordered links, oldest first. Purely
  // additive metadata over store_: versions always name real trials.
  std::map<std::string, std::map<std::string, std::vector<VersionLink>>>
      lineage_;
  // Mutex-holding cache bookkeeping lives behind a pointer so the
  // Repository itself stays movable (load()/attach() return by value).
  std::unique_ptr<Cache> cache_;
};

}  // namespace perfknow::perfdmf
