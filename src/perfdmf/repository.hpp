// PerfDMF-like performance data management.
//
// The original PerfDMF stores parallel profiles in a relational database
// under an Application -> Experiment -> Trial hierarchy and offers query
// utilities to the analysis layer (PerfExplorer). This module reproduces
// that hierarchy with an in-memory repository plus durable text snapshots,
// and a reader for the classic TAU "profile.N.C.T" flat-file format.
#pragma once

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "profile/profile.hpp"

namespace perfknow::perfdmf {

/// Handle type the analysis layer passes around. Trials are shared:
/// analysis operations never copy the value cube.
using TrialPtr = std::shared_ptr<profile::Trial>;
using ConstTrialPtr = std::shared_ptr<const profile::Trial>;

/// Application -> Experiment -> Trial store, the PerfDMF schema.
class Repository {
 public:
  /// Inserts (replacing any previous trial with the same coordinates).
  void put(const std::string& application, const std::string& experiment,
           TrialPtr trial);

  /// Fetches a trial; throws NotFoundError naming the missing level.
  [[nodiscard]] TrialPtr get(const std::string& application,
                             const std::string& experiment,
                             const std::string& trial) const;

  [[nodiscard]] bool contains(const std::string& application,
                              const std::string& experiment,
                              const std::string& trial) const noexcept;

  /// Removes a trial; returns false when it was absent.
  bool erase(const std::string& application, const std::string& experiment,
             const std::string& trial);

  [[nodiscard]] std::vector<std::string> applications() const;
  [[nodiscard]] std::vector<std::string> experiments(
      const std::string& application) const;
  [[nodiscard]] std::vector<std::string> trials(
      const std::string& application, const std::string& experiment) const;

  /// All trials of one experiment ordered by name — the unit a parametric
  /// study (scalability analysis) consumes.
  [[nodiscard]] std::vector<TrialPtr> experiment_trials(
      const std::string& application, const std::string& experiment) const;

  [[nodiscard]] std::size_t trial_count() const noexcept;

  /// Persists the whole repository: one snapshot file per trial plus an
  /// index file, under `dir` (created if needed).
  void save(const std::filesystem::path& dir) const;

  /// Loads a repository previously written by save().
  [[nodiscard]] static Repository load(const std::filesystem::path& dir);

 private:
  // application -> experiment -> trial-name -> trial
  std::map<std::string,
           std::map<std::string, std::map<std::string, TrialPtr>>>
      store_;
};

}  // namespace perfknow::perfdmf
