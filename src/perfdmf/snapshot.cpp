#include "perfdmf/snapshot.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace perfknow::perfdmf {

namespace {

// Names and metadata values may contain anything except newline/tab once
// escaped. We escape backslash, tab and newline.
std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case '\\': out += '\\'; break;
        case 't': out += '\t'; break;
        case 'n': out += '\n'; break;
        default: out += s[i];
      }
    } else {
      out += s[i];
    }
  }
  return out;
}

}  // namespace

void write_snapshot(const profile::TrialView& trial, std::ostream& os) {
  os << "PKPROF\t1\n";
  os << "trial\t" << escape(trial.name()) << '\n';
  for (const auto& [k, v] : trial.all_metadata()) {
    os << "meta\t" << escape(k) << '\t' << escape(v) << '\n';
  }
  os << "threads\t" << trial.thread_count() << '\n';
  for (profile::MetricId m = 0; m < trial.metric_count(); ++m) {
    const auto& metric = trial.metric(m);
    os << "metric\t" << escape(metric.name) << '\t' << escape(metric.units)
       << '\t' << (metric.derived ? 1 : 0) << '\n';
  }
  for (profile::EventId e = 0; e < trial.event_count(); ++e) {
    const auto& ev = trial.event(e);
    const long long parent =
        ev.parent == profile::kNoEvent ? -1 : static_cast<long long>(ev.parent);
    os << "event\t" << parent << '\t' << escape(ev.group) << '\t'
       << escape(ev.name) << '\n';
  }
  os.precision(17);
  for (std::size_t t = 0; t < trial.thread_count(); ++t) {
    for (profile::EventId e = 0; e < trial.event_count(); ++e) {
      const auto ci = trial.calls(t, e);
      os << "d\t" << t << '\t' << e << '\t' << ci.calls << '\t'
         << ci.subcalls;
      for (profile::MetricId m = 0; m < trial.metric_count(); ++m) {
        os << '\t' << trial.inclusive(t, e, m) << '\t'
           << trial.exclusive(t, e, m);
      }
      os << '\n';
    }
  }
  os << "end\n";
}

profile::Trial read_snapshot(std::istream& is) {
  profile::Trial trial;
  std::string line;
  int lineno = 0;
  bool saw_header = false;
  bool saw_end = false;

  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto fields = strings::split(line, '\t');
    const std::string& tag = fields[0];

    if (!saw_header) {
      if (tag != "PKPROF" || fields.size() < 2 || fields[1] != "1") {
        throw ParseError("not a PKPROF version 1 snapshot", lineno);
      }
      saw_header = true;
      continue;
    }

    if (tag == "trial") {
      if (fields.size() < 2) throw ParseError("trial: missing name", lineno);
      trial.set_name(unescape(fields[1]));
    } else if (tag == "meta") {
      if (fields.size() < 3) throw ParseError("meta: need key+value", lineno);
      trial.set_metadata(unescape(fields[1]), unescape(fields[2]));
    } else if (tag == "threads") {
      if (fields.size() < 2) throw ParseError("threads: missing count", lineno);
      trial.set_thread_count(
          static_cast<std::size_t>(strings::parse_int(fields[1])));
    } else if (tag == "metric") {
      if (fields.size() < 4) throw ParseError("metric: bad field count", lineno);
      trial.add_metric(unescape(fields[1]), unescape(fields[2]),
                       strings::parse_int(fields[3]) != 0);
    } else if (tag == "event") {
      if (fields.size() < 4) throw ParseError("event: bad field count", lineno);
      const long long parent = strings::parse_int(fields[1]);
      trial.add_event(unescape(fields[3]),
                      parent < 0 ? profile::kNoEvent
                                 : static_cast<profile::EventId>(parent),
                      unescape(fields[2]));
    } else if (tag == "d") {
      const std::size_t expected = 5 + 2 * trial.metric_count();
      if (fields.size() != expected) {
        throw ParseError("data row: expected " + std::to_string(expected) +
                             " fields, got " + std::to_string(fields.size()),
                         lineno);
      }
      const auto t = static_cast<std::size_t>(strings::parse_int(fields[1]));
      const auto e =
          static_cast<profile::EventId>(strings::parse_int(fields[2]));
      trial.set_calls(t, e, strings::parse_double(fields[3]),
                      strings::parse_double(fields[4]));
      for (profile::MetricId m = 0; m < trial.metric_count(); ++m) {
        trial.set_inclusive(t, e, m,
                            strings::parse_double(fields[5 + 2 * m]));
        trial.set_exclusive(t, e, m,
                            strings::parse_double(fields[6 + 2 * m]));
      }
    } else if (tag == "end") {
      saw_end = true;
      break;
    } else {
      throw ParseError("unknown record tag '" + tag + "'", lineno);
    }
  }
  if (!saw_header) throw ParseError("empty snapshot", lineno);
  if (!saw_end) throw ParseError("truncated snapshot: missing 'end'", lineno);
  return trial;
}

std::string to_csv(const profile::TrialView& trial, const std::string& metric) {
  const auto m = trial.metric_id(metric);
  std::ostringstream os;
  os << "event";
  for (std::size_t t = 0; t < trial.thread_count(); ++t) {
    os << ",thread" << t;
  }
  os << '\n';
  for (profile::EventId e = 0; e < trial.event_count(); ++e) {
    std::string name = trial.event(e).name;
    // Quote commas out of event names ("a, b" is legal in callpaths).
    if (name.find(',') != std::string::npos) {
      name = "\"" + name + "\"";
    }
    os << name;
    os.precision(17);
    for (std::size_t t = 0; t < trial.thread_count(); ++t) {
      os << ',' << trial.exclusive(t, e, m);
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace perfknow::perfdmf
