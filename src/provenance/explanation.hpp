// Renderers for diagnosis provenance: an indented proof-tree text form
// ("why did this fire?"), a JSON form for tooling, and a Graphviz DOT
// form of the fact DAG — plus the inverse JSON parser that backs
// `pkx explain --from` (and is fuzzed through src/fuzz).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "provenance/provenance.hpp"

namespace perfknow::provenance {

/// A diagnosis plus the root of its inference DAG. The diagnosis fields
/// are copied (not referenced) so an Explanation outlives its harness.
struct Explanation {
  std::string rule;
  std::string problem;
  std::string event;
  std::string metric;
  double severity = 0.0;
  std::string message;
  std::string recommendation;
  /// The firing that emitted the diagnosis; matched facts chain further
  /// firings via BoundFact::derived_from. Never null for explanations
  /// produced by the engine; may be partial for ones parsed from JSON.
  std::shared_ptr<const FiringNode> root;
};

/// Human-readable proof tree, indented two spaces per level, ending in
/// a newline. Pinned by golden tests — treat the format as frozen.
[[nodiscard]] std::string to_text(const Explanation& e);

/// One JSON object per explanation (diagnosis + nested firing tree).
/// Deterministic: no timestamps, keys in fixed order.
[[nodiscard]] std::string to_json(const Explanation& e);
/// A JSON array of explanation objects (the `pkx explain --json` form).
[[nodiscard]] std::string to_json(const std::vector<Explanation>& es);

/// Graphviz DOT of the fact DAG: firings are boxes, facts are ellipses,
/// the diagnosis is a doubleoctagon; edges follow inference direction
/// (fact -> firing that consumed it, firing -> fact it asserted).
[[nodiscard]] std::string to_dot(const Explanation& e);
[[nodiscard]] std::string to_dot(const std::vector<Explanation>& es);

/// Parses the to_json form back (single object or array, in a tolerant
/// JSON subset). Shared DAG nodes come back as separate tree nodes.
/// Throws ParseError on malformed input; never crashes (fuzzed).
[[nodiscard]] std::vector<Explanation> explanations_from_json(
    const std::string& json);

}  // namespace perfknow::provenance
