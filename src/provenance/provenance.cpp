#include "provenance/provenance.hpp"

#include "provenance/explanation.hpp"
#include "rules/diagnosis.hpp"
#include "telemetry/telemetry.hpp"

namespace perfknow::provenance {

std::string_view to_string(ProvenanceMode mode) {
  switch (mode) {
    case ProvenanceMode::kOff: return "off";
    case ProvenanceMode::kRules: return "rules";
    case ProvenanceMode::kFull: return "full";
  }
  return "?";
}

void Recorder::push_source(std::string label,
                           std::vector<std::string> lineage) {
  Origin o;
  o.label = std::move(label);
  if (mode_ == ProvenanceMode::kFull) {
    o.lineage = std::move(lineage);
  }
  source_stack_.push_back(std::move(o));
}

void Recorder::pop_source() {
  if (!source_stack_.empty()) source_stack_.pop_back();
}

void Recorder::on_assert(rules::FactId id) {
  Origin o;
  if (current_) {
    o.firing = current_;
  } else if (!source_stack_.empty()) {
    o = source_stack_.back();
  } else {
    o.label = "(asserted outside any labelled source)";
  }
  origins_[id] = std::move(o);
}

void Recorder::begin_firing(
    const FiringInfo& info,
    const std::map<std::string, rules::FactValue>& bindings,
    const std::vector<MatchedFact>& matched) {
  auto node = std::make_shared<FiringNode>();
  node->id = next_firing_id_++;
  node->rule = info.rule;
  node->rule_loc = info.rule_loc;
  node->salience = info.salience;
  node->generation = info.generation;
  node->bindings = bindings;
  node->facts.reserve(matched.size());
  for (const auto& m : matched) {
    BoundFact bf;
    bf.id = m.id;
    bf.pattern_loc = m.pattern_loc;
    if (m.fact) {
      bf.type = m.fact.type();
      if (mode_ == ProvenanceMode::kFull) {
        m.fact.for_each_field(
            [&](const std::string& k, const rules::FactValue& v) {
              bf.fields.emplace(k, v);
            });
      }
    }
    if (const auto it = origins_.find(m.id); it != origins_.end()) {
      bf.derived_from = it->second.firing;
      bf.origin = it->second.label;
      bf.lineage = it->second.lineage;
    } else {
      // Facts asserted before provenance was switched on have no
      // recorded origin; keep the tree free of dangling edges anyway.
      bf.origin = "(asserted before provenance capture was enabled)";
    }
    node->facts.push_back(std::move(bf));
  }
  current_ = std::move(node);
}

void Recorder::end_firing() { current_.reset(); }

void Recorder::on_print(const std::string& line) {
  if (current_) current_->prints.push_back(line);
}

std::shared_ptr<const Explanation> Recorder::make_explanation(
    const rules::Diagnosis& d) const {
  if (!current_) return nullptr;
  static telemetry::Counter& captured =
      telemetry::counter("provenance.explanations_captured");
  captured.add();
  auto e = std::make_shared<Explanation>();
  e->rule = d.rule;
  e->problem = d.problem;
  e->event = d.event;
  e->metric = d.metric;
  e->severity = d.severity;
  e->message = d.message;
  e->recommendation = d.recommendation;
  e->root = current_;
  return e;
}

}  // namespace perfknow::provenance
