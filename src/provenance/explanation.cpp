#include "provenance/explanation.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <set>
#include <utility>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/strings.hpp"
#include "telemetry/telemetry.hpp"

namespace perfknow::provenance {

namespace {

telemetry::Counter& rendered_counter() {
  static telemetry::Counter& c =
      telemetry::counter("provenance.explanations_rendered");
  return c;
}

// The escaping and shortest-round-trip number policies live in
// common/json so the wire envelope and the explanation renderer cannot
// drift apart.
std::string json_escape(const std::string& s) { return json::escape(s); }
std::string json_number(double v) { return json::number(v); }

std::string json_value(const rules::FactValue& v) {
  if (const auto* d = std::get_if<double>(&v)) return json_number(*d);
  if (const auto* s = std::get_if<std::string>(&v)) {
    return "\"" + json_escape(*s) + "\"";
  }
  return std::get<bool>(v) ? "true" : "false";
}

// ---------------------------------------------------------------------
// Text proof tree
// ---------------------------------------------------------------------

void indent(std::string& out, int depth) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
}

std::string headline(const Explanation& e) {
  // Mirrors Diagnosis::to_string so the explanation opens with the
  // exact line the analyst already saw in the report.
  std::string out = "[" + e.problem + "] " + e.event;
  if (!e.metric.empty()) out += " {" + e.metric + "}";
  out += " (severity " + strings::format_double(e.severity, 2) +
         ", rule \"" + e.rule + "\")";
  if (!e.message.empty()) out += ": " + e.message;
  if (!e.recommendation.empty()) out += " -> " + e.recommendation;
  return out;
}

void render_firing(const FiringNode& f, int depth, std::string& out) {
  indent(out, depth);
  out += "because rule \"" + f.rule + "\" fired (" + f.rule_loc.str() +
         ", salience " + std::to_string(f.salience) + ", round " +
         std::to_string(f.generation) + ")\n";
  if (!f.bindings.empty()) {
    indent(out, depth + 1);
    out += "with ";
    bool first = true;
    for (const auto& [k, v] : f.bindings) {
      if (!first) out += ", ";
      first = false;
      out += k + " = " + rules::to_display(v);
    }
    out += "\n";
  }
  for (const auto& p : f.prints) {
    indent(out, depth + 1);
    out += "printed: " + p + "\n";
  }
  for (const auto& bf : f.facts) {
    indent(out, depth + 1);
    out += "matched " + bf.type + " #" + std::to_string(bf.id);
    if (bf.pattern_loc.known()) {
      out += " (pattern at " + bf.pattern_loc.str() + ")";
    }
    out += "\n";
    for (const auto& [k, v] : bf.fields) {
      indent(out, depth + 2);
      out += k + " = " + rules::to_display(v) + "\n";
    }
    if (bf.derived_from) {
      render_firing(*bf.derived_from, depth + 2, out);
    } else {
      indent(out, depth + 2);
      out += "from " +
             (bf.origin.empty() ? std::string("(unknown origin)")
                                : bf.origin) +
             "\n";
      for (const auto& line : bf.lineage) {
        indent(out, depth + 3);
        out += line + "\n";
      }
    }
  }
}

// ---------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------

void json_loc(const SourceLoc& loc, std::string& out) {
  out += "\"file\":\"" + json_escape(loc.file) + "\",\"line\":" +
         std::to_string(loc.line) + ",\"column\":" +
         std::to_string(loc.column);
}

void json_firing(const FiringNode& f, std::string& out) {
  out += "{\"id\":" + std::to_string(f.id) + ",\"rule\":\"" +
         json_escape(f.rule) + "\",";
  json_loc(f.rule_loc, out);
  out += ",\"salience\":" + std::to_string(f.salience) +
         ",\"generation\":" + std::to_string(f.generation) +
         ",\"bindings\":{";
  bool first = true;
  for (const auto& [k, v] : f.bindings) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(k) + "\":" + json_value(v);
  }
  out += "},\"facts\":[";
  first = true;
  for (const auto& bf : f.facts) {
    if (!first) out += ",";
    first = false;
    out += "{\"fact\":" + std::to_string(bf.id) + ",\"type\":\"" +
           json_escape(bf.type) + "\",";
    json_loc(bf.pattern_loc, out);
    out += ",\"fields\":{";
    bool ff = true;
    for (const auto& [k, v] : bf.fields) {
      if (!ff) out += ",";
      ff = false;
      out += "\"" + json_escape(k) + "\":" + json_value(v);
    }
    out += "}";
    if (!bf.origin.empty()) {
      out += ",\"origin\":\"" + json_escape(bf.origin) + "\"";
    }
    if (!bf.lineage.empty()) {
      out += ",\"lineage\":[";
      bool fl = true;
      for (const auto& line : bf.lineage) {
        if (!fl) out += ",";
        fl = false;
        out += "\"" + json_escape(line) + "\"";
      }
      out += "]";
    }
    if (bf.derived_from) {
      out += ",\"derived_from\":";
      json_firing(*bf.derived_from, out);
    }
    out += "}";
  }
  out += "],\"prints\":[";
  first = true;
  for (const auto& p : f.prints) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(p) + "\"";
  }
  out += "]}";
}

void json_explanation(const Explanation& e, std::string& out) {
  out += "{\"schema\":\"perfknow.explanation/1\",\"diagnosis\":{";
  out += "\"rule\":\"" + json_escape(e.rule) + "\",\"problem\":\"" +
         json_escape(e.problem) + "\",\"event\":\"" +
         json_escape(e.event) + "\",\"metric\":\"" +
         json_escape(e.metric) + "\",\"severity\":" +
         json_number(e.severity) + ",\"message\":\"" +
         json_escape(e.message) + "\",\"recommendation\":\"" +
         json_escape(e.recommendation) + "\"},\"firing\":";
  if (e.root) {
    json_firing(*e.root, out);
  } else {
    out += "null";
  }
  out += "}";
}

// ---------------------------------------------------------------------
// DOT
// ---------------------------------------------------------------------

std::string dot_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

struct DotWriter {
  std::string body;
  std::set<std::size_t> firings;
  std::set<rules::FactId> facts;
  std::set<std::string> edges;

  void edge(const std::string& from, const std::string& to) {
    const std::string e = "  " + from + " -> " + to + ";\n";
    if (edges.insert(e).second) body += e;
  }

  void visit(const FiringNode& f) {
    const std::string rnode = "r" + std::to_string(f.id);
    if (firings.insert(f.id).second) {
      body += "  " + rnode + " [shape=box,label=\"rule \\\"" +
              dot_escape(f.rule) + "\\\"\\n" + dot_escape(f.rule_loc.str()) +
              ", round " + std::to_string(f.generation) + "\"];\n";
    }
    for (const auto& bf : f.facts) {
      const std::string fnode = "f" + std::to_string(bf.id);
      if (facts.insert(bf.id).second) {
        std::string label = bf.type + " #" + std::to_string(bf.id);
        int shown = 0;
        for (const auto& [k, v] : bf.fields) {
          if (++shown > 6) {
            label += "\n...";
            break;
          }
          label += "\n" + k + " = " + rules::to_display(v);
        }
        body += "  " + fnode + " [shape=ellipse,label=\"" +
                dot_escape(label) + "\"];\n";
        if (!bf.derived_from && !bf.origin.empty()) {
          const std::string onode = "o" + std::to_string(bf.id);
          body += "  " + onode + " [shape=note,label=\"" +
                  dot_escape(bf.origin) + "\"];\n";
          edge(onode, fnode);
        }
      }
      edge(fnode, rnode);
      if (bf.derived_from) {
        visit(*bf.derived_from);
        edge("r" + std::to_string(bf.derived_from->id), fnode);
      }
    }
  }
};

// ---------------------------------------------------------------------
// JSON ingest (the `pkx explain --from` path; fuzzed)
// ---------------------------------------------------------------------
//
// The value model and parser live in common/json.{hpp,cpp} (hoisted from
// here, behaviour unchanged); what remains is the mapping back onto
// Explanation.

using JsonValue = json::Value;

// --- mapping the JSON value model back onto Explanation ---------------

double num_or(const JsonValue* v, double fallback) {
  return v != nullptr && v->kind == JsonValue::Kind::kNumber ? v->number
                                                             : fallback;
}

std::string text_or(const JsonValue* v) {
  return v != nullptr && v->kind == JsonValue::Kind::kString ? v->text : "";
}

SourceLoc loc_from(const JsonValue& obj) {
  SourceLoc loc;
  loc.file = text_or(obj.find("file"));
  loc.line = static_cast<int>(num_or(obj.find("line"), 0));
  loc.column = static_cast<int>(num_or(obj.find("column"), 0));
  return loc;
}

rules::FactValue fact_value_from(const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kBool: return v.boolean;
    case JsonValue::Kind::kString: return v.text;
    case JsonValue::Kind::kNumber: return v.number;
    default: return 0.0;
  }
}

std::shared_ptr<const FiringNode> firing_from(const JsonValue& obj);

BoundFact bound_fact_from(const JsonValue& obj) {
  BoundFact bf;
  bf.id = static_cast<rules::FactId>(num_or(obj.find("fact"), 0));
  bf.type = text_or(obj.find("type"));
  bf.pattern_loc = loc_from(obj);
  if (const auto* fields = obj.find("fields");
      fields != nullptr && fields->kind == JsonValue::Kind::kObject) {
    for (const auto& [k, v] : fields->members) {
      bf.fields[k] = fact_value_from(v);
    }
  }
  bf.origin = text_or(obj.find("origin"));
  if (const auto* lineage = obj.find("lineage");
      lineage != nullptr && lineage->kind == JsonValue::Kind::kArray) {
    for (const auto& item : lineage->items) {
      if (item.kind == JsonValue::Kind::kString) {
        bf.lineage.push_back(item.text);
      }
    }
  }
  if (const auto* from = obj.find("derived_from");
      from != nullptr && from->kind == JsonValue::Kind::kObject) {
    bf.derived_from = firing_from(*from);
  }
  return bf;
}

std::shared_ptr<const FiringNode> firing_from(const JsonValue& obj) {
  auto f = std::make_shared<FiringNode>();
  f->id = static_cast<std::size_t>(num_or(obj.find("id"), 0));
  f->rule = text_or(obj.find("rule"));
  f->rule_loc = loc_from(obj);
  f->salience = static_cast<int>(num_or(obj.find("salience"), 0));
  f->generation = static_cast<std::size_t>(num_or(obj.find("generation"), 0));
  if (const auto* bindings = obj.find("bindings");
      bindings != nullptr && bindings->kind == JsonValue::Kind::kObject) {
    for (const auto& [k, v] : bindings->members) {
      f->bindings[k] = fact_value_from(v);
    }
  }
  if (const auto* facts = obj.find("facts");
      facts != nullptr && facts->kind == JsonValue::Kind::kArray) {
    for (const auto& item : facts->items) {
      if (item.kind == JsonValue::Kind::kObject) {
        f->facts.push_back(bound_fact_from(item));
      }
    }
  }
  if (const auto* prints = obj.find("prints");
      prints != nullptr && prints->kind == JsonValue::Kind::kArray) {
    for (const auto& item : prints->items) {
      if (item.kind == JsonValue::Kind::kString) {
        f->prints.push_back(item.text);
      }
    }
  }
  return f;
}

Explanation explanation_from(const JsonValue& obj) {
  Explanation e;
  if (const auto* d = obj.find("diagnosis");
      d != nullptr && d->kind == JsonValue::Kind::kObject) {
    e.rule = text_or(d->find("rule"));
    e.problem = text_or(d->find("problem"));
    e.event = text_or(d->find("event"));
    e.metric = text_or(d->find("metric"));
    e.severity = num_or(d->find("severity"), 0.0);
    e.message = text_or(d->find("message"));
    e.recommendation = text_or(d->find("recommendation"));
  }
  if (const auto* f = obj.find("firing");
      f != nullptr && f->kind == JsonValue::Kind::kObject) {
    e.root = firing_from(*f);
  }
  return e;
}

}  // namespace

std::string to_text(const Explanation& e) {
  rendered_counter().add();
  std::string out = headline(e) + "\n";
  if (e.root) {
    render_firing(*e.root, 1, out);
  } else {
    indent(out, 1);
    out += "(no recorded inference chain)\n";
  }
  return out;
}

std::string to_json(const Explanation& e) {
  rendered_counter().add();
  std::string out;
  json_explanation(e, out);
  out += "\n";
  return out;
}

std::string to_json(const std::vector<Explanation>& es) {
  rendered_counter().add();
  std::string out = "[";
  bool first = true;
  for (const auto& e : es) {
    if (!first) out += ",\n ";
    first = false;
    json_explanation(e, out);
  }
  out += "]\n";
  return out;
}

std::string to_dot(const std::vector<Explanation>& es) {
  rendered_counter().add();
  DotWriter w;
  std::size_t dn = 0;
  for (const auto& e : es) {
    const std::string dnode = "d" + std::to_string(dn++);
    w.body += "  " + dnode + " [shape=doubleoctagon,label=\"" +
              dot_escape(headline(e)) + "\"];\n";
    if (e.root) {
      w.visit(*e.root);
      w.edge("r" + std::to_string(e.root->id), dnode);
    }
  }
  return "digraph provenance {\n  rankdir=BT;\n  node [fontsize=10];\n" +
         w.body + "}\n";
}

std::string to_dot(const Explanation& e) {
  return to_dot(std::vector<Explanation>{e});
}

std::vector<Explanation> explanations_from_json(const std::string& json) {
  const JsonValue root = perfknow::json::parse(json);
  std::vector<Explanation> out;
  if (root.kind == JsonValue::Kind::kArray) {
    for (const auto& item : root.items) {
      if (item.kind != JsonValue::Kind::kObject) {
        throw ParseError("explanation array element is not an object");
      }
      out.push_back(explanation_from(item));
    }
  } else if (root.kind == JsonValue::Kind::kObject) {
    out.push_back(explanation_from(root));
  } else {
    throw ParseError("explanation JSON must be an object or array");
  }
  return out;
}

}  // namespace perfknow::provenance
