#include "provenance/lineage.hpp"

namespace perfknow::provenance {

namespace {

// Stamp wire format: fields joined by '|' with backslash escaping
// ("op|trial|operand..."), chosen over JSON so the stamp survives the
// simplest metadata serializers unmangled.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\' || c == '|') out += '\\';
    out += c;
  }
  return out;
}

std::vector<std::string> split_unescape(const std::string& s) {
  std::vector<std::string> out(1);
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      out.back() += s[++i];
    } else if (s[i] == '|') {
      out.emplace_back();
    } else {
      out.back() += s[i];
    }
  }
  return out;
}

}  // namespace

void stamp(profile::Trial& trial, const MetricLineage& lineage) {
  std::string value = escape(lineage.operation) + "|" + escape(lineage.trial);
  for (const auto& op : lineage.operands) {
    value += "|" + escape(op);
  }
  trial.set_metadata(kMetricKeyPrefix + lineage.metric, std::move(value));
}

std::optional<MetricLineage> lineage_of(const profile::TrialView& trial,
                                        const std::string& metric) {
  const auto value = trial.metadata(kMetricKeyPrefix + metric);
  if (!value) return std::nullopt;
  auto fields = split_unescape(*value);
  if (fields.size() < 2) return std::nullopt;
  MetricLineage l;
  l.metric = metric;
  l.operation = std::move(fields[0]);
  l.trial = std::move(fields[1]);
  l.operands.assign(std::make_move_iterator(fields.begin() + 2),
                    std::make_move_iterator(fields.end()));
  return l;
}

std::vector<std::string> lineage_chain(const profile::TrialView& trial,
                                       const std::string& metric) {
  std::vector<std::string> out;
  std::vector<std::string> seen;
  // Worklist resolution with a visited set: malformed stamps could name
  // themselves as operands, and chains are short in practice.
  std::vector<std::string> work{metric};
  constexpr std::size_t kMaxLines = 64;
  while (!work.empty() && out.size() < kMaxLines) {
    const std::string m = work.front();
    work.erase(work.begin());
    bool visited = false;
    for (const auto& s : seen) {
      if (s == m) {
        visited = true;
        break;
      }
    }
    if (visited) continue;
    seen.push_back(m);
    if (const auto l = lineage_of(trial, m)) {
      std::string line = "\"" + m + "\" = " + l->operation + " of [";
      for (std::size_t i = 0; i < l->operands.size(); ++i) {
        if (i > 0) line += ", ";
        line += l->operands[i];
        work.push_back(l->operands[i]);
      }
      line += "] on trial '" + l->trial + "'";
      out.push_back(std::move(line));
      continue;
    }
    const auto id = trial.find_metric(m);
    if (!id) {
      out.push_back("\"" + m + "\": not present on trial '" + trial.name() +
                    "'");
    } else if (trial.metric(*id).derived) {
      out.push_back("\"" + m + "\": derived column of trial '" +
                    trial.name() + "' (no recorded lineage)");
    } else {
      out.push_back("\"" + m + "\": raw column of trial '" + trial.name() +
                    "'");
    }
  }
  return out;
}

}  // namespace perfknow::provenance
