// Provenance capture for the rule engine: the causal chain behind every
// diagnosis, recorded as a DAG of rule firings and the facts they bound.
//
// The recorder is owned by RuleHarness and is null when provenance is
// off, so the engine's hot path pays exactly one pointer-null branch per
// firing / assert / print. When enabled it observes three things:
//
//   * every asserted fact, tagged with its origin — either the firing
//     that asserted it (a lineage edge in the DAG) or, for baseline
//     facts asserted from the analysis layer, a source label pushed by
//     rules::ProvenanceSource (e.g. "assert_load_balance_facts(...)")
//     plus the metric-lineage chain back to raw PKB columns;
//   * every firing: rule name + .rules source location, salience, the
//     delta-window generation (match round) that admitted it, the full
//     binding set, and a per-pattern snapshot of the matched facts;
//   * every print emitted while a firing runs.
//
// The DAG is cycle-free by construction: fact ids are monotonic and the
// firing that asserts a fact always completes before any firing that
// matches it, so derived_from edges only point at earlier firings.
//
// Modes: kOff records nothing; kRules records firings, locations,
// bindings, and the DAG; kFull additionally snapshots the matched
// facts' field values and keeps analysis-layer metric lineage.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/source_loc.hpp"
#include "rules/fact.hpp"

namespace perfknow::rules {
struct Diagnosis;
}  // namespace perfknow::rules

namespace perfknow::provenance {

enum class ProvenanceMode { kOff, kRules, kFull };

[[nodiscard]] std::string_view to_string(ProvenanceMode mode);

struct FiringNode;

/// One fact as it was bound by one pattern position of one firing.
struct BoundFact {
  rules::FactId id = 0;
  std::string type;
  /// Field values at match time (kFull only; empty under kRules).
  std::map<std::string, rules::FactValue> fields;
  /// Where the matching pattern sits in its .rules source.
  SourceLoc pattern_loc;
  /// Analysis-layer origin label for baseline facts ("assert_stall_facts
  /// (trial='X', metric='TIME')"); empty when the fact was asserted by a
  /// rule firing (then derived_from is set) or capture missed it.
  std::string origin;
  /// Metric-lineage chain down to raw trial columns (kFull only).
  std::vector<std::string> lineage;
  /// The firing that asserted this fact; null for baseline facts.
  std::shared_ptr<const FiringNode> derived_from;
};

/// One rule firing: the node type of the provenance DAG.
struct FiringNode {
  std::size_t id = 0;  ///< 1-based, in firing order
  std::string rule;
  SourceLoc rule_loc;
  int salience = 0;
  /// Match round (delta-window generation) that admitted the activation.
  std::size_t generation = 0;
  std::map<std::string, rules::FactValue> bindings;
  std::vector<BoundFact> facts;  ///< one per pattern, in pattern order
  std::vector<std::string> prints;
};

struct Explanation;

/// Everything the engine tells the recorder about one firing, minus the
/// matched facts (passed separately). Kept free of rules::Rule so this
/// header does not depend on the engine.
struct FiringInfo {
  std::string rule;
  SourceLoc rule_loc;
  int salience = 0;
  std::size_t generation = 0;
};

/// A matched fact handed to begin_firing: the id, a handle to the live
/// fact in the columnar store (null when it was already retracted), and
/// the source location of the pattern that bound it.
struct MatchedFact {
  rules::FactId id = 0;
  rules::FactRef fact;
  SourceLoc pattern_loc;
};

class Recorder {
 public:
  explicit Recorder(ProvenanceMode mode) : mode_(mode) {}

  [[nodiscard]] ProvenanceMode mode() const noexcept { return mode_; }

  /// Labels baseline facts asserted until the matching pop_source with
  /// their analysis-layer origin; nests (innermost label wins).
  void push_source(std::string label, std::vector<std::string> lineage);
  void pop_source();

  /// Observes a fact entering working memory. Inside a firing the fact
  /// gets a lineage edge to that firing; outside, the current source
  /// label (or a placeholder when none is pushed).
  void on_assert(rules::FactId id);

  void begin_firing(const FiringInfo& info,
                    const std::map<std::string, rules::FactValue>& bindings,
                    const std::vector<MatchedFact>& matched);
  void end_firing();

  /// Observes a print emitted by the current firing (no-op outside one).
  void on_print(const std::string& line);

  /// Builds the full explanation for a diagnosis emitted by the current
  /// firing. Null when called outside a firing (diagnosis made directly
  /// on the harness without a rule, which has no inference chain).
  [[nodiscard]] std::shared_ptr<const Explanation> make_explanation(
      const rules::Diagnosis& d) const;

 private:
  /// How one fact came to exist: exactly one of firing / label is set.
  struct Origin {
    std::shared_ptr<const FiringNode> firing;
    std::string label;
    std::vector<std::string> lineage;
  };

  ProvenanceMode mode_;
  std::vector<Origin> source_stack_;
  std::unordered_map<rules::FactId, Origin> origins_;
  std::shared_ptr<FiringNode> current_;
  std::size_t next_firing_id_ = 1;
};

}  // namespace perfknow::provenance
