// Metric lineage: where a derived metric column came from.
//
// analysis::derive_metric / scale_metric stamp each derived metric into
// the trial's free-form metadata under "provenance.metric.<name>", so
// the lineage survives every save/load format (TAU, CSV, JSON, PKB)
// without a binary-format change. Whole-trial transforms
// (aggregate_threads, merge_trials) stamp "provenance.trial" the same
// way. lineage_chain() resolves a metric recursively down to raw
// columns — the "bottoms out in raw trial facts" guarantee the
// explanation renderer relies on.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "profile/profile.hpp"

namespace perfknow::provenance {

/// Metadata key prefix for per-metric stamps.
inline constexpr const char* kMetricKeyPrefix = "provenance.metric.";
/// Metadata key for whole-trial transform stamps.
inline constexpr const char* kTrialKey = "provenance.trial";

/// How one derived metric was computed.
struct MetricLineage {
  std::string metric;                 ///< the derived metric's name
  std::string operation;              ///< "derive(/)", "scale(1e-06)", ...
  std::vector<std::string> operands;  ///< operand metric names
  std::string trial;                  ///< trial the operands came from
};

/// Records the stamp into the trial's metadata (overwrites any previous
/// stamp for the same metric).
void stamp(profile::Trial& trial, const MetricLineage& lineage);

/// Reads the stamp for `metric`; nullopt for raw metrics, missing
/// stamps, or stamps that fail to decode.
[[nodiscard]] std::optional<MetricLineage> lineage_of(
    const profile::TrialView& trial, const std::string& metric);

/// Human-readable chain from `metric` down to raw columns, one line per
/// step:
///   "(A / B)" = derive(/) of [A, B] on trial 'x'
///   "A": raw column of trial 'x'
/// Bounded depth; never throws on malformed stamps.
[[nodiscard]] std::vector<std::string> lineage_chain(
    const profile::TrialView& trial, const std::string& metric);

}  // namespace perfknow::provenance
