#include "apps/msap/alignment.hpp"

#include <algorithm>
#include <array>
#include <limits>

#include "common/error.hpp"

namespace perfknow::apps::msap {

namespace {

constexpr int kGapSymbol = 20;  // index after the 20 amino acids

int symbol_index(char c) {
  static constexpr std::string_view kAlphabet = "ACDEFGHIKLMNPQRSTVWY";
  const auto pos = kAlphabet.find(c);
  if (pos == std::string_view::npos) {
    throw InvalidArgumentError(std::string("unknown residue '") + c + "'");
  }
  return static_cast<int>(pos);
}

/// A profile column: residue counts plus gap count.
using Column = std::array<double, 21>;

std::vector<Column> profile_of(const std::vector<std::string>& rows) {
  if (rows.empty()) return {};
  std::vector<Column> cols(rows[0].size());
  for (auto& c : cols) c.fill(0.0);
  for (const auto& row : rows) {
    if (row.size() != cols.size()) {
      throw InvalidArgumentError("profile rows have unequal lengths");
    }
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (row[i] == '-') {
        cols[i][kGapSymbol] += 1.0;
      } else {
        cols[i][symbol_index(row[i])] += 1.0;
      }
    }
  }
  return cols;
}

/// Sum-of-pairs score of aligning two profile columns.
double column_score(const Column& a, const Column& b,
                    const SwScoring& scoring) {
  double score = 0.0;
  for (int x = 0; x < 21; ++x) {
    if (a[x] == 0.0) continue;
    for (int y = 0; y < 21; ++y) {
      if (b[y] == 0.0) continue;
      double s;
      if (x == kGapSymbol || y == kGapSymbol) {
        // Gap against anything: half a gap penalty (both-gap is free).
        s = (x == y) ? 0.0 : scoring.gap * 0.5;
      } else {
        s = (x == y) ? scoring.match : scoring.mismatch;
      }
      score += a[x] * b[y] * s;
    }
  }
  return score;
}

/// Global (Needleman-Wunsch) alignment of two profiles; returns the edit
/// path as pairs of (use-column-from-A, use-column-from-B) where -1
/// means a gap column.
std::vector<std::pair<int, int>> align_profiles(
    const std::vector<Column>& a, const std::vector<Column>& b,
    const SwScoring& scoring, double rows_a, double rows_b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  const double gap_a = scoring.gap * rows_a;  // gap inserted into A's rows
  const double gap_b = scoring.gap * rows_b;

  std::vector<std::vector<double>> dp(
      n + 1, std::vector<double>(m + 1, 0.0));
  // 0 = diag, 1 = up (consume A), 2 = left (consume B)
  std::vector<std::vector<char>> back(n + 1, std::vector<char>(m + 1, 0));
  for (std::size_t i = 1; i <= n; ++i) {
    dp[i][0] = dp[i - 1][0] + gap_b;
    back[i][0] = 1;
  }
  for (std::size_t j = 1; j <= m; ++j) {
    dp[0][j] = dp[0][j - 1] + gap_a;
    back[0][j] = 2;
  }
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      const double diag =
          dp[i - 1][j - 1] + column_score(a[i - 1], b[j - 1], scoring);
      const double up = dp[i - 1][j] + gap_b;
      const double left = dp[i][j - 1] + gap_a;
      dp[i][j] = diag;
      back[i][j] = 0;
      if (up > dp[i][j]) {
        dp[i][j] = up;
        back[i][j] = 1;
      }
      if (left > dp[i][j]) {
        dp[i][j] = left;
        back[i][j] = 2;
      }
    }
  }
  std::vector<std::pair<int, int>> path;
  std::size_t i = n;
  std::size_t j = m;
  while (i > 0 || j > 0) {
    const char dir = back[i][j];
    if (dir == 0 && i > 0 && j > 0) {
      path.emplace_back(static_cast<int>(i - 1), static_cast<int>(j - 1));
      --i;
      --j;
    } else if (dir == 1 && i > 0) {
      path.emplace_back(static_cast<int>(i - 1), -1);
      --i;
    } else {
      path.emplace_back(-1, static_cast<int>(j - 1));
      --j;
    }
  }
  std::reverse(path.begin(), path.end());
  return path;
}

/// Applies an edit path to the aligned rows of one side.
std::vector<std::string> apply_path(const std::vector<std::string>& rows,
                                    const std::vector<std::pair<int, int>>& path,
                                    bool side_a) {
  std::vector<std::string> out(rows.size());
  for (const auto& [ia, ib] : path) {
    const int idx = side_a ? ia : ib;
    for (std::size_t r = 0; r < rows.size(); ++r) {
      out[r] += idx < 0 ? '-' : rows[r][static_cast<std::size_t>(idx)];
    }
  }
  return out;
}

}  // namespace

std::vector<int> GuideTree::leaves_under(int node) const {
  if (node < 0 || node >= static_cast<int>(nodes.size())) {
    throw InvalidArgumentError("GuideTree: bad node index");
  }
  const Node& n = nodes[static_cast<std::size_t>(node)];
  if (n.sequence >= 0) return {n.sequence};
  auto left = leaves_under(n.left);
  const auto right = leaves_under(n.right);
  left.insert(left.end(), right.begin(), right.end());
  return left;
}

std::vector<std::vector<double>> distance_matrix(
    const std::vector<std::string>& sequences, const SwScoring& scoring) {
  const std::size_t n = sequences.size();
  std::vector<double> self(n);
  for (std::size_t i = 0; i < n; ++i) {
    self[i] = smith_waterman_score(sequences[i], sequences[i], scoring);
  }
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double denom = std::max(1.0, std::min(self[i], self[j]));
      const double score =
          smith_waterman_score(sequences[i], sequences[j], scoring);
      const double dist = std::clamp(1.0 - score / denom, 0.0, 1.0);
      d[i][j] = dist;
      d[j][i] = dist;
    }
  }
  return d;
}

GuideTree upgma(const std::vector<std::vector<double>>& distances) {
  const std::size_t n = distances.size();
  if (n < 2) {
    throw InvalidArgumentError("upgma: need at least 2 sequences");
  }
  for (const auto& row : distances) {
    if (row.size() != n) {
      throw InvalidArgumentError("upgma: distance matrix must be square");
    }
  }

  GuideTree tree;
  tree.nodes.reserve(2 * n - 1);
  std::vector<int> active;  // node index per live cluster
  for (std::size_t i = 0; i < n; ++i) {
    GuideTree::Node leaf;
    leaf.sequence = static_cast<int>(i);
    tree.nodes.push_back(leaf);
    active.push_back(static_cast<int>(i));
  }
  // Working copy of cluster distances, indexed like `active`.
  std::vector<std::vector<double>> d = distances;

  while (active.size() > 1) {
    // Closest pair (ties broken by lowest indices: deterministic).
    std::size_t bi = 0;
    std::size_t bj = 1;
    double best = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < active.size(); ++i) {
      for (std::size_t j = i + 1; j < active.size(); ++j) {
        if (d[i][j] < best) {
          best = d[i][j];
          bi = i;
          bj = j;
        }
      }
    }
    GuideTree::Node merged;
    merged.left = active[bi];
    merged.right = active[bj];
    merged.height = best / 2.0;
    merged.size = tree.nodes[active[bi]].size + tree.nodes[active[bj]].size;
    const int merged_index = static_cast<int>(tree.nodes.size());
    tree.nodes.push_back(merged);

    // UPGMA average-linkage update into slot bi; drop slot bj.
    const double wi = tree.nodes[active[bi]].size;
    const double wj = tree.nodes[active[bj]].size;
    for (std::size_t k = 0; k < active.size(); ++k) {
      if (k == bi || k == bj) continue;
      d[bi][k] = (wi * d[bi][k] + wj * d[bj][k]) / (wi + wj);
      d[k][bi] = d[bi][k];
    }
    active[bi] = merged_index;
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(bj));
    d.erase(d.begin() + static_cast<std::ptrdiff_t>(bj));
    for (auto& row : d) {
      row.erase(row.begin() + static_cast<std::ptrdiff_t>(bj));
    }
  }
  return tree;
}

namespace {

std::string newick_of(const GuideTree& tree, int node) {
  const auto& n = tree.nodes[static_cast<std::size_t>(node)];
  if (n.sequence >= 0) return std::to_string(n.sequence);
  char height[32];
  std::snprintf(height, sizeof height, "%.2f", n.height);
  return "(" + newick_of(tree, n.left) + "," + newick_of(tree, n.right) +
         "):" + height;
}

}  // namespace

std::string to_newick(const GuideTree& tree) {
  if (tree.nodes.empty()) return "";
  return newick_of(tree, tree.root());
}

std::vector<std::string> progressive_alignment(
    const std::vector<std::string>& sequences, const GuideTree& tree,
    const SwScoring& scoring) {
  if (tree.leaf_count() != sequences.size()) {
    throw InvalidArgumentError(
        "progressive_alignment: tree does not match the sequence count");
  }
  // Per tree node: the aligned rows and the sequence indices they carry.
  struct Partial {
    std::vector<std::string> rows;
    std::vector<int> order;
  };
  std::vector<Partial> partial(tree.nodes.size());
  for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
    const auto& node = tree.nodes[i];
    if (node.sequence >= 0) {
      partial[i].rows = {sequences[static_cast<std::size_t>(node.sequence)]};
      partial[i].order = {node.sequence};
      continue;
    }
    const auto& a = partial[static_cast<std::size_t>(node.left)];
    const auto& b = partial[static_cast<std::size_t>(node.right)];
    const auto path = align_profiles(
        profile_of(a.rows), profile_of(b.rows), scoring,
        static_cast<double>(a.rows.size()),
        static_cast<double>(b.rows.size()));
    auto rows = apply_path(a.rows, path, /*side_a=*/true);
    const auto rows_b = apply_path(b.rows, path, /*side_a=*/false);
    rows.insert(rows.end(), rows_b.begin(), rows_b.end());
    partial[i].rows = std::move(rows);
    partial[i].order = a.order;
    partial[i].order.insert(partial[i].order.end(), b.order.begin(),
                            b.order.end());
  }
  const auto& final_partial = partial[static_cast<std::size_t>(tree.root())];
  std::vector<std::string> out(sequences.size());
  for (std::size_t r = 0; r < final_partial.order.size(); ++r) {
    out[static_cast<std::size_t>(final_partial.order[r])] =
        final_partial.rows[r];
  }
  return out;
}

double sum_of_pairs_score(const std::vector<std::string>& alignment,
                          const SwScoring& scoring) {
  if (alignment.empty()) return 0.0;
  const std::size_t len = alignment[0].size();
  for (const auto& row : alignment) {
    if (row.size() != len) {
      throw InvalidArgumentError(
          "sum_of_pairs_score: rows have unequal lengths");
    }
  }
  double total = 0.0;
  for (std::size_t i = 0; i < alignment.size(); ++i) {
    for (std::size_t j = i + 1; j < alignment.size(); ++j) {
      for (std::size_t c = 0; c < len; ++c) {
        const char a = alignment[i][c];
        const char b = alignment[j][c];
        if (a == '-' && b == '-') continue;
        if (a == '-' || b == '-') {
          total += scoring.gap * 0.5;
        } else {
          total += a == b ? scoring.match : scoring.mismatch;
        }
      }
    }
  }
  return total;
}

MsaPipelineResult align_sequences(const std::vector<std::string>& sequences,
                                  const SwScoring& scoring) {
  MsaPipelineResult out;
  out.distances = distance_matrix(sequences, scoring);
  out.tree = upgma(out.distances);
  out.alignment = progressive_alignment(sequences, out.tree, scoring);
  return out;
}

}  // namespace perfknow::apps::msap
