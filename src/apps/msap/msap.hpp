// MSAP: the multiple-sequence-alignment case study (paper §III-A).
//
// ClustalW-style progressive alignment in three stages — distance matrix
// (Smith-Waterman over all sequence pairs), guided tree, progressive
// alignment along the tree. Stage 1 dominates and is parallelized with a
// work-shared outer loop over sequences; the iteration space is
// triangular (pair (i,j), j > i), so static-even scheduling is badly
// imbalanced while dynamic,1 is nearly ideal — the behaviour Fig. 4
// reports.
//
// Two layers:
//  * A real Smith-Waterman kernel (smith_waterman_score) plus a synthetic
//    protein-sequence generator — implemented and tested for real, and
//    used directly by the examples on small inputs.
//  * A workload driver (run_msap) that executes the stage structure on
//    the simulated OpenMP runtime. Per-pair cost is the exact DP cell
//    count (len_i x len_j) times a per-cell cycle cost, so the schedule
//    dynamics are identical to running the kernel, at any problem size.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "machine/machine.hpp"
#include "profile/profile.hpp"
#include "runtime/omp.hpp"

namespace perfknow::apps::msap {

/// Scoring for the Smith-Waterman kernel (linear gap penalty).
struct SwScoring {
  int match = 3;
  int mismatch = -1;
  int gap = -2;
};

/// Optimal local-alignment score of two sequences, O(|a| x |b|) time,
/// O(min) memory. Implemented with a rolling row, as a real MSA stage-1
/// kernel would be.
[[nodiscard]] int smith_waterman_score(const std::string& a,
                                       const std::string& b,
                                       const SwScoring& scoring = {});

/// Synthetic protein sequences over the 20-letter amino-acid alphabet
/// with bounded-Pareto length skew (real databases are heavy-tailed
/// toward short sequences — the source of MSAP's load imbalance).
[[nodiscard]] std::vector<std::string> generate_sequences(
    std::size_t count, std::size_t min_len, std::size_t max_len,
    double alpha, std::uint64_t seed);

struct MsapConfig {
  std::size_t num_sequences = 400;
  std::size_t min_len = 100;
  std::size_t max_len = 900;
  double length_alpha = 1.05;  ///< bounded-Pareto shape (lower = more skew)
  unsigned threads = 16;
  runtime::Schedule schedule = runtime::Schedule::static_even();
  std::uint64_t seed = 2008;
  /// DP cell cost in cycles (integer max/compare chain per cell).
  double cycles_per_cell = 6.0;
  /// When true, actually runs the Smith-Waterman kernel for every pair
  /// (exact same control flow; only viable for small sequence sets).
  bool compute_alignments = false;
};

/// Result of one MSAP run on the simulated machine.
struct MsapResult {
  profile::Trial trial;                    ///< TAU-style profile
  runtime::ParallelForResult stage1_loop;  ///< the parallel outer loop
  std::uint64_t elapsed_cycles = 0;        ///< whole application
  std::uint64_t stage1_cycles = 0;         ///< distance-matrix stage
  std::uint64_t stage2_cycles = 0;         ///< guided tree (serial)
  std::uint64_t stage3_cycles = 0;         ///< progressive align (serial)
  double elapsed_seconds = 0.0;
  /// Filled when compute_alignments: distance_matrix[i*n+j] scores.
  std::vector<int> scores;
};

/// Runs the three-stage MSAP workload with `config.threads` simulated
/// OpenMP threads on `machine`. The machine must have at least
/// config.threads CPUs.
[[nodiscard]] MsapResult run_msap(machine::Machine& machine,
                                  const MsapConfig& config);

/// Sum of DP cells of the whole distance matrix (the stage-1 work metric).
[[nodiscard]] double total_cells(const std::vector<std::string>& seqs);

}  // namespace perfknow::apps::msap
