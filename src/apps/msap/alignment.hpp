// Stages 2 and 3 of the ClustalW pipeline, implemented for real:
// UPGMA guide-tree construction over the stage-1 distance matrix, and
// profile-based progressive alignment along that tree.
//
// The paper's §III-A describes the three stages ("distance matrix,
// guided tree, and progressive alignment along the tree"); only stage 1
// is parallelized, but a credible reproduction carries real, tested
// implementations of all three. These run on actual sequences; the
// performance simulation (msap.hpp) models their cost at scale.
#pragma once

#include <string>
#include <vector>

#include "apps/msap/msap.hpp"

namespace perfknow::apps::msap {

/// Binary guide tree produced by UPGMA clustering. Nodes [0, n) are the
/// leaves (node i = sequence i); internal nodes follow in merge order;
/// the last node is the root (for n >= 2).
struct GuideTree {
  struct Node {
    int left = -1;       ///< child node index (-1 for leaves)
    int right = -1;
    int sequence = -1;   ///< leaf: index of the sequence; internal: -1
    double height = 0.0; ///< UPGMA merge height (half the cluster distance)
    int size = 1;        ///< leaves under this node
  };
  std::vector<Node> nodes;

  [[nodiscard]] int root() const {
    return static_cast<int>(nodes.size()) - 1;
  }
  [[nodiscard]] std::size_t leaf_count() const {
    return (nodes.size() + 1) / 2;
  }
  /// Sequence indices under `node`, left to right.
  [[nodiscard]] std::vector<int> leaves_under(int node) const;
};

/// Pairwise evolutionary distances from Smith-Waterman scores:
/// d(i,j) = 1 - score(i,j) / min(selfScore(i), selfScore(j)), clamped to
/// [0, 1]. The diagonal is 0.
[[nodiscard]] std::vector<std::vector<double>> distance_matrix(
    const std::vector<std::string>& sequences, const SwScoring& scoring = {});

/// UPGMA (average-linkage) clustering over a symmetric distance matrix.
/// Throws InvalidArgumentError on non-square/undersized input.
[[nodiscard]] GuideTree upgma(
    const std::vector<std::vector<double>>& distances);

/// Renders the tree in Newick-ish form for inspection, e.g.
/// "((0,2):0.10,1):0.25".
[[nodiscard]] std::string to_newick(const GuideTree& tree);

/// Progressive multiple alignment along the guide tree using
/// profile-profile Needleman-Wunsch (sum-of-pairs column scoring with the
/// SwScoring parameters, linear gaps). Returns one aligned (padded)
/// string per input sequence, all of equal length, in input order.
[[nodiscard]] std::vector<std::string> progressive_alignment(
    const std::vector<std::string>& sequences, const GuideTree& tree,
    const SwScoring& scoring = {});

/// Sum-of-pairs score of a finished alignment (higher is better); the
/// standard MSA quality measure used to sanity-check stage 3.
[[nodiscard]] double sum_of_pairs_score(
    const std::vector<std::string>& alignment,
    const SwScoring& scoring = {});

/// Full three-stage pipeline on real data (small inputs).
struct MsaPipelineResult {
  std::vector<std::vector<double>> distances;
  GuideTree tree;
  std::vector<std::string> alignment;
};
[[nodiscard]] MsaPipelineResult align_sequences(
    const std::vector<std::string>& sequences, const SwScoring& scoring = {});

}  // namespace perfknow::apps::msap
