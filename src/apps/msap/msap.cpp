#include "apps/msap/msap.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "hwcounters/synthesize.hpp"
#include "instrument/trial_builder.hpp"

namespace perfknow::apps::msap {

int smith_waterman_score(const std::string& a, const std::string& b,
                         const SwScoring& scoring) {
  if (a.empty() || b.empty()) return 0;
  // Rolling single row of H; local alignment floors cells at 0.
  std::vector<int> prev(b.size() + 1, 0);
  std::vector<int> cur(b.size() + 1, 0);
  int best = 0;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = 0;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const int sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? scoring.match
                                                          : scoring.mismatch);
      const int del = prev[j] + scoring.gap;
      const int ins = cur[j - 1] + scoring.gap;
      cur[j] = std::max({0, sub, del, ins});
      best = std::max(best, cur[j]);
    }
    std::swap(prev, cur);
  }
  return best;
}

std::vector<std::string> generate_sequences(std::size_t count,
                                            std::size_t min_len,
                                            std::size_t max_len,
                                            double alpha,
                                            std::uint64_t seed) {
  if (min_len == 0 || max_len < min_len) {
    throw InvalidArgumentError(
        "generate_sequences: need 0 < min_len <= max_len");
  }
  static constexpr char kAminoAcids[] = "ACDEFGHIKLMNPQRSTVWY";
  Rng rng(seed);
  std::vector<std::string> seqs;
  seqs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto len = static_cast<std::size_t>(rng.pareto_bounded(
        static_cast<double>(min_len), static_cast<double>(max_len), alpha));
    std::string s;
    s.reserve(len);
    for (std::size_t k = 0; k < len; ++k) {
      s += kAminoAcids[rng.uniform_int(0, 19)];
    }
    seqs.push_back(std::move(s));
  }
  return seqs;
}

double total_cells(const std::vector<std::string>& seqs) {
  double cells = 0.0;
  double suffix = 0.0;
  for (std::size_t i = seqs.size(); i-- > 0;) {
    cells += static_cast<double>(seqs[i].size()) * suffix;
    suffix += static_cast<double>(seqs[i].size());
  }
  return cells;
}

MsapResult run_msap(machine::Machine& machine, const MsapConfig& config) {
  if (config.num_sequences < 2) {
    throw InvalidArgumentError("run_msap: need at least 2 sequences");
  }
  const auto seqs =
      generate_sequences(config.num_sequences, config.min_len,
                         config.max_len, config.length_alpha, config.seed);
  const std::size_t n = seqs.size();

  // Suffix length sums: outer iteration i aligns i against all j > i,
  // so its DP cell count is len_i * sum_{j>i} len_j.
  std::vector<double> suffix_len(n + 1, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    suffix_len[i] = suffix_len[i + 1] + static_cast<double>(seqs[i].size());
  }

  runtime::OmpTeam team(machine, config.threads);
  MsapResult result;
  if (config.compute_alignments) {
    result.scores.assign(n * n, 0);
  }

  // ---- stage 1: distance matrix (parallel outer loop) -----------------
  const auto body = [&](std::uint64_t i, unsigned thread) -> std::uint64_t {
    (void)thread;
    const auto idx = static_cast<std::size_t>(i);
    if (config.compute_alignments) {
      for (std::size_t j = idx + 1; j < n; ++j) {
        const int score = smith_waterman_score(seqs[idx], seqs[j]);
        result.scores[idx * n + j] = score;
        result.scores[j * n + idx] = score;
      }
    }
    const double cells =
        static_cast<double>(seqs[idx].size()) * suffix_len[idx + 1];
    return static_cast<std::uint64_t>(cells * config.cycles_per_cell);
  };
  result.stage1_loop =
      team.parallel_for(n - 1, config.schedule, body);
  result.stage1_cycles = result.stage1_loop.elapsed_cycles;

  // ---- stages 2 and 3 (serial, master thread) --------------------------
  const double mean_len = suffix_len[0] / static_cast<double>(n);
  // Guided tree: neighbour-joining style pass over the distance matrix.
  result.stage2_cycles = static_cast<std::uint64_t>(
      40.0 * static_cast<double>(n) * static_cast<double>(n));
  // Progressive alignment along the tree: n-1 profile merges of
  // length-m^2 DP each. Profile columns compare cheaper than full SW
  // cells (no per-cell traceback bookkeeping): ~2/3 of the stage-1 rate.
  result.stage3_cycles = static_cast<std::uint64_t>(
      0.67 * config.cycles_per_cell * static_cast<double>(n) * mean_len *
      mean_len);

  result.elapsed_cycles =
      result.stage1_cycles + result.stage2_cycles + result.stage3_cycles;
  result.elapsed_seconds = machine.seconds(result.elapsed_cycles);

  // ---- build the TAU-style profile -------------------------------------
  using hwcounters::Counter;
  instrument::TrialBuilder builder(
      "msap_" + config.schedule.name() + "_" +
          std::to_string(config.threads) + "t",
      config.threads, machine.config().clock_ghz,
      {Counter::kInstructionsCompleted, Counter::kInstructionsIssued,
       Counter::kFpOps, Counter::kBackEndBubbleAll, Counter::kL1dMisses,
       Counter::kL2References, Counter::kL2Misses, Counter::kL3Misses,
       Counter::kL1dStallCycles, Counter::kFpStallCycles,
       Counter::kLocalMemoryAccesses, Counter::kRemoteMemoryAccesses,
       Counter::kLoads, Counter::kStores});

  hwcounters::Synthesizer synth(machine);
  const auto& loop = result.stage1_loop;
  const std::uint64_t region_overhead = team.costs().fork_cycles +
                                        team.costs().join_cycles +
                                        loop.barrier_cost;
  const std::uint64_t serial_cycles =
      result.stage2_cycles + result.stage3_cycles;

  for (unsigned t = 0; t < config.threads; ++t) {
    builder.enter(t, "main");

    builder.enter(t, "distance_matrix");
    builder.add_work(t, region_overhead);
    builder.enter(t, "outer_loop");
    builder.add_work(t, loop.dispatch_cycles[t] +
                            loop.barrier_wait_cycles[t]);
    builder.enter(t, "inner_loop");
    {
      // Synthesize the DP kernel counters for this thread's share. The
      // kernel is integer compare/max chains over an L1-resident row.
      const double cells = static_cast<double>(loop.work_cycles[t]) /
                           config.cycles_per_cell;
      hwcounters::KernelWork w;
      w.int_instructions = cells * 4.0;
      w.branches = cells;
      w.branch_mispredict_rate = 0.04;  // data-dependent max chains
      w.ilp = 2.6;
      const auto row = machine.address_space().allocate(
          static_cast<std::uint64_t>(mean_len) * 4 + 64);
      hwcounters::MemoryStream s;
      s.base = row;
      s.extent_bytes = static_cast<std::uint64_t>(mean_len) * 4;
      s.stride_bytes = 4;
      s.passes = std::max(1.0, cells / std::max(1.0, mean_len));
      s.write_fraction = 0.5;
      w.streams.push_back(s);
      const auto kr = synth.run(w, team.cpu_of(t));
      builder.add_work(t, loop.work_cycles[t], &kr.counters);
    }
    builder.leave(t, "inner_loop");
    builder.leave(t, "outer_loop");
    builder.leave(t, "distance_matrix");

    if (t == 0) {
      builder.enter(t, "guided_tree");
      builder.add_work(t, result.stage2_cycles);
      builder.leave(t, "guided_tree");
      builder.enter(t, "progressive_alignment");
      builder.add_work(t, result.stage3_cycles);
      builder.leave(t, "progressive_alignment");
    } else {
      // Worker threads idle while the master runs the serial stages.
      builder.enter(t, "omp_idle");
      builder.add_work(t, serial_cycles);
      builder.leave(t, "omp_idle");
    }
    builder.leave(t, "main");
  }

  builder.set_metadata("application", "MSAP");
  builder.set_metadata("schedule", config.schedule.name());
  builder.set_metadata("threads", std::to_string(config.threads));
  builder.set_metadata("sequences", std::to_string(n));
  builder.set_metadata("seed", std::to_string(config.seed));
  result.trial = builder.build();
  return result;
}

}  // namespace perfknow::apps::msap
