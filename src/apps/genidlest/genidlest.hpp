// GenIDLEST performance-study driver (paper §III-B / §III-C).
//
// Reproduces the structure of the fluid-dynamics case study: a multiblock
// structured-grid incompressible-flow solver whose hot procedures are
// diff_coeff, the BiCGSTAB driver, matxvec (7-point stencil), the
// pc/pc_jac_glb preconditioner, and exchange_var__ (ghost-cell boundary
// updates, with mpi_send_recv_ko underneath).
//
// Two execution models over the same kernels:
//  * MPI — blocks distributed over ranks, ghost updates via nonblocking
//    point-to-point with pack/unpack copies, dot products via allreduce.
//    Each rank initializes its own blocks (first touch places pages
//    locally).
//  * OpenMP — one address space. The *unoptimized* variant initializes
//    all data sequentially (every page lands on node 0 — the first-touch
//    pathology) and performs all boundary copies serially on the master
//    thread through intermediate buffers (the 30 / 126 copies of the
//    paper). The *optimized* variant initializes in parallel and does
//    direct parallel copies.
//
// Kernels are compiled through the OpenUH substrate (optimization level
// shapes instruction counts/ILP — the §III-C power study) and costed by
// the hardware-counter synthesizer on the machine's NUMA page table, so
// remote-memory effects emerge from placement rather than being scripted.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "analysis/mpi_analysis.hpp"
#include "hwcounters/counters.hpp"
#include "machine/machine.hpp"
#include "openuh/passes.hpp"
#include "profile/profile.hpp"
#include "runtime/omp_collector.hpp"

namespace perfknow::apps::genidlest {

enum class Model { kMpi, kOpenMP };

[[nodiscard]] std::string_view to_string(Model m);

struct GenConfig {
  // Problem geometry (default: the 90-degree rib case).
  std::size_t nx = 128, ny = 128, nz = 128;
  unsigned num_blocks = 32;

  unsigned nprocs = 16;           ///< MPI ranks or OpenMP threads
  Model model = Model::kOpenMP;
  bool optimized = false;         ///< parallel init + direct parallel copies
  openuh::OptLevel opt = openuh::OptLevel::kO2;

  unsigned timesteps = 2;
  unsigned solver_iters = 10;     ///< BiCGSTAB iterations per step

  std::uint64_t seed = 90;

  // Calibration constants (see DESIGN.md):
  /// Per-accessor slowdown of memory stalls when several CPUs hammer one
  /// node's memory (bandwidth contention on the home node).
  double memory_contention_coeff = 0.55;
  /// Ghost-plane copy cost, cycles per byte. High relative to a bulk
  /// memcpy because boundary updates gather small strided segments for
  /// the x/y-direction block faces.
  double copy_cycles_per_byte = 1.9;
  /// Extra cost multiplier on the *parallel* shared-memory copies of the
  /// optimized OpenMP exchange: each thread's direct copies read the
  /// neighbour block's pages (often on another node) and the concurrent
  /// copies contend on the NUMAlink, unlike MPI's local halo buffers.
  double shared_copy_penalty = 2.8;

  /// The 45-degree rib case: 128x80x64 in 8 blocks of 128x80x8.
  [[nodiscard]] static GenConfig rib45();
  /// The 90-degree rib case: 128^3 in 32 blocks of 128x128x4.
  [[nodiscard]] static GenConfig rib90();

  [[nodiscard]] std::size_t cells_per_block() const {
    return nx * ny * (nz / num_blocks);
  }
  /// Bytes of one ghost face (an x-y plane).
  [[nodiscard]] std::uint64_t face_bytes() const { return nx * ny * 8; }
};

struct GenResult {
  profile::Trial trial;
  std::uint64_t elapsed_cycles = 0;
  double elapsed_seconds = 0.0;
  /// Counters summed over all ranks/threads and all kernels.
  hwcounters::CounterVector aggregate_counters;
  /// PMPI communication statistics (MPI model only; null for OpenMP).
  std::shared_ptr<analysis::CommRecorder> comm;
  /// OpenMP collector-API statistics (OpenMP model only; null for MPI).
  std::shared_ptr<runtime::OmpCollector> omp;
};

/// Runs the workload on `machine` (which must have >= nprocs CPUs).
/// A fresh machine should be used per run: page placement from previous
/// runs persists in the machine's page table by design.
[[nodiscard]] GenResult run_genidlest(machine::Machine& machine,
                                      const GenConfig& config);

}  // namespace perfknow::apps::genidlest
