// Real numerical core of the GenIDLEST stand-in: a 7-point Laplacian on
// a structured grid, BiCGSTAB with Jacobi preconditioning, and the
// multiblock ghost-cell decomposition.
//
// These numerics actually run (examples and tests solve Poisson problems
// with them); the performance *simulation* in genidlest.hpp uses the same
// kernel structure through analytic cost descriptors so that 128^3-scale
// studies stay fast. Keeping both honest against each other is what makes
// the reproduction credible: the simulated kernels are the ones tested
// here.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace perfknow::apps::genidlest {

/// A structured grid block of nx x ny x nz interior cells with one ghost
/// layer in z (the direction the multiblock decomposition splits).
class GridBlock {
 public:
  GridBlock(std::size_t nx, std::size_t ny, std::size_t nz);

  [[nodiscard]] std::size_t nx() const noexcept { return nx_; }
  [[nodiscard]] std::size_t ny() const noexcept { return ny_; }
  [[nodiscard]] std::size_t nz() const noexcept { return nz_; }
  [[nodiscard]] std::size_t cells() const noexcept { return nx_ * ny_ * nz_; }

  /// Value access including ghost planes: k in [-1, nz].
  [[nodiscard]] double& at(std::vector<double>& f, std::size_t i,
                           std::size_t j, std::ptrdiff_t k) const;
  [[nodiscard]] double at(const std::vector<double>& f, std::size_t i,
                          std::size_t j, std::ptrdiff_t k) const;

  /// Storage size including the two ghost planes.
  [[nodiscard]] std::size_t storage() const noexcept {
    return nx_ * ny_ * (nz_ + 2);
  }
  /// Allocates a zeroed field with ghosts.
  [[nodiscard]] std::vector<double> make_field() const {
    return std::vector<double>(storage(), 0.0);
  }

 private:
  std::size_t nx_, ny_, nz_;
};

/// Multiblock domain: `blocks` GridBlocks stacked along z, periodic.
struct MultiblockDomain {
  std::size_t nx = 0, ny = 0, nz_total = 0;
  std::size_t num_blocks = 0;

  [[nodiscard]] std::size_t nz_per_block() const {
    return nz_total / num_blocks;
  }
};

/// 7-point Laplacian apply on one block: y = A x (interior only; ghost
/// planes of x must be current). h is the (uniform) grid spacing.
void apply_laplacian(const GridBlock& g, const std::vector<double>& x,
                     std::vector<double>& y, double h);

/// Exchanges ghost planes between adjacent blocks (periodic in z),
/// the real counterpart of exchange_var__.
void exchange_ghosts(const MultiblockDomain& dom,
                     std::vector<std::vector<double>>& fields,
                     const GridBlock& g);

/// Result of a linear solve.
struct SolveResult {
  std::size_t iterations = 0;
  double residual_norm = 0.0;
  bool converged = false;
};

/// Preconditioner choice. GenIDLEST's "virtual cache blocks" are small
/// z-slabs inside each block used as additive-Schwarz subdomains: they
/// both strengthen the preconditioner and keep the working set
/// cache-resident (the paper quotes Wang & Tafti on exactly this).
enum class PreconditionerKind {
  kJacobi,           ///< pointwise diagonal scaling
  kAdditiveSchwarz,  ///< non-overlapping cache-block subdomain solves
};

struct SolverOptions {
  PreconditionerKind preconditioner = PreconditionerKind::kJacobi;
  /// z-extent of one virtual cache block (must divide nz per block).
  std::size_t cache_block_nz = 2;
  /// Gauss-Seidel sweeps of the local subdomain solve.
  unsigned schwarz_sweeps = 2;
  double tolerance = 1e-8;
  std::size_t max_iterations = 500;
};

/// BiCGSTAB on the multiblock domain, matrix-free via apply_laplacian +
/// ghost exchange. Solves A u = rhs where A is the (negated, SPD)
/// 7-point Laplacian with Dirichlet-like behaviour provided by zero x/y
/// boundaries and periodic z. Initial guess is the content of `u`.
[[nodiscard]] SolveResult bicgstab_solve(const MultiblockDomain& dom,
                                         std::vector<std::vector<double>>& u,
                                         const std::vector<std::vector<double>>& rhs,
                                         double h,
                                         const SolverOptions& options);

/// Back-compat convenience: Jacobi preconditioning.
[[nodiscard]] SolveResult bicgstab_solve(
    const MultiblockDomain& dom, std::vector<std::vector<double>>& u,
    const std::vector<std::vector<double>>& rhs, double h, double tolerance,
    std::size_t max_iterations);

/// Residual max-norm ||rhs - A u||_inf over all blocks (for verification).
[[nodiscard]] double residual_norm(const MultiblockDomain& dom,
                                   const std::vector<std::vector<double>>& u,
                                   const std::vector<std::vector<double>>& rhs,
                                   double h);

}  // namespace perfknow::apps::genidlest
