#include "apps/genidlest/solver.hpp"

#include <cmath>

#include "common/error.hpp"

namespace perfknow::apps::genidlest {

GridBlock::GridBlock(std::size_t nx, std::size_t ny, std::size_t nz)
    : nx_(nx), ny_(ny), nz_(nz) {
  if (nx == 0 || ny == 0 || nz == 0) {
    throw InvalidArgumentError("GridBlock: dimensions must be positive");
  }
}

double& GridBlock::at(std::vector<double>& f, std::size_t i, std::size_t j,
                      std::ptrdiff_t k) const {
  return f[((static_cast<std::size_t>(k + 1)) * ny_ + j) * nx_ + i];
}

double GridBlock::at(const std::vector<double>& f, std::size_t i,
                     std::size_t j, std::ptrdiff_t k) const {
  return f[((static_cast<std::size_t>(k + 1)) * ny_ + j) * nx_ + i];
}

void apply_laplacian(const GridBlock& g, const std::vector<double>& x,
                     std::vector<double>& y, double h) {
  const double inv_h2 = 1.0 / (h * h);
  for (std::ptrdiff_t k = 0; k < static_cast<std::ptrdiff_t>(g.nz()); ++k) {
    for (std::size_t j = 0; j < g.ny(); ++j) {
      for (std::size_t i = 0; i < g.nx(); ++i) {
        const double c = g.at(x, i, j, k);
        double nb = 0.0;
        if (i > 0) nb += g.at(x, i - 1, j, k);
        if (i + 1 < g.nx()) nb += g.at(x, i + 1, j, k);
        if (j > 0) nb += g.at(x, i, j - 1, k);
        if (j + 1 < g.ny()) nb += g.at(x, i, j + 1, k);
        nb += g.at(x, i, j, k - 1);  // ghost or interior
        nb += g.at(x, i, j, k + 1);
        g.at(y, i, j, k) = (6.0 * c - nb) * inv_h2;
      }
    }
  }
}

void exchange_ghosts(const MultiblockDomain& dom,
                     std::vector<std::vector<double>>& fields,
                     const GridBlock& g) {
  if (fields.size() != dom.num_blocks) {
    throw InvalidArgumentError("exchange_ghosts: field/block count mismatch");
  }
  const std::size_t nz = g.nz();
  for (std::size_t b = 0; b < dom.num_blocks; ++b) {
    const std::size_t prev = (b + dom.num_blocks - 1) % dom.num_blocks;
    const std::size_t next = (b + 1) % dom.num_blocks;
    for (std::size_t j = 0; j < g.ny(); ++j) {
      for (std::size_t i = 0; i < g.nx(); ++i) {
        // Bottom ghost of b = top interior plane of prev.
        g.at(fields[b], i, j, -1) =
            g.at(fields[prev], i, j,
                 static_cast<std::ptrdiff_t>(nz) - 1);
        // Top ghost of b = bottom interior plane of next.
        g.at(fields[b], i, j, static_cast<std::ptrdiff_t>(nz)) =
            g.at(fields[next], i, j, 0);
      }
    }
  }
}

namespace {

double dot_blocks(const GridBlock& g,
                  const std::vector<std::vector<double>>& a,
                  const std::vector<std::vector<double>>& b) {
  double sum = 0.0;
  for (std::size_t blk = 0; blk < a.size(); ++blk) {
    for (std::ptrdiff_t k = 0; k < static_cast<std::ptrdiff_t>(g.nz());
         ++k) {
      for (std::size_t j = 0; j < g.ny(); ++j) {
        for (std::size_t i = 0; i < g.nx(); ++i) {
          sum += g.at(a[blk], i, j, k) * g.at(b[blk], i, j, k);
        }
      }
    }
  }
  return sum;
}

/// Applies z = M^-1 r per block. Jacobi divides by the diagonal;
/// additive Schwarz runs Gauss-Seidel sweeps inside each virtual cache
/// block (z-slab) with homogeneous Dirichlet data on slab boundaries —
/// the corrections from disjoint subdomains simply add.
void apply_preconditioner(const GridBlock& g,
                          const std::vector<std::vector<double>>& r,
                          std::vector<std::vector<double>>& z, double h,
                          const SolverOptions& opts) {
  const double diag = 6.0 / (h * h);
  if (opts.preconditioner == PreconditionerKind::kJacobi) {
    for (std::size_t b = 0; b < r.size(); ++b) {
      for (std::size_t idx = 0; idx < r[b].size(); ++idx) {
        z[b][idx] = r[b][idx] / diag;
      }
    }
    return;
  }
  const double inv_h2 = 1.0 / (h * h);
  const std::size_t slab = opts.cache_block_nz;
  for (std::size_t b = 0; b < r.size(); ++b) {
    std::fill(z[b].begin(), z[b].end(), 0.0);
    for (std::size_t k0 = 0; k0 < g.nz(); k0 += slab) {
      const std::size_t k1 = std::min(k0 + slab, g.nz());
      for (unsigned sweep = 0; sweep < opts.schwarz_sweeps; ++sweep) {
        for (std::size_t k = k0; k < k1; ++k) {
          const auto kk = static_cast<std::ptrdiff_t>(k);
          for (std::size_t j = 0; j < g.ny(); ++j) {
            for (std::size_t i = 0; i < g.nx(); ++i) {
              double nb = 0.0;
              if (i > 0) nb += g.at(z[b], i - 1, j, kk);
              if (i + 1 < g.nx()) nb += g.at(z[b], i + 1, j, kk);
              if (j > 0) nb += g.at(z[b], i, j - 1, kk);
              if (j + 1 < g.ny()) nb += g.at(z[b], i, j + 1, kk);
              if (k > k0) nb += g.at(z[b], i, j, kk - 1);
              if (k + 1 < k1) nb += g.at(z[b], i, j, kk + 1);
              // Solve the center equation with current neighbours:
              // (6 z - nb) / h^2 = r  =>  z = (r h^2 + nb) / 6.
              g.at(z[b], i, j, kk) =
                  (g.at(r[b], i, j, kk) / inv_h2 + nb) / 6.0;
            }
          }
        }
      }
    }
  }
}

}  // namespace

SolveResult bicgstab_solve(const MultiblockDomain& dom,
                           std::vector<std::vector<double>>& u,
                           const std::vector<std::vector<double>>& rhs,
                           double h, double tolerance,
                           std::size_t max_iterations) {
  SolverOptions opts;
  opts.tolerance = tolerance;
  opts.max_iterations = max_iterations;
  return bicgstab_solve(dom, u, rhs, h, opts);
}

SolveResult bicgstab_solve(const MultiblockDomain& dom,
                           std::vector<std::vector<double>>& u,
                           const std::vector<std::vector<double>>& rhs,
                           double h, const SolverOptions& opts) {
  const GridBlock g(dom.nx, dom.ny, dom.nz_per_block());
  const std::size_t nb = dom.num_blocks;
  if (u.size() != nb || rhs.size() != nb) {
    throw InvalidArgumentError("bicgstab_solve: block count mismatch");
  }
  if (opts.cache_block_nz == 0) {
    throw InvalidArgumentError(
        "bicgstab_solve: cache_block_nz must be positive");
  }
  const double tolerance = opts.tolerance;
  const std::size_t max_iterations = opts.max_iterations;

  auto make = [&] {
    std::vector<std::vector<double>> f(nb);
    for (auto& v : f) v = g.make_field();
    return f;
  };
  auto r = make();
  auto rhat = make();
  auto p = make();
  auto v = make();
  auto s = make();
  auto t = make();
  auto phat = make();
  auto shat = make();
  auto tmp = make();

  // r = rhs - A u
  exchange_ghosts(dom, u, g);
  for (std::size_t b = 0; b < nb; ++b) apply_laplacian(g, u[b], tmp[b], h);
  for (std::size_t b = 0; b < nb; ++b) {
    for (std::size_t idx = 0; idx < r[b].size(); ++idx) {
      r[b][idx] = rhs[b][idx] - tmp[b][idx];
    }
    rhat[b] = r[b];
  }

  const double rhs_norm = std::sqrt(dot_blocks(g, rhs, rhs));
  const double stop = tolerance * (rhs_norm > 0.0 ? rhs_norm : 1.0);

  double rho = 1.0;
  double alpha = 1.0;
  double omega = 1.0;
  SolveResult result;

  for (std::size_t it = 0; it < max_iterations; ++it) {
    result.iterations = it + 1;
    const double rho1 = dot_blocks(g, rhat, r);
    if (rho1 == 0.0) break;  // breakdown
    if (it == 0) {
      for (std::size_t b = 0; b < nb; ++b) p[b] = r[b];
    } else {
      const double beta = (rho1 / rho) * (alpha / omega);
      for (std::size_t b = 0; b < nb; ++b) {
        for (std::size_t idx = 0; idx < p[b].size(); ++idx) {
          p[b][idx] = r[b][idx] + beta * (p[b][idx] - omega * v[b][idx]);
        }
      }
    }
    // phat = M^-1 p ; v = A phat
    apply_preconditioner(g, p, phat, h, opts);
    exchange_ghosts(dom, phat, g);
    for (std::size_t b = 0; b < nb; ++b) {
      apply_laplacian(g, phat[b], v[b], h);
    }
    const double rhat_v = dot_blocks(g, rhat, v);
    if (rhat_v == 0.0) break;
    alpha = rho1 / rhat_v;
    for (std::size_t b = 0; b < nb; ++b) {
      for (std::size_t idx = 0; idx < s[b].size(); ++idx) {
        s[b][idx] = r[b][idx] - alpha * v[b][idx];
      }
    }
    const double s_norm = std::sqrt(dot_blocks(g, s, s));
    if (s_norm < stop) {
      for (std::size_t b = 0; b < nb; ++b) {
        for (std::size_t idx = 0; idx < u[b].size(); ++idx) {
          u[b][idx] += alpha * phat[b][idx];
        }
      }
      result.residual_norm = s_norm;
      result.converged = true;
      return result;
    }
    // shat = M^-1 s ; t = A shat
    apply_preconditioner(g, s, shat, h, opts);
    exchange_ghosts(dom, shat, g);
    for (std::size_t b = 0; b < nb; ++b) {
      apply_laplacian(g, shat[b], t[b], h);
    }
    const double tt = dot_blocks(g, t, t);
    if (tt == 0.0) break;
    omega = dot_blocks(g, t, s) / tt;
    for (std::size_t b = 0; b < nb; ++b) {
      for (std::size_t idx = 0; idx < u[b].size(); ++idx) {
        u[b][idx] += alpha * phat[b][idx] + omega * shat[b][idx];
      }
      for (std::size_t idx = 0; idx < r[b].size(); ++idx) {
        r[b][idx] = s[b][idx] - omega * t[b][idx];
      }
    }
    const double r_norm = std::sqrt(dot_blocks(g, r, r));
    result.residual_norm = r_norm;
    if (r_norm < stop) {
      result.converged = true;
      return result;
    }
    if (omega == 0.0) break;
    rho = rho1;
  }
  return result;
}

double residual_norm(const MultiblockDomain& dom,
                     const std::vector<std::vector<double>>& u,
                     const std::vector<std::vector<double>>& rhs, double h) {
  const GridBlock g(dom.nx, dom.ny, dom.nz_per_block());
  auto u_copy = u;
  exchange_ghosts(dom, u_copy, g);
  double worst = 0.0;
  std::vector<double> tmp = g.make_field();
  for (std::size_t b = 0; b < dom.num_blocks; ++b) {
    apply_laplacian(g, u_copy[b], tmp, h);
    for (std::ptrdiff_t k = 0; k < static_cast<std::ptrdiff_t>(g.nz());
         ++k) {
      for (std::size_t j = 0; j < g.ny(); ++j) {
        for (std::size_t i = 0; i < g.nx(); ++i) {
          worst = std::max(worst, std::abs(g.at(rhs[b], i, j, k) -
                                           g.at(tmp, i, j, k)));
        }
      }
    }
  }
  return worst;
}

}  // namespace perfknow::apps::genidlest
