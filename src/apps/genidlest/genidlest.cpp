#include "apps/genidlest/genidlest.hpp"

#include <array>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "hwcounters/synthesize.hpp"
#include "instrument/trial_builder.hpp"
#include "openuh/compiler.hpp"
#include "runtime/mpi.hpp"
#include "runtime/omp.hpp"

namespace perfknow::apps::genidlest {

std::string_view to_string(Model m) {
  return m == Model::kMpi ? "MPI" : "OpenMP";
}

GenConfig GenConfig::rib45() {
  GenConfig c;
  c.nx = 128;
  c.ny = 80;
  c.nz = 64;
  c.num_blocks = 8;
  c.nprocs = 8;
  c.seed = 45;
  return c;
}

GenConfig GenConfig::rib90() {
  GenConfig c;
  c.nx = 128;
  c.ny = 128;
  c.nz = 128;
  c.num_blocks = 32;
  c.nprocs = 16;
  c.seed = 90;
  return c;
}

namespace {

using hwcounters::Counter;
using hwcounters::CounterVector;
using hwcounters::KernelResult;
using hwcounters::Synthesizer;

/// The named profile events of the case study, in emission order.
enum Event : std::size_t {
  kInit = 0,
  kDiffCoeff,
  kBicgstab,      // driver's own work: vector ops + reductions
  kExchangeVar,   // boundary-update driver (waits live here)
  kSendRecv,      // mpi_send_recv_ko: copies + wire time
  kMatxvec,
  kPc,            // preconditioner driver
  kPcJacGlb,
  kNumEvents
};

constexpr std::array<const char*, kNumEvents> kEventNames = {
    "initialization", "diff_coeff", "bicgstab", "exchange_var__",
    "mpi_send_recv_ko", "matxvec", "pc", "pc_jac_glb"};

/// Simulated base addresses of one block's arrays.
struct BlockArrays {
  std::uint64_t coef = 0;  // 7 stencil coefficients per cell
  std::uint64_t u = 0;
  std::uint64_t rhs = 0;
  std::uint64_t p = 0;
  std::uint64_t v = 0;
  std::uint64_t work = 0;  // r, t, phat, shat
};

/// Per-proc, per-event cycle and counter accumulators.
struct Accum {
  explicit Accum(unsigned nprocs)
      : cycles(kNumEvents, std::vector<std::uint64_t>(nprocs, 0)),
        counters(kNumEvents, std::vector<CounterVector>(nprocs)) {}
  std::vector<std::vector<std::uint64_t>> cycles;
  std::vector<std::vector<CounterVector>> counters;

  void add(Event e, unsigned proc, std::uint64_t cyc,
           const CounterVector* c = nullptr) {
    cycles[e][proc] += cyc;
    if (c != nullptr) counters[e][proc] += *c;
  }
};

/// The program as the OpenUH front end sees it: the hot loop nests with
/// their per-iteration operation mix and array reference shapes.
openuh::ProgramIR build_ir(const GenConfig& cfg) {
  const auto n = static_cast<std::uint64_t>(cfg.cells_per_block());
  const std::uint64_t nzb = cfg.nz / cfg.num_blocks;
  const auto trips = std::vector<std::uint64_t>{
      nzb, static_cast<std::uint64_t>(cfg.ny),
      static_cast<std::uint64_t>(cfg.nx)};

  auto arr = [&](const char* name, double elems_per_cell, double writes,
                 double passes = 1.0) {
    openuh::ArrayRef a;
    a.name = name;
    a.element_bytes = 8;
    a.extent_elements = static_cast<std::uint64_t>(
        static_cast<double>(n) * elems_per_cell);
    a.stride_elements = 1;
    a.write_fraction = writes;
    a.passes = passes;
    return a;
  };

  openuh::ProgramIR ir;
  ir.name = "genidlest";

  {
    openuh::Procedure p;
    p.name = "initialization";
    openuh::LoopNest nest;
    nest.name = "init_loop";
    nest.trip_counts = trips;
    nest.flops_per_iter = 1.0;
    nest.int_ops_per_iter = 24.0;
    nest.parallelizable = true;
    nest.arrays = {arr("coef", 7.0, 1.0), arr("u", 1.0, 1.0),
                   arr("rhs", 1.0, 1.0), arr("p", 1.0, 1.0),
                   arr("v", 1.0, 1.0), arr("work", 4.0, 1.0)};
    p.loops.push_back(std::move(nest));
    ir.procedures.push_back(std::move(p));
  }
  {
    openuh::Procedure p;
    p.name = "diff_coeff";
    openuh::LoopNest nest;
    nest.name = "diff_coeff_loop";
    nest.trip_counts = trips;
    nest.flops_per_iter = 24.0;
    nest.int_ops_per_iter = 130.0;
    nest.parallelizable = true;
    nest.arrays = {arr("coef", 7.0, 1.0), arr("u", 1.0, 0.0)};
    p.loops.push_back(std::move(nest));
    ir.procedures.push_back(std::move(p));
  }
  {
    openuh::Procedure p;
    p.name = "matxvec";
    openuh::LoopNest nest;
    nest.name = "matxvec_loop";
    nest.trip_counts = trips;
    nest.flops_per_iter = 13.0;
    nest.int_ops_per_iter = 150.0;
    nest.parallelizable = true;
    nest.arrays = {arr("coef", 7.0, 0.0), arr("p", 1.0, 0.0),
                   arr("v", 1.0, 1.0)};
    p.loops.push_back(std::move(nest));
    p.callees.push_back("exchange_var__");
    ir.procedures.push_back(std::move(p));
  }
  {
    openuh::Procedure p;
    p.name = "pc_jac_glb";
    openuh::LoopNest nest;
    nest.name = "pc_jac_loop";
    nest.trip_counts = trips;
    nest.flops_per_iter = 16.0;  // two sweeps folded into passes
    nest.int_ops_per_iter = 90.0;
    nest.parallelizable = true;
    nest.has_reduction = true;
    nest.arrays = {arr("coef", 1.0, 0.0, 2.0), arr("work", 2.0, 0.5, 2.0)};
    p.loops.push_back(std::move(nest));
    ir.procedures.push_back(std::move(p));
  }
  {
    openuh::Procedure p;
    p.name = "bicgstab";
    openuh::LoopNest nest;
    nest.name = "vector_update_loop";
    nest.trip_counts = trips;
    nest.flops_per_iter = 12.0;
    nest.int_ops_per_iter = 70.0;
    nest.parallelizable = true;
    nest.has_reduction = true;
    nest.arrays = {arr("p", 1.0, 0.5), arr("v", 1.0, 0.0),
                   arr("work", 3.0, 0.4)};
    p.loops.push_back(std::move(nest));
    p.callees = {"matxvec", "pc", "exchange_var__"};
    ir.procedures.push_back(std::move(p));
  }
  return ir;
}

/// Everything a simulation run needs per kernel invocation.
struct SimState {
  const GenConfig* cfg = nullptr;
  machine::Machine* machine = nullptr;
  Synthesizer* synth = nullptr;
  openuh::CompiledProgram prog;
  std::vector<BlockArrays> blocks;
  std::vector<double> contention;  ///< per block: home-node contention
  /// OpenMP mode: stencil kernels read neighbour blocks' ghost planes in
  /// shared memory (MPI reads local halo buffers instead), so their
  /// streams gain two face-sized reads homed wherever the neighbour's
  /// data lives.
  bool shared_memory_ghosts = false;
};

std::map<std::string, std::uint64_t> bases_of(const BlockArrays& b) {
  return {{"coef", b.coef}, {"u", b.u},      {"rhs", b.rhs},
          {"p", b.p},       {"v", b.v},      {"work", b.work}};
}

/// Owner proc of a block (contiguous split, = static-even assignment).
unsigned owner_of(unsigned block, unsigned nprocs, unsigned num_blocks) {
  return static_cast<unsigned>(static_cast<std::uint64_t>(block) * nprocs /
                               num_blocks);
}

/// Runs one compiled kernel on one block, with NUMA contention applied.
KernelResult run_kernel(SimState& st, const char* nest_name, unsigned block,
                        std::uint32_t cpu) {
  const auto& loop = st.prog.loop(nest_name);
  auto work = openuh::kernel_work_for_nest(loop.nest, st.prog.codegen, 1.0,
                                           bases_of(st.blocks[block]));
  const bool stencil = std::string_view(nest_name) == "matxvec_loop" ||
                       std::string_view(nest_name) == "pc_jac_loop";
  if (st.shared_memory_ghosts && stencil) {
    const auto& cfg = *st.cfg;
    const std::uint64_t face = cfg.face_bytes();
    const std::uint64_t n8 =
        static_cast<std::uint64_t>(cfg.cells_per_block()) * 8;
    const unsigned prev = (block + cfg.num_blocks - 1) % cfg.num_blocks;
    const unsigned next = (block + 1) % cfg.num_blocks;
    // Top plane of the previous block, bottom plane of the next one.
    work.streams.push_back(hwcounters::MemoryStream{
        st.blocks[prev].p + n8 - face, face, 8, 1.0, 0.0});
    work.streams.push_back(
        hwcounters::MemoryStream{st.blocks[next].p, face, 8, 1.0, 0.0});
  }
  KernelResult r = st.synth->run(work, cpu);
  hwcounters::apply_memory_contention(r, st.contention[block]);
  return r;
}

/// Computes per-block contention factors from current page placement:
/// the number of procs whose working blocks are homed on the same node.
void compute_contention(SimState& st, unsigned nprocs) {
  const auto& cfg = *st.cfg;
  const auto& topo = st.machine->topology();
  std::vector<std::uint32_t> home(cfg.num_blocks);
  for (unsigned b = 0; b < cfg.num_blocks; ++b) {
    home[b] = st.machine->pages().node_of(st.blocks[b].u);
  }
  // Which procs access each node (every proc accesses its own blocks).
  std::map<std::uint32_t, std::set<unsigned>> accessors;
  for (unsigned b = 0; b < cfg.num_blocks; ++b) {
    accessors[home[b]].insert(owner_of(b, nprocs, cfg.num_blocks));
  }
  (void)topo;
  st.contention.resize(cfg.num_blocks);
  for (unsigned b = 0; b < cfg.num_blocks; ++b) {
    st.contention[b] = hwcounters::contention_factor(
        static_cast<unsigned>(accessors[home[b]].size()),
        cfg.memory_contention_coeff);
  }
}

/// Counter vector for a plain memory copy of `bytes` (ghost planes):
/// streaming loads+stores, one L3 miss per line each way.
CounterVector copy_counters(std::uint64_t bytes, std::uint64_t cycles) {
  CounterVector c;
  const auto b = static_cast<double>(bytes);
  c.set(Counter::kLoads, b / 8.0);
  c.set(Counter::kStores, b / 8.0);
  c.set(Counter::kInstructionsCompleted, b / 4.0);
  c.set(Counter::kInstructionsIssued, b / 4.0 * 1.02);
  c.set(Counter::kL1dMisses, b / 64.0 * 2.0);
  c.set(Counter::kL2References, b / 64.0 * 2.0);
  c.set(Counter::kL2Misses, b / 128.0 * 2.0);
  c.set(Counter::kL3Misses, b / 128.0 * 2.0);
  c.set(Counter::kLocalMemoryAccesses, b / 128.0 * 2.0);
  c.set(Counter::kCpuCycles, static_cast<double>(cycles));
  const double stalls = static_cast<double>(cycles) * 0.7;
  c.set(Counter::kBackEndBubbleAll, stalls);
  c.set(Counter::kL1dStallCycles, stalls);
  return c;
}

}  // namespace

GenResult run_genidlest(machine::Machine& machine, const GenConfig& cfg) {
  if (cfg.nz % cfg.num_blocks != 0) {
    throw InvalidArgumentError(
        "run_genidlest: nz must divide evenly into blocks");
  }
  if (cfg.nprocs == 0 || cfg.nprocs > cfg.num_blocks) {
    throw InvalidArgumentError(
        "run_genidlest: need 1 <= nprocs <= num_blocks");
  }
  if (cfg.nprocs > machine.config().num_cpus()) {
    throw InvalidArgumentError("run_genidlest: nprocs exceeds machine CPUs");
  }

  // ---- compile the program through OpenUH -----------------------------
  openuh::Compiler compiler(machine.config());
  openuh::CompileOptions copts;
  copts.opt = cfg.opt;
  copts.target_threads = cfg.nprocs;

  SimState st;
  st.cfg = &cfg;
  st.machine = &machine;
  st.prog = compiler.compile(build_ir(cfg), copts);

  Synthesizer synth(machine);
  st.synth = &synth;

  // ---- allocate the blocks ---------------------------------------------
  const auto n = static_cast<std::uint64_t>(cfg.cells_per_block());
  auto& space = machine.address_space();
  const std::uint64_t page = machine.config().page_bytes;
  st.blocks.resize(cfg.num_blocks);
  for (auto& b : st.blocks) {
    b.coef = space.allocate(7 * n * 8, page);
    b.u = space.allocate(n * 8, page);
    b.rhs = space.allocate(n * 8, page);
    b.p = space.allocate(n * 8, page);
    b.v = space.allocate(n * 8, page);
    b.work = space.allocate(4 * n * 8, page);
  }

  Accum acc(cfg.nprocs);
  std::uint64_t elapsed = 0;
  GenResult result;

  auto note_counters = [&](const KernelResult& r) {
    result.aggregate_counters += r.counters;
  };

  const unsigned B = cfg.num_blocks;
  const unsigned P = cfg.nprocs;

  st.shared_memory_ghosts = cfg.model == Model::kOpenMP;

  if (cfg.model == Model::kOpenMP) {
    runtime::OmpTeam team(machine, P);
    result.omp = std::make_shared<runtime::OmpCollector>(P);
    const auto collector_hook = result.omp->hook();
    const auto& costs = team.costs();
    const std::uint64_t region_fixed =
        costs.fork_cycles + costs.join_cycles;

    // -- initialization --------------------------------------------------
    if (cfg.optimized) {
      // Parallel first-touch init: each owner initializes its blocks.
      std::vector<std::uint64_t> cyc(B, 0);
      for (unsigned b = 0; b < B; ++b) {
        const unsigned t = owner_of(b, P, B);
        st.contention.assign(B, 1.0);
        const auto r = run_kernel(st, "init_loop", b, team.cpu_of(t));
        cyc[b] = r.cycles;
        acc.add(kInit, t, 0, &r.counters);  // cycles added via the loop
        note_counters(r);
      }
      const auto loop = team.parallel_for(
          B, runtime::Schedule::static_even(),
          [&](std::uint64_t b, unsigned) { return cyc[b]; });
      for (unsigned t = 0; t < P; ++t) {
        acc.add(kInit, t,
                loop.work_cycles[t] + loop.dispatch_cycles[t] +
                    loop.barrier_wait_cycles[t] + loop.barrier_cost +
                    region_fixed);
      }
      elapsed += loop.elapsed_cycles;
    } else {
      // Sequential init by the master: every page lands on node 0.
      std::uint64_t serial = 0;
      st.contention.assign(B, 1.0);
      for (unsigned b = 0; b < B; ++b) {
        const auto r = run_kernel(st, "init_loop", b, team.cpu_of(0));
        serial += r.cycles;
        if (true) acc.add(kInit, 0, 0, &r.counters);
        note_counters(r);
      }
      for (unsigned t = 0; t < P; ++t) acc.add(kInit, t, serial);
      elapsed += serial;
    }
    compute_contention(st, P);

    // Precompute per-block kernel results for the steady-state kernels
    // (placement is now fixed, so results are invocation-invariant).
    auto precompute = [&](const char* nest) {
      std::vector<KernelResult> rs(B);
      for (unsigned b = 0; b < B; ++b) {
        rs[b] = run_kernel(st, nest, b,
                           team.cpu_of(owner_of(b, P, B)));
      }
      return rs;
    };
    const auto diff_rs = precompute("diff_coeff_loop");
    const auto matx_rs = precompute("matxvec_loop");
    const auto pc_rs = precompute("pc_jac_loop");
    const auto vec_rs = precompute("vector_update_loop");

    // One work-shared phase: runs the per-block cycles under static-even
    // (= ownership) and accounts time+counters into `event`.
    auto phase = [&](Event event, const std::vector<KernelResult>& rs,
                     unsigned repeat) {
      if (repeat == 0) return;
      const auto loop = team.parallel_for(
          B, runtime::Schedule::static_even(),
          [&](std::uint64_t b, unsigned) { return rs[b].cycles; });
      for (unsigned k = 0; k < repeat; ++k) {
        runtime::emit_collector_events(team, kEventNames[event], loop,
                                       collector_hook);
      }
      for (unsigned t = 0; t < P; ++t) {
        acc.add(event, t,
                repeat * (loop.work_cycles[t] + loop.dispatch_cycles[t] +
                          loop.barrier_wait_cycles[t] + loop.barrier_cost +
                          region_fixed));
      }
      for (unsigned b = 0; b < B; ++b) {
        const unsigned t = owner_of(b, P, B);
        for (unsigned k = 0; k < repeat; ++k) {
          acc.add(event, t, 0, &rs[b].counters);
          note_counters(rs[b]);
        }
      }
      elapsed += repeat * loop.elapsed_cycles;
    };

    const std::uint64_t face = cfg.face_bytes();
    const auto barrier_only = team.single(0);

    for (unsigned step = 0; step < cfg.timesteps; ++step) {
      phase(kDiffCoeff, diff_rs, 1);
      for (unsigned it = 0; it < cfg.solver_iters; ++it) {
        // ---- exchange_var__ --------------------------------------------
        if (cfg.optimized) {
          // Direct copies, one per face, parallel over blocks. The
          // shared_copy_penalty covers remote-page reads and NUMAlink
          // contention of the concurrent copies.
          const auto copy_cycles = static_cast<std::uint64_t>(
              2.0 * static_cast<double>(face) * cfg.copy_cycles_per_byte *
              cfg.shared_copy_penalty);
          const auto loop = team.parallel_for(
              B, runtime::Schedule::static_even(),
              [&](std::uint64_t, unsigned) { return copy_cycles; });
          for (unsigned t = 0; t < P; ++t) {
            acc.add(kSendRecv, t,
                    loop.work_cycles[t] + loop.dispatch_cycles[t]);
            acc.add(kExchangeVar, t,
                    loop.barrier_wait_cycles[t] + loop.barrier_cost +
                        region_fixed);
            const auto cc = copy_counters(
                2 * face * loop.iterations_run[t], loop.work_cycles[t]);
            acc.counters[kSendRecv][t] += cc;
            result.aggregate_counters += cc;
          }
          elapsed += loop.elapsed_cycles;
        } else {
          // The master serially performs all (4B - 2) buffer copies,
          // each through 3 memory passes (fill send buffer, buffer to
          // buffer, buffer to destination).
          const std::uint64_t copies = 4ull * B - 2;
          const auto master_cycles = static_cast<std::uint64_t>(
              static_cast<double>(copies) * static_cast<double>(face) *
              3.0 * cfg.copy_cycles_per_byte);
          acc.add(kSendRecv, 0, master_cycles);
          const auto cc = copy_counters(copies * face * 3, master_cycles);
          acc.counters[kSendRecv][0] += cc;
          result.aggregate_counters += cc;
          for (unsigned t = 1; t < P; ++t) {
            acc.add(kExchangeVar, t, master_cycles);  // barrier wait
          }
          for (unsigned t = 0; t < P; ++t) {
            acc.add(kExchangeVar, t, barrier_only);
          }
          elapsed += master_cycles + barrier_only;
        }
        // ---- solver kernels --------------------------------------------
        phase(kMatxvec, matx_rs, 1);
        phase(kPcJacGlb, pc_rs, 1);
        phase(kBicgstab, vec_rs, 1);
        // ---- two dot-product reductions --------------------------------
        const std::uint64_t red = 2 * barrier_only;
        for (unsigned t = 0; t < P; ++t) acc.add(kBicgstab, t, red);
        elapsed += red;
      }
    }
  } else {
    // ------------------------- MPI model --------------------------------
    runtime::MpiWorld world(machine, P);
    result.comm = std::make_shared<analysis::CommRecorder>(P);
    world.set_hook(result.comm->hook());

    // Each rank initializes its own blocks (local first touch).
    st.contention.assign(B, 1.0);
    for (unsigned b = 0; b < B; ++b) {
      const unsigned rank = owner_of(b, P, B);
      const auto r = run_kernel(st, "init_loop", b, world.cpu_of(rank));
      world.compute(rank, r.cycles);
      acc.add(kInit, rank, r.cycles, &r.counters);
      note_counters(r);
    }
    {
      std::vector<std::uint64_t> before(P);
      for (unsigned rank = 0; rank < P; ++rank) {
        before[rank] = world.clock(rank);
      }
      world.barrier();
      for (unsigned rank = 0; rank < P; ++rank) {
        acc.add(kInit, rank, world.clock(rank) - before[rank]);
      }
    }
    compute_contention(st, P);

    auto precompute = [&](const char* nest) {
      std::vector<KernelResult> rs(B);
      for (unsigned b = 0; b < B; ++b) {
        rs[b] = run_kernel(st, nest, b, world.cpu_of(owner_of(b, P, B)));
      }
      return rs;
    };
    const auto diff_rs = precompute("diff_coeff_loop");
    const auto matx_rs = precompute("matxvec_loop");
    const auto pc_rs = precompute("pc_jac_loop");
    const auto vec_rs = precompute("vector_update_loop");

    auto phase = [&](Event event, const std::vector<KernelResult>& rs) {
      for (unsigned b = 0; b < B; ++b) {
        const unsigned rank = owner_of(b, P, B);
        world.compute(rank, rs[b].cycles);
        acc.add(event, rank, rs[b].cycles, &rs[b].counters);
        note_counters(rs[b]);
      }
    };

    const std::uint64_t face = cfg.face_bytes();
    // Per rank: boundary faces to the two neighbouring ranks, plus the
    // internal faces between its own blocks (on-processor copies).
    const unsigned blocks_per_rank = B / std::max(1u, P);
    const std::uint64_t internal_faces =
        blocks_per_rank > 0 ? 2ull * (blocks_per_rank - 1) : 0;
    const double pack_passes = cfg.optimized ? 1.0 : 3.0;

    for (unsigned step = 0; step < cfg.timesteps; ++step) {
      phase(kDiffCoeff, diff_rs);
      for (unsigned it = 0; it < cfg.solver_iters; ++it) {
        // ---- exchange_var__: pack, nonblocking p2p, unpack -------------
        std::vector<std::vector<runtime::MpiRequest>> reqs(P);
        for (unsigned rank = 0; rank < P; ++rank) {
          const std::uint64_t before = world.clock(rank);
          // On-processor copies: internal faces + pack of the 2 halo
          // faces, each through `pack_passes` memory passes.
          const auto copy_bytes = static_cast<std::uint64_t>(
              static_cast<double>((internal_faces + 2) * face) *
              pack_passes);
          const auto copy_cycles = static_cast<std::uint64_t>(
              static_cast<double>(copy_bytes) * cfg.copy_cycles_per_byte);
          world.local_copy_cycles(rank, copy_bytes, copy_cycles);
          const auto cc = copy_counters(copy_bytes, copy_cycles);
          acc.counters[kSendRecv][rank] += cc;
          result.aggregate_counters += cc;

          const unsigned prev = (rank + P - 1) % P;
          const unsigned next = (rank + 1) % P;
          reqs[rank].push_back(world.irecv(rank, prev, face, 1));
          reqs[rank].push_back(world.irecv(rank, next, face, 2));
          reqs[rank].push_back(world.isend(rank, next, face, 1));
          reqs[rank].push_back(world.isend(rank, prev, face, 2));
          acc.add(kSendRecv, rank, world.clock(rank) - before);
        }
        for (unsigned rank = 0; rank < P; ++rank) {
          const std::uint64_t before = world.clock(rank);
          world.waitall(rank, reqs[rank]);
          acc.add(kExchangeVar, rank, world.clock(rank) - before);
        }
        // ---- solver kernels ---------------------------------------------
        phase(kMatxvec, matx_rs);
        phase(kPcJacGlb, pc_rs);
        phase(kBicgstab, vec_rs);
        // ---- two dot-product allreduces ---------------------------------
        std::vector<std::uint64_t> before(P);
        for (unsigned rank = 0; rank < P; ++rank) {
          before[rank] = world.clock(rank);
        }
        world.allreduce(8);
        world.allreduce(8);
        for (unsigned rank = 0; rank < P; ++rank) {
          acc.add(kBicgstab, rank, world.clock(rank) - before[rank]);
        }
      }
    }
    // Final sync; the padding keeps every rank's main inclusive equal.
    const std::uint64_t finish = world.elapsed();
    for (unsigned rank = 0; rank < P; ++rank) {
      acc.add(kBicgstab, rank, finish - world.clock(rank));
    }
    elapsed = finish;
  }

  result.elapsed_cycles = elapsed;
  result.elapsed_seconds = machine.seconds(elapsed);

  // ---- emit the TAU-style profile ---------------------------------------
  instrument::TrialBuilder builder(
      std::string(to_string(cfg.model)) + (cfg.optimized ? "_opt" : "_unopt") +
          "_" + std::to_string(P) + "p_" +
          std::string(openuh::to_string(cfg.opt)),
      P, machine.config().clock_ghz,
      {Counter::kInstructionsCompleted, Counter::kInstructionsIssued,
       Counter::kFpOps, Counter::kBackEndBubbleAll, Counter::kL1dMisses,
       Counter::kL2References, Counter::kL2Misses, Counter::kL3Misses,
       Counter::kTlbMisses, Counter::kL1dStallCycles,
       Counter::kFpStallCycles, Counter::kLocalMemoryAccesses,
       Counter::kRemoteMemoryAccesses, Counter::kLoads, Counter::kStores});

  for (unsigned t = 0; t < P; ++t) {
    builder.enter(t, "main");
    builder.enter(t, "initialization");
    builder.add_work(t, acc.cycles[kInit][t], &acc.counters[kInit][t]);
    builder.leave(t, "initialization");
    builder.enter(t, "diff_coeff");
    builder.add_work(t, acc.cycles[kDiffCoeff][t],
                     &acc.counters[kDiffCoeff][t]);
    builder.leave(t, "diff_coeff");
    builder.enter(t, "bicgstab");
    builder.add_work(t, acc.cycles[kBicgstab][t],
                     &acc.counters[kBicgstab][t]);
    builder.enter(t, "exchange_var__");
    builder.add_work(t, acc.cycles[kExchangeVar][t],
                     &acc.counters[kExchangeVar][t]);
    builder.enter(t, "mpi_send_recv_ko");
    builder.add_work(t, acc.cycles[kSendRecv][t],
                     &acc.counters[kSendRecv][t]);
    builder.leave(t, "mpi_send_recv_ko");
    builder.leave(t, "exchange_var__");
    builder.enter(t, "matxvec");
    builder.add_work(t, acc.cycles[kMatxvec][t],
                     &acc.counters[kMatxvec][t]);
    builder.leave(t, "matxvec");
    builder.enter(t, "pc");
    builder.add_work(t, acc.cycles[kPc][t], &acc.counters[kPc][t]);
    builder.enter(t, "pc_jac_glb");
    builder.add_work(t, acc.cycles[kPcJacGlb][t],
                     &acc.counters[kPcJacGlb][t]);
    builder.leave(t, "pc_jac_glb");
    builder.leave(t, "pc");
    builder.leave(t, "bicgstab");
    builder.leave(t, "main");
  }
  builder.set_metadata("application", "GenIDLEST");
  builder.set_metadata("model", std::string(to_string(cfg.model)));
  builder.set_metadata("optimized", cfg.optimized ? "true" : "false");
  builder.set_metadata("opt_level", std::string(openuh::to_string(cfg.opt)));
  builder.set_metadata("nprocs", std::to_string(P));
  builder.set_metadata("problem", std::to_string(cfg.nx) + "x" +
                                      std::to_string(cfg.ny) + "x" +
                                      std::to_string(cfg.nz) + "/" +
                                      std::to_string(B) + "blocks");
  result.trial = builder.build();
  return result;
}

}  // namespace perfknow::apps::genidlest
