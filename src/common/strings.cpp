#include "common/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>

#include "common/error.hpp"

namespace perfknow::strings {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_whitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    const std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out += s.substr(start);
      return out;
    }
    out += s.substr(start, pos - start);
    out += to;
    start = pos + from.size();
  }
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

double parse_double(std::string_view s) {
  const std::string_view t = trim(s);
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(t.data(), t.data() + t.size(), value);
  if (ec != std::errc{} || ptr != t.data() + t.size()) {
    throw ParseError("not a number: '" + std::string(s) + "'");
  }
  return value;
}

long long parse_int(std::string_view s) {
  const std::string_view t = trim(s);
  long long value = 0;
  const auto [ptr, ec] =
      std::from_chars(t.data(), t.data() + t.size(), value);
  if (ec != std::errc{} || ptr != t.data() + t.size()) {
    throw ParseError("not an integer: '" + std::string(s) + "'");
  }
  return value;
}

std::string printable_char(char c) {
  const auto u = static_cast<unsigned char>(c);
  if (std::isprint(u)) return std::string(1, c);
  char buf[8];
  std::snprintf(buf, sizeof buf, "\\x%02x", u);
  return buf;
}

std::string excerpt(std::string_view s, std::size_t pos,
                    std::size_t radius) {
  if (s.empty()) return "";
  if (pos >= s.size()) pos = s.size() - 1;
  std::size_t b = pos;
  while (b > 0 && pos - (b - 1) <= radius && s[b - 1] != '\n') --b;
  std::size_t e = pos;
  while (e < s.size() && e - pos < radius && s[e] != '\n') ++e;
  std::string out;
  for (std::size_t i = b; i < e; ++i) out += printable_char(s[i]);
  return out;
}

}  // namespace perfknow::strings
