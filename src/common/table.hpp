// ASCII table rendering for benchmark/report output.
//
// The benchmark harnesses print the same rows the paper's tables and
// figure series report; this formatter keeps those reports aligned and
// diff-friendly.
#pragma once

#include <string>
#include <vector>

namespace perfknow {

/// Column-aligned text table. Cells are strings; numeric helpers format
/// with fixed precision so successive runs diff cleanly.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Starts a new row; subsequent add_* calls append cells to it.
  TextTable& begin_row();
  TextTable& add(std::string cell);
  TextTable& add(double v, int precision = 4);
  TextTable& add(long long v);

  /// Convenience: append a full row at once.
  TextTable& add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t row_count() const noexcept {
    return rows_.size();
  }

  /// Renders with a header rule, e.g.
  ///   metric      O0      O1
  ///   ------  ------  ------
  ///   Time     1.000   0.338
  [[nodiscard]] std::string str() const;

  /// Renders as comma-separated values (header + rows).
  [[nodiscard]] std::string csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace perfknow
