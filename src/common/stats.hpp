// Small statistics toolkit used across the analysis subsystem.
//
// All functions operate on std::span<const double> so callers can pass
// vectors, arrays, or sub-ranges without copies. Empty-input behaviour is
// documented per function; most throw InvalidArgumentError because a
// silent NaN would poison downstream inference-rule facts.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace perfknow::stats {

/// Arithmetic mean. Throws InvalidArgumentError on empty input.
[[nodiscard]] double mean(std::span<const double> xs);

/// Population variance (divides by N). Throws on empty input.
[[nodiscard]] double variance(std::span<const double> xs);

/// Population standard deviation. Throws on empty input.
[[nodiscard]] double stddev(std::span<const double> xs);

/// Sample standard deviation (divides by N-1). Throws when N < 2.
[[nodiscard]] double sample_stddev(std::span<const double> xs);

/// Minimum / maximum. Throw on empty input.
[[nodiscard]] double min(std::span<const double> xs);
[[nodiscard]] double max(std::span<const double> xs);

/// Sum; 0 for empty input.
[[nodiscard]] double sum(std::span<const double> xs);

/// Coefficient of variation: stddev / mean. This is the paper's
/// load-imbalance indicator ("ratio of the standard deviation to the
/// mean"). Returns 0 when the mean is 0 (an all-zero series is balanced).
[[nodiscard]] double coefficient_of_variation(std::span<const double> xs);

/// Pearson correlation of two equal-length series. Throws when the lengths
/// differ or are < 2. Returns 0 when either series is constant: a constant
/// series carries no directional signal, and the load-imbalance rule must
/// not fire on it.
[[nodiscard]] double pearson_correlation(std::span<const double> xs,
                                         std::span<const double> ys);

/// Linear interpolation percentile, p in [0, 100]. Throws on empty input
/// or out-of-range p.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Result of an ordinary least squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// Least-squares line through (xs, ys). Throws when lengths differ or < 2,
/// or when xs is constant.
[[nodiscard]] LinearFit linear_fit(std::span<const double> xs,
                                   std::span<const double> ys);

/// Normalizes each element by the first element (series relative to a
/// baseline, as in the paper's Table I). Throws when xs is empty or
/// xs[0] == 0.
[[nodiscard]] std::vector<double> relative_to_first(
    std::span<const double> xs);

/// z-score normalization: (x - mean) / stddev. A constant series maps to
/// all zeros.
[[nodiscard]] std::vector<double> zscores(std::span<const double> xs);

}  // namespace perfknow::stats
