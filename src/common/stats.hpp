// Small statistics toolkit used across the analysis subsystem.
//
// All functions operate on std::span<const double> so callers can pass
// vectors, arrays, or sub-ranges without copies; the hot reductions also
// take a StridedSpan so profile::Trial's (thread x event x metric) value
// cube can be reduced across threads in place — one (event, metric)
// column is a strided slice of the cube, and materializing it as a
// vector per call dominated the analysis primitives' cost. Empty-input
// behaviour is documented per function; most throw InvalidArgumentError
// because a silent NaN would poison downstream inference-rule facts.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace perfknow::stats {

/// Non-owning view of every `stride`-th double in a buffer. The
/// element order is the iteration order, so reductions over a
/// StridedSpan are bit-identical to the same reduction over the copied
/// vector it replaces.
class StridedSpan {
 public:
  constexpr StridedSpan() = default;
  constexpr StridedSpan(const double* data, std::size_t size,
                        std::size_t stride)
      : data_(data), size_(size), stride_(stride == 0 ? 1 : stride) {}
  // Implicit on purpose: a contiguous span is the stride-1 special case,
  // so span/vector callers can flow into StridedSpan parameters.
  constexpr StridedSpan(std::span<const double> xs)  // NOLINT(runtime/explicit)
      : data_(xs.data()), size_(xs.size()), stride_(1) {}

  [[nodiscard]] constexpr double operator[](std::size_t i) const {
    return data_[i * stride_];
  }
  [[nodiscard]] constexpr std::size_t size() const noexcept { return size_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] constexpr std::size_t stride() const noexcept {
    return stride_;
  }

  /// Materializes the elements (for callers that genuinely need storage).
  [[nodiscard]] std::vector<double> to_vector() const {
    std::vector<double> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) out.push_back((*this)[i]);
    return out;
  }

 private:
  const double* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t stride_ = 1;
};

/// Arithmetic mean. Throws InvalidArgumentError on empty input.
[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double mean(StridedSpan xs);

/// Population variance (divides by N). Throws on empty input.
[[nodiscard]] double variance(std::span<const double> xs);
[[nodiscard]] double variance(StridedSpan xs);

/// Population standard deviation. Throws on empty input.
[[nodiscard]] double stddev(std::span<const double> xs);
[[nodiscard]] double stddev(StridedSpan xs);

/// Sample standard deviation (divides by N-1). Throws when N < 2.
[[nodiscard]] double sample_stddev(std::span<const double> xs);
[[nodiscard]] double sample_stddev(StridedSpan xs);

/// Minimum / maximum. Throw on empty input.
[[nodiscard]] double min(std::span<const double> xs);
[[nodiscard]] double min(StridedSpan xs);
[[nodiscard]] double max(std::span<const double> xs);
[[nodiscard]] double max(StridedSpan xs);

/// Sum; 0 for empty input.
[[nodiscard]] double sum(std::span<const double> xs);
[[nodiscard]] double sum(StridedSpan xs);

/// Coefficient of variation: stddev / mean. This is the paper's
/// load-imbalance indicator ("ratio of the standard deviation to the
/// mean"). Returns 0 when the mean is 0 (an all-zero series is balanced).
[[nodiscard]] double coefficient_of_variation(std::span<const double> xs);
[[nodiscard]] double coefficient_of_variation(StridedSpan xs);

/// Pearson correlation of two equal-length series. Throws when the lengths
/// differ or are < 2. Returns 0 when either series is constant: a constant
/// series carries no directional signal, and the load-imbalance rule must
/// not fire on it.
[[nodiscard]] double pearson_correlation(std::span<const double> xs,
                                         std::span<const double> ys);
[[nodiscard]] double pearson_correlation(StridedSpan xs, StridedSpan ys);

/// Linear interpolation percentile, p in [0, 100]. Throws on empty input
/// or out-of-range p.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Result of an ordinary least squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// Least-squares line through (xs, ys). Throws when lengths differ or < 2,
/// or when xs is constant.
[[nodiscard]] LinearFit linear_fit(std::span<const double> xs,
                                   std::span<const double> ys);

/// Normalizes each element by the first element (series relative to a
/// baseline, as in the paper's Table I). Throws when xs is empty or
/// xs[0] == 0.
[[nodiscard]] std::vector<double> relative_to_first(
    std::span<const double> xs);

/// z-score normalization: (x - mean) / stddev. A constant series maps to
/// all zeros.
[[nodiscard]] std::vector<double> zscores(std::span<const double> xs);

}  // namespace perfknow::stats
