// A small fixed-size worker pool for data-parallel analysis primitives.
//
// The only parallel construct the analysis layer needs is a blocking
// parallel_for over an index range where every index writes disjoint
// state: the caller thread participates in the work, exceptions thrown by
// the body are captured and the one from the lowest chunk is rethrown
// (so failure behaviour is deterministic), and nested calls degrade to
// inline execution instead of deadlocking. Results are bit-identical to a
// serial loop because the pool never changes *what* each index computes —
// only which thread computes it.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace perfknow {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means "no workers" and every
  /// parallel_for runs inline on the caller.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Runs body(i) for every i in [0, n), splitting the range into
  /// contiguous chunks executed by the workers and the calling thread.
  /// Blocks until all indices ran. If any body invocation throws, the
  /// exception from the lowest-numbered chunk is rethrown after the loop
  /// finishes. Ranges of at most `grain` indices (and all ranges, when
  /// the pool has no workers or the call is nested inside a pool task)
  /// run inline in index order.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 1);

  /// Process-wide pool sized from the PERFKNOW_THREADS environment
  /// variable when set, otherwise std::thread::hardware_concurrency().
  [[nodiscard]] static ThreadPool& shared();

  /// The pool analysis primitives should use on this thread: the pool
  /// installed by the innermost live CurrentScope, else shared(). This is
  /// how AnalysisSession's `threads` option reaches analysis::* without
  /// threading a pool through every call signature.
  [[nodiscard]] static ThreadPool& current() noexcept;

  /// Installs `pool` as ThreadPool::current() on the constructing thread
  /// for the scope's lifetime; nests (the previous override is restored
  /// on destruction). A scope must be destroyed on the thread that
  /// created it.
  class CurrentScope {
   public:
    explicit CurrentScope(ThreadPool& pool) noexcept;
    ~CurrentScope();
    CurrentScope(const CurrentScope&) = delete;
    CurrentScope& operator=(const CurrentScope&) = delete;

   private:
    ThreadPool* previous_;
  };

 private:
  void worker_loop();
  void enqueue(std::function<void()> job);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace perfknow
