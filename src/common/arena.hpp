// Bump allocator + chunked columns: the storage building blocks shared
// by the columnar WorkingMemory (rules/fact.hpp) and the beta-memory
// join network (rules/beta.hpp).
//
// Arena hands out aligned slices of 64 KiB chunks and never frees them
// individually — the structures built on top are append-only between
// resets. reset() rewinds every chunk for reuse (no free/realloc churn
// across sessions) and bumps a generation counter so handle types can
// assert they never outlive the storage they point into. Bytes reserved
// are exposed for telemetry so self-diagnosis rules can watch state
// growth.
//
// Column<T> is the structure-of-arrays unit: an append-only chunked
// vector whose growth never moves existing elements, so interior
// pointers stay stable for the lifetime of a generation. Elements must
// be trivially destructible because the arena never runs destructors —
// values with heap parts (e.g. rules::FactValue) live in deque-backed
// side pools instead.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace perfknow {

/// Bump allocator with chunk reuse across resets.
class Arena {
 public:
  static constexpr std::size_t kChunkBytes = 64 * 1024;

  void* allocate(std::size_t bytes, std::size_t align) {
    while (cur_ < chunks_.size()) {
      Chunk& c = chunks_[cur_];
      const std::size_t aligned = (c.used + align - 1) & ~(align - 1);
      if (aligned + bytes <= c.cap) {
        c.used = aligned + bytes;
        return c.data.get() + aligned;
      }
      ++cur_;
    }
    const std::size_t cap = std::max(bytes, kChunkBytes);
    Chunk c;
    c.data = std::make_unique<std::byte[]>(cap);
    c.cap = cap;
    c.used = bytes;
    reserved_ += cap;
    chunks_.push_back(std::move(c));
    return chunks_.back().data.get();
  }

  /// Rewinds every chunk for reuse and invalidates all outstanding
  /// allocations. Columns built on this arena must be clear()ed (or
  /// discarded) by the caller in the same breath.
  void reset() noexcept {
    for (Chunk& c : chunks_) c.used = 0;
    cur_ = 0;
    ++generation_;
  }

  [[nodiscard]] std::size_t bytes_reserved() const noexcept {
    return reserved_;
  }
  /// Bumped by every reset(); FactRef-style handles compare this to
  /// detect use across a clear().
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t used = 0;
    std::size_t cap = 0;
  };
  std::vector<Chunk> chunks_;
  std::size_t cur_ = 0;
  std::size_t reserved_ = 0;
  std::uint64_t generation_ = 0;
};

/// Append-only chunked column over an Arena: stable addresses (growth
/// never moves existing elements), O(1) append and index.
template <typename T>
class Column {
  static_assert(std::is_trivially_destructible_v<T>,
                "arena columns never run destructors");

 public:
  explicit Column(Arena& arena) : arena_(&arena) {}

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] T& operator[](std::size_t i) noexcept {
    return chunks_[i >> kShift][i & kMask];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return chunks_[i >> kShift][i & kMask];
  }
  void push_back(T v) {
    if ((size_ & kMask) == 0 && (size_ >> kShift) == chunks_.size()) {
      chunks_.push_back(static_cast<T*>(
          arena_->allocate(sizeof(T) << kShift, alignof(T))));
    }
    chunks_[size_ >> kShift][size_ & kMask] = v;
    ++size_;
  }

  /// Drops all elements AND the chunk pointers: the backing arena is
  /// expected to be reset() by the owner, which recycles the memory.
  void clear() noexcept {
    chunks_.clear();
    size_ = 0;
  }

 private:
  static constexpr std::size_t kShift = 12;  // 4096 elements per chunk
  static constexpr std::size_t kMask = (std::size_t{1} << kShift) - 1;
  Arena* arena_;
  std::vector<T*> chunks_;
  std::size_t size_ = 0;
};

}  // namespace perfknow
