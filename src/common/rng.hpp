// Deterministic random number generation.
//
// Everything stochastic in perfknow (synthetic sequences, workload jitter)
// draws from this generator so that trials, tests and benchmarks are
// bit-reproducible across runs and hosts. The engine is xoshiro256**,
// seeded through splitmix64 as its authors recommend.
#pragma once

#include <cstdint>
#include <limits>

namespace perfknow {

/// xoshiro256** pseudo-random generator with a splitmix64-seeded state.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single user seed.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step.
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) noexcept {
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) return operator()();  // full 64-bit range
    // Rejection-free modulo is acceptable here: span is tiny vs 2^64, so
    // bias is < span / 2^64 and irrelevant for workload synthesis.
    return lo + operator()() % span;
  }

  /// Standard normal via Box-Muller (one value per call; cache discarded
  /// deliberately to keep the state trajectory simple and reproducible).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Samples from a bounded Pareto-like heavy-tailed distribution in
  /// [lo, hi] with shape alpha > 0. Used for protein-length skew.
  double pareto_bounded(double lo, double hi, double alpha) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace perfknow
