// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the checksum
// the PKB binary trial store uses to validate every section payload.
// Incremental: feed chunks by passing the previous result as `seed`.
#pragma once

#include <cstddef>
#include <cstdint>

namespace perfknow {

/// CRC-32 of `n` bytes at `data`. Chain calls by passing the previous
/// return value as `seed` (the seed of the first chunk is 0).
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t n,
                                  std::uint32_t seed = 0);

}  // namespace perfknow
