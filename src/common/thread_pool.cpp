#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>

#include "telemetry/telemetry.hpp"

namespace perfknow {

namespace {

// True on threads currently executing pool work: a nested parallel_for
// must not wait on the queue it is itself draining.
thread_local bool tls_in_pool_task = false;

// Innermost CurrentScope override for this thread; null means shared().
thread_local ThreadPool* tls_current_pool = nullptr;

std::size_t default_thread_count() {
  if (const char* env = std::getenv("PERFKNOW_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  tls_in_pool_task = true;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stop_ and drained
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
  }
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  if (n == 0) return;
  static const telemetry::SpanSite for_site("threadpool.parallel_for");
  telemetry::ScopedSpan for_span(for_site);
  if (workers_.empty() || tls_in_pool_task || n <= std::max<std::size_t>(grain, 1)) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Contiguous chunks; workers and the caller claim them via an atomic
  // cursor. Errors are kept per chunk so the rethrown exception does not
  // depend on scheduling.
  struct ForState {
    std::size_t n = 0;
    std::size_t chunk = 0;
    std::size_t nchunks = 0;
    const std::function<void(std::size_t)>* body = nullptr;
    std::atomic<std::size_t> next{0};
    std::mutex m;
    std::condition_variable done_cv;
    std::size_t done = 0;
    std::vector<std::exception_ptr> errors;
  };

  auto state = std::make_shared<ForState>();
  state->n = n;
  state->nchunks =
      std::min(n, (workers_.size() + 1) * 4);  // +1: the caller drains too
  state->chunk = (n + state->nchunks - 1) / state->nchunks;
  state->nchunks = (n + state->chunk - 1) / state->chunk;
  state->body = &body;
  state->errors.resize(state->nchunks);

  auto drain = [](ForState& s) {
    // Each chunk is a span on the thread that ran it, so a telemetry
    // snapshot shows per-worker busy time and chunk imbalance (the
    // self_diagnosis rules judge "threadpool.chunk" imbalanceCv).
    static const telemetry::SpanSite chunk_site("threadpool.chunk");
    static telemetry::Counter& chunks = telemetry::counter("threadpool.chunks");
    for (;;) {
      const std::size_t c = s.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= s.nchunks) return;
      const std::size_t begin = c * s.chunk;
      const std::size_t end = std::min(s.n, begin + s.chunk);
      try {
        telemetry::ScopedSpan chunk_span(chunk_site);
        for (std::size_t i = begin; i < end; ++i) (*s.body)(i);
        chunks.add();
      } catch (...) {
        s.errors[c] = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(s.m);
      if (++s.done == s.nchunks) s.done_cv.notify_all();
    }
  };

  const std::size_t helper_jobs =
      std::min(workers_.size(), state->nchunks - 1);
  for (std::size_t i = 0; i < helper_jobs; ++i) {
    enqueue([state, drain] { drain(*state); });
  }
  drain(*state);
  {
    std::unique_lock<std::mutex> lock(state->m);
    state->done_cv.wait(lock,
                        [&] { return state->done == state->nchunks; });
  }
  for (auto& e : state->errors) {
    if (e) std::rethrow_exception(e);
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

ThreadPool& ThreadPool::current() noexcept {
  return tls_current_pool != nullptr ? *tls_current_pool : shared();
}

ThreadPool::CurrentScope::CurrentScope(ThreadPool& pool) noexcept
    : previous_(tls_current_pool) {
  tls_current_pool = &pool;
}

ThreadPool::CurrentScope::~CurrentScope() { tls_current_pool = previous_; }

}  // namespace perfknow
