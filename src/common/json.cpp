#include "common/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <string_view>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace perfknow::json {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& src) : src_(src) {}

  Value parse() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != src_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 96;

  [[noreturn]] void fail(const std::string& msg) const {
    int line = 1;
    int col = 1;
    for (std::size_t i = 0; i < pos_ && i < src_.size(); ++i) {
      if (src_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw ParseError(msg, line, col, strings::excerpt(src_, pos_));
  }

  void skip_ws() {
    while (pos_ < src_.size() &&
           (src_[pos_] == ' ' || src_[pos_] == '\t' || src_[pos_] == '\n' ||
            src_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= src_.size()) fail("unexpected end of JSON");
    return src_[pos_];
  }

  bool consume_keyword(const char* kw) {
    const std::size_t n = std::char_traits<char>::length(kw);
    if (src_.compare(pos_, n, kw) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    if (src_[pos_] != '"') fail("expected string");
    ++pos_;
    std::string out;
    while (true) {
      if (pos_ >= src_.size()) fail("unterminated string");
      const char c = src_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= src_.size()) fail("unterminated escape");
        const char e = src_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > src_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = src_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape digit");
            }
            // UTF-8 encode the BMP code point (surrogates pass through
            // as-is; the producers never emit them).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  Value parse_value() {
    if (++depth_ > kMaxDepth) fail("JSON nested too deeply");
    const char c = peek();
    Value v;
    if (c == '{') {
      ++pos_;
      v.kind = Value::Kind::kObject;
      if (peek() == '}') {
        ++pos_;
      } else {
        while (true) {
          skip_ws();
          if (pos_ >= src_.size()) fail("unterminated object");
          std::string key = parse_string();
          skip_ws();
          if (pos_ >= src_.size() || src_[pos_] != ':') fail("expected ':'");
          ++pos_;
          v.members.emplace_back(std::move(key), parse_value());
          const char d = peek();
          ++pos_;
          if (d == '}') break;
          if (d != ',') fail("expected ',' or '}'");
        }
      }
    } else if (c == '[') {
      ++pos_;
      v.kind = Value::Kind::kArray;
      if (peek() == ']') {
        ++pos_;
      } else {
        while (true) {
          v.items.push_back(parse_value());
          const char d = peek();
          ++pos_;
          if (d == ']') break;
          if (d != ',') fail("expected ',' or ']'");
        }
      }
    } else if (c == '"') {
      v.kind = Value::Kind::kString;
      v.text = parse_string();
    } else if (consume_keyword("true")) {
      v.kind = Value::Kind::kBool;
      v.boolean = true;
    } else if (consume_keyword("false")) {
      v.kind = Value::Kind::kBool;
      v.boolean = false;
    } else if (consume_keyword("null")) {
      v.kind = Value::Kind::kNull;
    } else {
      const std::size_t start = pos_;
      if (pos_ < src_.size() && (src_[pos_] == '-' || src_[pos_] == '+')) {
        ++pos_;
      }
      while (pos_ < src_.size() &&
             (std::isdigit(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '.' || src_[pos_] == 'e' || src_[pos_] == 'E' ||
              src_[pos_] == '+' || src_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ == start) fail("expected JSON value");
      const std::string_view text(src_.data() + start, pos_ - start);
      double value = 0.0;
      const auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), value);
      if (ec != std::errc{} || ptr != text.data() + text.size()) {
        fail("malformed number");
      }
      v.kind = Value::Kind::kNumber;
      v.number = value;
    }
    --depth_;
    return v;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Value parse(const std::string& src) { return Parser(src).parse(); }

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string quote(const std::string& s) { return "\"" + escape(s) + "\""; }

std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc{}) return "0";
  return std::string(buf, p);
}

}  // namespace perfknow::json
