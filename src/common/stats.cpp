#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace perfknow::stats {

namespace {

void require_nonempty(std::span<const double> xs, const char* fn) {
  if (xs.empty()) {
    throw InvalidArgumentError(std::string("stats::") + fn +
                               ": empty input");
  }
}

}  // namespace

double sum(std::span<const double> xs) {
  // Kahan summation: analysis pipelines sum millions of per-thread values
  // whose magnitudes span many orders; naive summation loses precision.
  double s = 0.0;
  double c = 0.0;
  for (double x : xs) {
    const double y = x - c;
    const double t = s + y;
    c = (t - s) - y;
    s = t;
  }
  return s;
}

double mean(std::span<const double> xs) {
  require_nonempty(xs, "mean");
  return sum(xs) / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  require_nonempty(xs, "variance");
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) {
    const double d = x - m;
    acc += d * d;
  }
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double sample_stddev(std::span<const double> xs) {
  if (xs.size() < 2) {
    throw InvalidArgumentError("stats::sample_stddev: need at least 2 values");
  }
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) {
    const double d = x - m;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double min(std::span<const double> xs) {
  require_nonempty(xs, "min");
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  require_nonempty(xs, "max");
  return *std::max_element(xs.begin(), xs.end());
}

double coefficient_of_variation(std::span<const double> xs) {
  require_nonempty(xs, "coefficient_of_variation");
  const double m = mean(xs);
  if (m == 0.0) return 0.0;
  return stddev(xs) / m;
}

double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw InvalidArgumentError(
        "stats::pearson_correlation: length mismatch");
  }
  if (xs.size() < 2) {
    throw InvalidArgumentError(
        "stats::pearson_correlation: need at least 2 points");
  }
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double percentile(std::span<const double> xs, double p) {
  require_nonempty(xs, "percentile");
  if (p < 0.0 || p > 100.0) {
    throw InvalidArgumentError("stats::percentile: p must be in [0, 100]");
  }
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw InvalidArgumentError("stats::linear_fit: length mismatch");
  }
  if (xs.size() < 2) {
    throw InvalidArgumentError("stats::linear_fit: need at least 2 points");
  }
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0) {
    throw InvalidArgumentError("stats::linear_fit: x series is constant");
  }
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

std::vector<double> relative_to_first(std::span<const double> xs) {
  require_nonempty(xs, "relative_to_first");
  if (xs.front() == 0.0) {
    throw InvalidArgumentError(
        "stats::relative_to_first: baseline (first element) is zero");
  }
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(x / xs.front());
  return out;
}

std::vector<double> zscores(std::span<const double> xs) {
  require_nonempty(xs, "zscores");
  const double m = mean(xs);
  const double sd = stddev(xs);
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(sd == 0.0 ? 0.0 : (x - m) / sd);
  return out;
}

}  // namespace perfknow::stats
