#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace perfknow::stats {

namespace {

// The reductions are written once as index-loop kernels over any view
// with size()/operator[] (std::span or StridedSpan). Identical loop
// structure means identical floating-point results for both entry
// points — the parallel analysis layer depends on that.

template <class V>
void require_nonempty(const V& xs, const char* fn) {
  if (xs.size() == 0) {
    throw InvalidArgumentError(std::string("stats::") + fn +
                               ": empty input");
  }
}

template <class V>
double sum_impl(const V& xs) {
  // Kahan summation: analysis pipelines sum millions of per-thread values
  // whose magnitudes span many orders; naive summation loses precision.
  double s = 0.0;
  double c = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double y = xs[i] - c;
    const double t = s + y;
    c = (t - s) - y;
    s = t;
  }
  return s;
}

template <class V>
double mean_impl(const V& xs) {
  require_nonempty(xs, "mean");
  return sum_impl(xs) / static_cast<double>(xs.size());
}

template <class V>
double variance_impl(const V& xs) {
  require_nonempty(xs, "variance");
  const double m = mean_impl(xs);
  double acc = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double d = xs[i] - m;
    acc += d * d;
  }
  return acc / static_cast<double>(xs.size());
}

template <class V>
double sample_stddev_impl(const V& xs) {
  if (xs.size() < 2) {
    throw InvalidArgumentError("stats::sample_stddev: need at least 2 values");
  }
  const double m = mean_impl(xs);
  double acc = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double d = xs[i] - m;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

template <class V>
double min_impl(const V& xs) {
  require_nonempty(xs, "min");
  double best = xs[0];
  for (std::size_t i = 1; i < xs.size(); ++i) best = std::min(best, xs[i]);
  return best;
}

template <class V>
double max_impl(const V& xs) {
  require_nonempty(xs, "max");
  double best = xs[0];
  for (std::size_t i = 1; i < xs.size(); ++i) best = std::max(best, xs[i]);
  return best;
}

template <class V>
double cv_impl(const V& xs) {
  require_nonempty(xs, "coefficient_of_variation");
  const double m = mean_impl(xs);
  if (m == 0.0) return 0.0;
  return std::sqrt(variance_impl(xs)) / m;
}

template <class X, class Y>
double pearson_impl(const X& xs, const Y& ys) {
  if (xs.size() != ys.size()) {
    throw InvalidArgumentError(
        "stats::pearson_correlation: length mismatch");
  }
  if (xs.size() < 2) {
    throw InvalidArgumentError(
        "stats::pearson_correlation: need at least 2 points");
  }
  const double mx = mean_impl(xs);
  const double my = mean_impl(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace

double sum(std::span<const double> xs) { return sum_impl(xs); }
double sum(StridedSpan xs) { return sum_impl(xs); }

double mean(std::span<const double> xs) { return mean_impl(xs); }
double mean(StridedSpan xs) { return mean_impl(xs); }

double variance(std::span<const double> xs) { return variance_impl(xs); }
double variance(StridedSpan xs) { return variance_impl(xs); }

double stddev(std::span<const double> xs) {
  return std::sqrt(variance_impl(xs));
}
double stddev(StridedSpan xs) { return std::sqrt(variance_impl(xs)); }

double sample_stddev(std::span<const double> xs) {
  return sample_stddev_impl(xs);
}
double sample_stddev(StridedSpan xs) { return sample_stddev_impl(xs); }

double min(std::span<const double> xs) { return min_impl(xs); }
double min(StridedSpan xs) { return min_impl(xs); }

double max(std::span<const double> xs) { return max_impl(xs); }
double max(StridedSpan xs) { return max_impl(xs); }

double coefficient_of_variation(std::span<const double> xs) {
  return cv_impl(xs);
}
double coefficient_of_variation(StridedSpan xs) { return cv_impl(xs); }

double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys) {
  return pearson_impl(xs, ys);
}
double pearson_correlation(StridedSpan xs, StridedSpan ys) {
  return pearson_impl(xs, ys);
}

double percentile(std::span<const double> xs, double p) {
  require_nonempty(xs, "percentile");
  if (p < 0.0 || p > 100.0) {
    throw InvalidArgumentError("stats::percentile: p must be in [0, 100]");
  }
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw InvalidArgumentError("stats::linear_fit: length mismatch");
  }
  if (xs.size() < 2) {
    throw InvalidArgumentError("stats::linear_fit: need at least 2 points");
  }
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0) {
    throw InvalidArgumentError("stats::linear_fit: x series is constant");
  }
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

std::vector<double> relative_to_first(std::span<const double> xs) {
  require_nonempty(xs, "relative_to_first");
  if (xs.front() == 0.0) {
    throw InvalidArgumentError(
        "stats::relative_to_first: baseline (first element) is zero");
  }
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(x / xs.front());
  return out;
}

std::vector<double> zscores(std::span<const double> xs) {
  require_nonempty(xs, "zscores");
  const double m = mean(xs);
  const double sd = stddev(xs);
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(sd == 0.0 ? 0.0 : (x - m) / sd);
  return out;
}

}  // namespace perfknow::stats
