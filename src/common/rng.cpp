#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace perfknow {

double Rng::normal() noexcept {
  // Box-Muller; guard the log argument away from zero.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::pareto_bounded(double lo, double hi, double alpha) noexcept {
  // Inverse-CDF sampling of the bounded Pareto distribution.
  const double u = uniform();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  const double x = std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  return x;
}

}  // namespace perfknow
