// A minimal JSON value model and recursive-descent parser shared by the
// text ingest paths (explanation JSON re-import, Google-Benchmark trial
// conversion). Hoisted from provenance/explanation.cpp so every JSON
// front end fails the same way: malformed input raises ParseError with a
// line/column/excerpt diagnostic, never a crash (the `explain` fuzz
// front end exercises this parser through explanations_from_json).
//
// This is deliberately not a general JSON library: numbers are doubles,
// object member order is preserved (no map), duplicate keys are kept and
// find() returns the first. That is exactly what the tolerant-subset
// readers need and nothing more.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace perfknow::json {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<Value> items;
  std::vector<std::pair<std::string, Value>> members;

  /// First member with the given key, or nullptr. Object kind only.
  [[nodiscard]] const Value* find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Parses a complete JSON document (trailing characters are an error).
/// Nesting is capped at 96 levels; malformed input throws ParseError
/// carrying the 1-based line/column and a source excerpt.
[[nodiscard]] Value parse(const std::string& src);

// ---- writer primitives -------------------------------------------------
// The inverse half, shared by every JSON producer (provenance
// explanations, the perfknow.api/1 wire envelope) so strings escape and
// numbers round-trip identically everywhere.

/// Escapes for a double-quoted JSON string (quotes not included).
[[nodiscard]] std::string escape(const std::string& s);

/// `"escaped"` — escape() with the surrounding quotes.
[[nodiscard]] std::string quote(const std::string& s);

/// Shortest round-trip rendering of a double. JSON has no Inf/NaN, so
/// non-finite values render as null (read back as 0).
[[nodiscard]] std::string number(double v);

}  // namespace perfknow::json
