// Error types shared by all perfknow subsystems.
//
// Every subsystem throws a subclass of perfknow::Error so callers can catch
// either the precise category (e.g. ParseError from the rules/script
// front ends) or the library-wide base.
#pragma once

#include <stdexcept>
#include <string>

namespace perfknow {

/// Base class for all errors raised by the perfknow library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A lookup failed: unknown trial, metric, event, counter, variable, ...
class NotFoundError : public Error {
 public:
  explicit NotFoundError(const std::string& what) : Error(what) {}
};

/// Caller passed arguments that violate an interface precondition.
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what) : Error(what) {}
};

/// A text front end (rules DSL, PerfScript, profile formats) rejected input.
///
/// Carries structured location data alongside the formatted what() string:
/// the 1-based source line and column where the problem was detected, the
/// source file (when the input came from a file), and a short excerpt of
/// the offending input. Diagnostics render as
///
///   file:line: message          (file known)
///   file:line:column: message   (file and column known)
///   file: message               (file known, no line -- binary formats)
///   message (line N)            (no file -- string input)
///
/// with ` near '<excerpt>'` appended when an excerpt is available.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line)
      : ParseError(what, line, 0, "", "") {}
  explicit ParseError(const std::string& what)
      : ParseError(what, 0, 0, "", "") {}
  ParseError(const std::string& what, int line, int column,
             const std::string& excerpt = "", const std::string& file = "")
      : Error(format(what, line, column, excerpt, file)),
        message_(what),
        excerpt_(excerpt),
        file_(file),
        line_(line),
        column_(column) {}

  /// 1-based line number, or 0 when no location is known.
  [[nodiscard]] int line() const noexcept { return line_; }
  /// 1-based column number, or 0 when no column is known.
  [[nodiscard]] int column() const noexcept { return column_; }
  /// Source file the input came from; empty for in-memory sources.
  [[nodiscard]] const std::string& file() const noexcept { return file_; }
  /// Short excerpt of the offending input; may be empty.
  [[nodiscard]] const std::string& excerpt() const noexcept {
    return excerpt_;
  }
  /// The bare message without any location formatting.
  [[nodiscard]] const std::string& message() const noexcept {
    return message_;
  }

  /// Returns a copy of this error with the source file attached, so the
  /// file loaders can upgrade `msg (line N)` to `file:line: msg` without
  /// every internal throw site knowing the path.
  [[nodiscard]] ParseError with_file(const std::string& file) const {
    return ParseError(message_, line_, column_, excerpt_, file);
  }

 private:
  static std::string format(const std::string& what, int line, int column,
                            const std::string& excerpt,
                            const std::string& file) {
    std::string out;
    if (!file.empty()) {
      out = file;
      if (line > 0) {
        out += ":" + std::to_string(line);
        if (column > 0) out += ":" + std::to_string(column);
      }
      out += ": " + what;
    } else {
      out = what;
      if (line > 0) {
        out += " (line " + std::to_string(line);
        if (column > 0) out += ", column " + std::to_string(column);
        out += ")";
      }
    }
    if (!excerpt.empty()) out += " near '" + excerpt + "'";
    return out;
  }

  std::string message_;
  std::string excerpt_;
  std::string file_;
  int line_;
  int column_;
};

/// Runtime failure while evaluating a script or rule action.
class EvalError : public Error {
 public:
  explicit EvalError(const std::string& what) : Error(what) {}
};

/// I/O failure (profile snapshot load/save, rulebase file, script file).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

}  // namespace perfknow
