// Error types shared by all perfknow subsystems.
//
// Every subsystem throws a subclass of perfknow::Error so callers can catch
// either the precise category (e.g. ParseError from the rules/script
// front ends) or the library-wide base.
#pragma once

#include <stdexcept>
#include <string>

namespace perfknow {

/// Base class for all errors raised by the perfknow library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A lookup failed: unknown trial, metric, event, counter, variable, ...
class NotFoundError : public Error {
 public:
  explicit NotFoundError(const std::string& what) : Error(what) {}
};

/// Caller passed arguments that violate an interface precondition.
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what) : Error(what) {}
};

/// A text front end (rules DSL, PerfScript, profile formats) rejected input.
/// Carries the 1-based source line where the problem was detected.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line)
      : Error(what + " (line " + std::to_string(line) + ")"), line_(line) {}
  explicit ParseError(const std::string& what) : Error(what), line_(0) {}

  /// 1-based line number, or 0 when no location is known.
  [[nodiscard]] int line() const noexcept { return line_; }

 private:
  int line_;
};

/// Runtime failure while evaluating a script or rule action.
class EvalError : public Error {
 public:
  explicit EvalError(const std::string& what) : Error(what) {}
};

/// I/O failure (profile snapshot load/save, rulebase file, script file).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

}  // namespace perfknow
