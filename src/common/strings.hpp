// String helpers shared by the text front ends (rules DSL, PerfScript,
// profile snapshot formats) and the report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace perfknow::strings {

/// Splits on a single character; adjacent delimiters yield empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// Splits on arbitrary whitespace runs; never yields empty fields.
[[nodiscard]] std::vector<std::string> split_whitespace(std::string_view s);

/// Strips leading and trailing whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix);
[[nodiscard]] bool contains(std::string_view s, std::string_view needle);

[[nodiscard]] std::string to_lower(std::string_view s);
[[nodiscard]] std::string to_upper(std::string_view s);

/// Joins elements with the given separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Replaces every occurrence of `from` with `to`.
[[nodiscard]] std::string replace_all(std::string_view s,
                                      std::string_view from,
                                      std::string_view to);

/// Fixed-precision formatting without iostream state leakage.
[[nodiscard]] std::string format_double(double v, int precision = 4);

/// Parses a double; throws ParseError with the value echoed on failure.
[[nodiscard]] double parse_double(std::string_view s);

/// Parses a non-negative integer; throws ParseError on failure.
[[nodiscard]] long long parse_int(std::string_view s);

/// Renders one byte for diagnostics: printable characters verbatim,
/// everything else (NUL, control bytes, high bytes) as \xNN so error
/// messages from hostile input stay printable.
[[nodiscard]] std::string printable_char(char c);

/// Returns up to `radius` characters to each side of `pos`, clipped to
/// `pos`'s line, with non-printable bytes escaped -- the input excerpt
/// attached to ParseError diagnostics.
[[nodiscard]] std::string excerpt(std::string_view s, std::size_t pos,
                                  std::size_t radius = 20);

}  // namespace perfknow::strings
