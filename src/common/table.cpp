#include "common/table.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace perfknow {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) {
    throw InvalidArgumentError("TextTable: header must be non-empty");
  }
}

TextTable& TextTable::begin_row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::add(std::string cell) {
  if (rows_.empty()) begin_row();
  rows_.back().push_back(std::move(cell));
  return *this;
}

TextTable& TextTable::add(double v, int precision) {
  return add(strings::format_double(v, precision));
}

TextTable& TextTable::add(long long v) { return add(std::to_string(v)); }

TextTable& TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto pad = [](const std::string& s, std::size_t w) {
    std::string out(w - std::min(w, s.size()), ' ');
    return out + s;
  };

  std::string out;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c != 0) out += "  ";
    out += pad(header_[c], widths[c]);
  }
  out += '\n';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c != 0) out += "  ";
    out += std::string(widths[c], '-');
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out += "  ";
      out += pad(row[c], c < widths.size() ? widths[c] : row[c].size());
    }
    out += '\n';
  }
  return out;
}

std::string TextTable::csv() const {
  std::string out = strings::join(header_, ",");
  out += '\n';
  for (const auto& row : rows_) {
    out += strings::join(row, ",");
    out += '\n';
  }
  return out;
}

}  // namespace perfknow
