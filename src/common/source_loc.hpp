// A position in a source artifact (rulebase file, builtin rulebase,
// script). Kept deliberately tiny: provenance records one per rule and
// per pattern, so thousands may be alive during a diagnosis run.
#pragma once

#include <string>

namespace perfknow {

struct SourceLoc {
  std::string file;  ///< path or synthetic label ("builtin:openmp"); may be empty
  int line = 0;      ///< 1-based; 0 means unknown
  int column = 0;    ///< 1-based; 0 means unknown

  [[nodiscard]] bool known() const noexcept { return line > 0; }

  /// "file:line" (or "file:line:col" when the column is known); just
  /// "line N" when there is no file; "?" when nothing is known.
  [[nodiscard]] std::string str() const {
    if (!known()) return file.empty() ? "?" : file;
    std::string out = file.empty() ? "line " + std::to_string(line)
                                   : file + ":" + std::to_string(line);
    if (column > 0 && !file.empty()) {
      out += ":" + std::to_string(column);
    }
    return out;
  }
};

}  // namespace perfknow
