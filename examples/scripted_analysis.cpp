// Scenario: fully scripted analysis from an external PerfScript file —
// the automation workflow the paper's integration enables: measurement
// produces profiles, and a reusable script encodes the whole multi-step
// diagnosis.
//
// Usage: scripted_analysis [script.ps]
// (defaults to examples/scripts/stall_analysis.ps, falling back to an
// embedded copy when run from another directory).
#include <cstdio>
#include <filesystem>
#include <memory>

#include "apps/genidlest/genidlest.hpp"
#include "machine/machine.hpp"
#include "perfknow.hpp"

namespace gen = perfknow::apps::genidlest;
using perfknow::machine::Machine;
using perfknow::machine::MachineConfig;

namespace {

constexpr const char* kEmbeddedScript = R"PS(
ruleHarness = RuleHarness.useGlobalRules("openuh/OpenUHRules.drl")
trial = TrialMeanResult(Utilities.getTrial("Fluid Dynamic", "rib 90",
                                           "OpenMP_unopt_16p_O2"))
op = DeriveMetricOperation(trial, "BACK_END_BUBBLE_ALL", "CPU_CYCLES",
                           DeriveMetricOperation.DIVIDE)
derived = op.processData().get(0)
mainEvent = derived.getMainEvent()
for event in derived.getEvents():
    MeanEventFact.compareEventToMain(derived, mainEvent, derived, event)
assertLoadBalanceFacts(trial)
assertStallFacts(trial)
assertMemoryLocalityFacts(trial)
print("rules fired: " + str(ruleHarness.processRules()))
)PS";

}  // namespace

int main(int argc, char** argv) {
  // Populate the repository with a profile of the unoptimized run.
  Machine machine(MachineConfig::altix3600());
  auto cfg = gen::GenConfig::rib90();
  cfg.nprocs = 16;
  cfg.model = gen::Model::kOpenMP;
  cfg.optimized = false;
  auto result = gen::run_genidlest(machine, cfg);

  perfknow::perfdmf::Repository repo;
  repo.put("Fluid Dynamic", "rib 90",
           std::make_shared<perfknow::profile::Trial>(
               std::move(result.trial)));

  perfknow::script::AnalysisSession session(
      perfknow::script::SessionOptions{&repo});
  session.interpreter().set_echo(true);

  const std::filesystem::path script =
      argc > 1 ? argv[1] : "examples/scripts/stall_analysis.ps";
  if (std::filesystem::exists(script)) {
    std::printf("running %s\n\n", script.string().c_str());
    session.run_file(script);
  } else {
    std::printf("(script file %s not found; running the embedded copy)\n\n",
                script.string().c_str());
    session.run(kEmbeddedScript);
  }

  std::printf("\n%zu structured diagnoses produced:\n",
              session.harness().diagnoses().size());
  for (const auto& d : session.harness().diagnoses()) {
    std::printf("  [%s] %s\n", d.problem.c_str(), d.event.c_str());
  }
  return 0;
}
