// Scenario: closing the measurement -> analysis -> compiler loop.
//
// Fig. 3 of the paper marks the arrow from PerfExplorer back into the
// OpenUH cost models as "future". This example runs that loop:
//
//   1. run the unoptimized GenIDLEST OpenMP workload and profile it;
//   2. distill per-region measured facts (remote-access ratio, load
//      imbalance) into an openuh::FeedbackData file — the compiler-side
//      interchange format;
//   3. reload the file as the compiler would and re-evaluate the LNO
//      cost model: the static estimate could not see the NUMA problem,
//      the feedback-directed one can;
//   4. show the parallel model consuming measured imbalance for the MSAP
//      loop — the paper's "detect imbalances due to different amounts of
//      work per thread in parallel loops" (§V).
#include <cstdio>
#include <filesystem>

#include "apps/genidlest/genidlest.hpp"
#include "apps/msap/msap.hpp"
#include "machine/machine.hpp"
#include "openuh/compiler.hpp"
#include "openuh/cost_model.hpp"

namespace gen = perfknow::apps::genidlest;
namespace msap = perfknow::apps::msap;
using perfknow::machine::Machine;
using perfknow::machine::MachineConfig;

int main() {
  std::printf("== Feedback-directed cost models ==\n\n");

  // --- 1. measure -------------------------------------------------------
  Machine machine(MachineConfig::altix3600());
  auto cfg = gen::GenConfig::rib90();
  cfg.nprocs = 16;
  cfg.model = gen::Model::kOpenMP;
  cfg.optimized = false;
  const auto run = gen::run_genidlest(machine, cfg);
  const auto& trial = run.trial;
  std::printf("1. measured unoptimized OpenMP 90rib: %.3f s\n",
              run.elapsed_seconds);

  // --- 2. distill feedback ----------------------------------------------
  perfknow::openuh::FeedbackData feedback;
  const auto l3 = trial.metric_id("L3_MISSES");
  const auto remote = trial.metric_id("REMOTE_MEMORY_ACCESSES");
  const auto time = trial.metric_id("TIME");
  for (const char* region : {"matxvec", "pc_jac_glb", "diff_coeff"}) {
    const auto e = trial.event_id(region);
    perfknow::openuh::RegionFeedback rf;
    rf.measured_time_usec = trial.mean_exclusive(e, time);
    const double misses = trial.mean_exclusive(e, l3);
    rf.remote_access_ratio =
        misses == 0.0 ? 0.0
                      : trial.mean_exclusive(e, remote) / misses;
    feedback.set(std::string(region) + "_loop", rf);
    std::printf("   %s: measured remote/L3 ratio %.2f\n", region,
                *rf.remote_access_ratio);
  }
  const auto fb_path = std::filesystem::temp_directory_path() /
                       "genidlest_feedback.tsv";
  feedback.save(fb_path);
  std::printf("2. wrote compiler feedback to %s\n\n",
              fb_path.string().c_str());

  // --- 3. re-evaluate the cost model ------------------------------------
  const auto loaded = perfknow::openuh::FeedbackData::load(fb_path);
  perfknow::openuh::CostModel model(MachineConfig::altix3600());
  perfknow::openuh::LoopNest nest;
  nest.name = "matxvec_loop";
  nest.trip_counts = {4, 128, 128};
  nest.flops_per_iter = 13.0;
  nest.int_ops_per_iter = 150.0;
  perfknow::openuh::ArrayRef coef;
  coef.name = "coef";
  coef.extent_elements = 7ull * 4 * 128 * 128;
  nest.arrays.push_back(coef);
  const auto cg =
      perfknow::openuh::codegen_profile(perfknow::openuh::OptLevel::kO2);

  const auto before = model.evaluate(nest, cg);
  model.set_feedback(&loaded);
  const auto after = model.evaluate(nest, cg);
  std::printf(
      "3. LNO cost model for matxvec_loop:\n"
      "   static estimate:   %.3g cycles (memory stalls %.3g)\n"
      "   with feedback:     %.3g cycles (memory stalls %.3g) — %.1fx\n"
      "   The compiler now prioritizes locality transformations for this "
      "nest.\n\n",
      before.total(), before.memory_stall_cycles, after.total(),
      after.memory_stall_cycles, after.total() / before.total());

  // --- 4. parallel model with measured imbalance ------------------------
  Machine m2(MachineConfig::altix300());
  msap::MsapConfig mcfg;
  mcfg.threads = 16;
  const auto msap_run = msap::run_msap(m2, mcfg);
  perfknow::openuh::FeedbackData msap_fb;
  perfknow::openuh::RegionFeedback rf;
  rf.imbalance_cv = msap_run.stage1_loop.imbalance();
  msap_fb.set("sw_outer_loop", rf);

  perfknow::openuh::CostModel pmodel(MachineConfig::altix300());
  perfknow::openuh::LoopNest outer;
  outer.name = "sw_outer_loop";
  outer.trip_counts = {400};
  outer.flops_per_iter = 0.0;
  outer.int_ops_per_iter = 4e6;  // one pairwise-alignment batch
  outer.parallelizable = true;

  perfknow::openuh::Transformation par;
  par.parallelize = true;
  par.num_threads = 16;
  const auto static_cost = pmodel.evaluate(outer, cg, par);
  pmodel.set_feedback(&msap_fb);
  const auto fed_cost = pmodel.evaluate(outer, cg, par);
  std::printf(
      "4. parallel model for the MSAP outer loop at 16 threads:\n"
      "   static estimate assumes balance:  imbalance cost %.3g cycles\n"
      "   with measured cv=%.2f feedback:   imbalance cost %.3g cycles\n"
      "   -> the model now predicts the barrier idle time the schedule "
      "change removes.\n",
      static_cost.imbalance_cycles, *rf.imbalance_cv,
      fed_cost.imbalance_cycles);

  std::filesystem::remove(fb_path);
  return 0;
}
