// pkx — a command-line PerfExplorer: browse a PerfDMF repository, run
// PerfScript analyses against it, and import/export profiles.
//
//   pkx demo <repo-dir>                         create a demo repository
//   pkx <repo-dir> list                         list app/experiment/trials
//   pkx <repo-dir> show <app> <exp> <trial>     top events and metadata
//   pkx <repo-dir> run <script.ps>              run an analysis script
//   pkx <repo-dir> export-csv <app> <exp> <trial> <metric>
//   pkx <repo-dir> import-tau <tau-dir> <app> <exp>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/facts.hpp"
#include "analysis/operations.hpp"
#include "analysis/report.hpp"
#include "rules/rulebases.hpp"
#include "apps/genidlest/genidlest.hpp"
#include "apps/msap/msap.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "io/format.hpp"
#include "machine/machine.hpp"
#include "perfdmf/repository.hpp"
#include "perfdmf/snapshot.hpp"
#include "provenance/explanation.hpp"
#include "script/bindings.hpp"

namespace pk = perfknow;
using pk::machine::Machine;
using pk::machine::MachineConfig;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  pkx demo <repo-dir>\n"
      "  pkx <repo-dir> list\n"
      "  pkx <repo-dir> show <app> <exp> <trial>\n"
      "  pkx <repo-dir> run <script.ps>\n"
      "  pkx <repo-dir> export-csv <app> <exp> <trial> <metric>\n"
      "  pkx <repo-dir> import-tau <tau-dir> <app> <exp>\n"
      "  pkx <repo-dir> export-json <app> <exp> <trial> <file>\n"
      "  pkx <repo-dir> import <file-or-dir> <app> <exp>\n"
      "  pkx <repo-dir> report <app> <exp> <trial>\n"
      "  pkx <repo-dir> explain <app> <exp> <trial> [--json <file>]"
      " [--dot <file>]\n"
      "  pkx explain --from <explanations.json>\n"
      "\n"
      "import auto-detects the profile format (pkprof, pkb, json, csv,\n"
      "tau); import-csv and import-tau remain as aliases.\n"
      "explain runs the OpenUH rulebase with full provenance capture and\n"
      "prints a proof tree per diagnosis; --from re-renders a previously\n"
      "exported --json file without touching a repository.\n");
  return 2;
}

int cmd_demo(const std::string& dir) {
  pk::perfdmf::Repository repo;
  // MSAP under both schedules.
  for (const bool dynamic : {false, true}) {
    Machine m(MachineConfig::altix300());
    pk::apps::msap::MsapConfig cfg;
    cfg.threads = 16;
    cfg.schedule = dynamic ? pk::runtime::Schedule::dynamic(1)
                           : pk::runtime::Schedule::static_even();
    auto r = pk::apps::msap::run_msap(m, cfg);
    repo.put("MSAP", "schedules",
             std::make_shared<pk::profile::Trial>(std::move(r.trial)));
  }
  // GenIDLEST unoptimized/optimized at 16 threads.
  for (const bool optimized : {false, true}) {
    Machine m(MachineConfig::altix3600());
    auto cfg = pk::apps::genidlest::GenConfig::rib90();
    cfg.model = pk::apps::genidlest::Model::kOpenMP;
    cfg.optimized = optimized;
    auto r = pk::apps::genidlest::run_genidlest(m, cfg);
    repo.put("Fluid Dynamic", "rib 90",
             std::make_shared<pk::profile::Trial>(std::move(r.trial)));
  }
  // An unoptimized scaling study for examples/scripts/scalability.ps.
  for (const unsigned procs : {1u, 2u, 4u, 8u, 16u}) {
    Machine m(MachineConfig::altix3600());
    auto cfg = pk::apps::genidlest::GenConfig::rib90();
    cfg.model = pk::apps::genidlest::Model::kOpenMP;
    cfg.optimized = false;
    cfg.nprocs = procs;
    auto r = pk::apps::genidlest::run_genidlest(m, cfg);
    repo.put("Fluid Dynamic", "rib 90 scaling",
             std::make_shared<pk::profile::Trial>(std::move(r.trial)));
  }
  repo.save(dir);
  std::printf("wrote demo repository (%zu trials) to %s\n",
              repo.trial_count(), dir.c_str());
  return 0;
}

int cmd_list(const pk::perfdmf::Repository& repo) {
  for (const auto& app : repo.applications()) {
    std::printf("%s\n", app.c_str());
    for (const auto& exp : repo.experiments(app)) {
      std::printf("  %s\n", exp.c_str());
      for (const auto& trial : repo.trials(app, exp)) {
        const auto t = repo.get(app, exp, trial);
        std::printf("    %-28s %zu threads, %zu events, %zu metrics\n",
                    trial.c_str(), t->thread_count(), t->event_count(),
                    t->metric_count());
      }
    }
  }
  return 0;
}

int cmd_show(const pk::perfdmf::Repository& repo, const std::string& app,
             const std::string& exp, const std::string& trial_name) {
  const auto trial = repo.get(app, exp, trial_name);
  std::printf("trial %s (%zu threads)\n", trial->name().c_str(),
              trial->thread_count());
  for (const auto& [k, v] : trial->all_metadata()) {
    std::printf("  %s = %s\n", k.c_str(), v.c_str());
  }
  const std::string metric =
      trial->find_metric("TIME") ? "TIME" : trial->metric(0).name;
  pk::TextTable table({"event", "mean " + metric, "cv", "% of runtime"});
  for (const auto& s : pk::analysis::top_events(*trial, metric, 12)) {
    table.begin_row()
        .add(s.name)
        .add(s.mean, 1)
        .add(s.cv, 3)
        .add(pk::analysis::runtime_fraction(*trial, s.event, metric) *
                 100.0,
             1);
  }
  std::printf("\n%s", table.str().c_str());
  return 0;
}

int cmd_explain(const pk::perfdmf::Repository& repo,
                const std::vector<std::string>& args) {
  const auto trial = repo.get(args[2], args[3], args[4]);
  std::string json_file;
  std::string dot_file;
  if ((args.size() - 5) % 2 != 0) return usage();
  for (std::size_t i = 5; i + 1 < args.size(); i += 2) {
    if (args[i] == "--json") json_file = args[i + 1];
    else if (args[i] == "--dot") dot_file = args[i + 1];
    else return usage();
  }

  pk::rules::RuleHarness harness;
  harness.set_provenance(pk::provenance::ProvenanceMode::kFull);
  pk::rules::builtin::use(harness, pk::rules::builtin::openuh_rules());
  pk::analysis::assert_load_balance_facts(harness, *trial);
  if (trial->find_metric("BACK_END_BUBBLE_ALL")) {
    pk::analysis::assert_stall_facts(harness, *trial);
  }
  if (trial->find_metric("L3_MISSES")) {
    pk::analysis::assert_memory_locality_facts(harness, *trial);
  }
  harness.process_rules();

  std::vector<pk::provenance::Explanation> explanations;
  for (const auto& d : harness.diagnoses()) {
    if (d.provenance) explanations.push_back(*d.provenance);
  }
  if (explanations.empty()) {
    std::printf("no diagnoses for %s/%s/%s\n", args[2].c_str(),
                args[3].c_str(), args[4].c_str());
    return 0;
  }
  for (const auto& e : explanations) {
    std::fputs(pk::provenance::to_text(e).c_str(), stdout);
    std::fputs("\n", stdout);
  }
  if (!json_file.empty()) {
    std::ofstream os(json_file);
    os << pk::provenance::to_json(explanations);
    std::printf("wrote %s\n", json_file.c_str());
  }
  if (!dot_file.empty()) {
    std::ofstream os(dot_file);
    os << pk::provenance::to_dot(explanations);
    std::printf("wrote %s\n", dot_file.c_str());
  }
  return 0;
}

int cmd_explain_from(const std::string& file) {
  std::ifstream is(file);
  if (!is) {
    throw pk::IoError("cannot open explanation file: " + file);
  }
  std::ostringstream ss;
  ss << is.rdbuf();
  const auto explanations = pk::provenance::explanations_from_json(ss.str());
  for (const auto& e : explanations) {
    std::fputs(pk::provenance::to_text(e).c_str(), stdout);
    std::fputs("\n", stdout);
  }
  std::printf("%zu explanations\n", explanations.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.size() == 2 && args[0] == "demo") {
      return cmd_demo(args[1]);
    }
    if (args.size() == 3 && args[0] == "explain" && args[1] == "--from") {
      return cmd_explain_from(args[2]);
    }
    if (args.size() < 2) return usage();
    auto repo = pk::perfdmf::Repository::load(args[0]);
    const std::string& cmd = args[1];

    if (cmd == "list") return cmd_list(repo);
    if (cmd == "show" && args.size() == 5) {
      return cmd_show(repo, args[2], args[3], args[4]);
    }
    if (cmd == "run" && args.size() == 3) {
      pk::script::AnalysisSession session(pk::script::SessionOptions{&repo});
      session.interpreter().set_echo(true);
      session.run_file(args[2]);
      std::printf("\n%zu diagnoses\n",
                  session.harness().diagnoses().size());
      for (const auto& d : session.harness().diagnoses()) {
        std::printf("  [%s] %s -> %s\n", d.problem.c_str(),
                    d.event.c_str(), d.recommendation.c_str());
      }
      return 0;
    }
    if (cmd == "report" && args.size() == 5) {
      const auto trial = repo.get(args[2], args[3], args[4]);
      pk::rules::RuleHarness harness;
      pk::rules::builtin::use(harness,
                              pk::rules::builtin::openuh_rules());
      pk::analysis::assert_load_balance_facts(harness, *trial);
      if (trial->find_metric("BACK_END_BUBBLE_ALL")) {
        pk::analysis::assert_stall_facts(harness, *trial);
      }
      if (trial->find_metric("L3_MISSES")) {
        pk::analysis::assert_memory_locality_facts(harness, *trial);
      }
      harness.process_rules();
      std::fputs(
          pk::analysis::render_report(*trial, &harness).c_str(), stdout);
      return 0;
    }
    if (cmd == "explain" && args.size() >= 5) {
      return cmd_explain(repo, args);
    }
    if (cmd == "export-csv" && args.size() == 6) {
      const auto trial = repo.get(args[2], args[3], args[4]);
      std::fputs(pk::perfdmf::to_csv(*trial, args[5]).c_str(), stdout);
      return 0;
    }
    if (cmd == "export-json" && args.size() == 6) {
      pk::io::save_trial(*repo.get(args[2], args[3], args[4]), args[5],
                         "json");
      std::printf("wrote %s\n", args[5].c_str());
      return 0;
    }
    // "import" sniffs the format; the old import-csv/import-tau spellings
    // go through the same auto-detecting front door.
    if ((cmd == "import" || cmd == "import-csv" || cmd == "import-tau") &&
        args.size() == 5) {
      auto trial = std::make_shared<pk::profile::Trial>(
          pk::io::open_trial(args[2]));
      repo.put(args[3], args[4], trial);
      repo.save(args[0]);
      std::printf("imported %s as %s/%s/%s\n", args[2].c_str(),
                  args[3].c_str(), args[4].c_str(), trial->name().c_str());
      return 0;
    }
    return usage();
  } catch (const pk::Error& e) {
    std::fprintf(stderr, "pkx: %s\n", e.what());
    return 1;
  }
}
