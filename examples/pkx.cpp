// pkx — a command-line PerfExplorer: browse a PerfDMF repository, run
// PerfScript analyses against it, import/export profiles, and diff
// versioned trials with rules/regression.rules.
//
// All the logic lives in tools::pkx_main (src/tools/pkx_cli.cpp) so the
// test suite can drive every subcommand against in-memory streams; this
// is just the process entry point.
#include <iostream>
#include <string>
#include <vector>

#include "perfknow.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return perfknow::tools::pkx_main(args, std::cout, std::cerr);
}
