// Example: the full three-stage ClustalW pipeline on real sequences.
//
// Stage 1 (Smith-Waterman distance matrix), stage 2 (UPGMA guide tree),
// stage 3 (progressive profile alignment) — the actual computation the
// MSAP case study's performance model stands in for at scale.
#include <cstdio>

#include "apps/msap/alignment.hpp"

namespace msap = perfknow::apps::msap;

int main() {
  // Two homologous families plus one divergent member.
  const std::vector<std::string> sequences = {
      "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ",
      "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEV",
      "MKTAYIDKQRQISFVKSHFSRQLEERLGLI",
      "GGGSSSPPPLLLKKKAAADDDEEEFFFHHH",
      "GGGSSSAPPLLLKKKAAADDDEEEFFFHH",
  };

  std::printf("== ClustalW-style pipeline on %zu sequences ==\n\n",
              sequences.size());

  const auto result = msap::align_sequences(sequences);

  std::printf("stage 1 — distance matrix:\n");
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    std::printf("  ");
    for (std::size_t j = 0; j < sequences.size(); ++j) {
      std::printf("%5.2f ", result.distances[i][j]);
    }
    std::printf("\n");
  }

  std::printf("\nstage 2 — UPGMA guide tree: %s\n",
              msap::to_newick(result.tree).c_str());

  std::printf("\nstage 3 — progressive alignment (%zu columns):\n",
              result.alignment[0].size());
  for (std::size_t i = 0; i < result.alignment.size(); ++i) {
    std::printf("  seq%zu  %s\n", i, result.alignment[i].c_str());
  }
  std::printf("\nsum-of-pairs score: %.1f\n",
              msap::sum_of_pairs_score(result.alignment));
  return 0;
}
