// Example: GenIDLEST OpenMP-vs-MPI scaling study (the paper's Fig. 5).
//
// Runs the 90-degree-rib problem at increasing processor counts in three
// variants — unoptimized OpenMP, optimized OpenMP, optimized MPI — and
// prints total time, speedup, the OpenMP/MPI gap, and the share of time
// in exchange_var__, which is what the paper's data-locality case study
// diagnoses.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/genidlest/genidlest.hpp"
#include "common/table.hpp"
#include "machine/machine.hpp"
#include "perfknow.hpp"

namespace gen = perfknow::apps::genidlest;
using perfknow::machine::Machine;
using perfknow::machine::MachineConfig;

namespace {

gen::GenResult run(unsigned procs, gen::Model model, bool optimized) {
  Machine machine(MachineConfig::altix3600());
  auto cfg = gen::GenConfig::rib90();
  cfg.nprocs = procs;
  cfg.model = model;
  cfg.optimized = optimized;
  return gen::run_genidlest(machine, cfg);
}

double exchange_fraction(const gen::GenResult& r) {
  const auto& t = r.trial;
  const auto ev = t.event_id("exchange_var__");
  return perfknow::analysis::runtime_fraction(t, ev) +
         perfknow::analysis::runtime_fraction(
             t, t.event_id("mpi_send_recv_ko"));
}

}  // namespace

int main() {
  const std::vector<unsigned> proc_counts = {1, 2, 4, 8, 16, 32};
  perfknow::TextTable table({"procs", "OpenMP-unopt [s]", "OpenMP-opt [s]",
                             "MPI-opt [s]", "unopt/MPI", "opt/MPI",
                             "exch% (unopt)"});

  std::vector<double> base(3, 0.0);
  for (const unsigned p : proc_counts) {
    const auto unopt = run(p, gen::Model::kOpenMP, false);
    const auto opt = run(p, gen::Model::kOpenMP, true);
    const auto mpi = run(p, gen::Model::kMpi, true);
    if (p == 1) {
      base = {unopt.elapsed_seconds, opt.elapsed_seconds,
              mpi.elapsed_seconds};
    }
    table.begin_row()
        .add(static_cast<long long>(p))
        .add(unopt.elapsed_seconds, 3)
        .add(opt.elapsed_seconds, 3)
        .add(mpi.elapsed_seconds, 3)
        .add(unopt.elapsed_seconds / mpi.elapsed_seconds, 2)
        .add(opt.elapsed_seconds / mpi.elapsed_seconds, 3)
        .add(exchange_fraction(unopt) * 100.0, 1);
  }
  std::printf("GenIDLEST 90rib (128^3, 32 blocks) scaling study\n\n%s\n",
              table.str().c_str());
  std::printf(
      "Paper anchors: unoptimized OpenMP lags MPI ~11.16x at 16 procs;\n"
      "optimized OpenMP within ~15%%; exchange_var__ ~31%% of unoptimized "
      "runtime.\n");
  return 0;
}
