// Self-observation: perfknow analyzing its own execution.
//
// The telemetry subsystem records spans and counters while perfknow
// runs; the snapshot exports as an ordinary profile::Trial, stores in
// the same PKB format as any application profile, and the shipped
// self_diagnosis rulebase judges it with the same rule engine the
// paper applies to application profiles. This example closes the loop
// deliberately badly: the repository is attached with a cache budget
// of zero, so every trial lookup misses, and the rules diagnose
// RepositoryCacheThrashing on perfknow itself.
//
// 1. Build a small on-disk repository and re-attach it with a
//    degenerate zero-byte cache budget.
// 2. Run a scripted analysis session with telemetry enabled; the
//    session writes a Chrome trace (chrome://tracing) on destruction.
// 3. Export the telemetry snapshot as a Trial, round-trip it through
//    the PKB store, and feed it to the self_diagnosis rules.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "perfknow.hpp"

int main() {
  using namespace perfknow;
  namespace fs = std::filesystem;

  const fs::path work = fs::temp_directory_path() / "perfknow_self_profile";
  fs::create_directories(work);

  // --- 1. a repository whose cache can never hold anything -------------
  {
    perfdmf::Repository repo;
    for (int i = 0; i < 4; ++i) {
      auto t = std::make_shared<profile::Trial>("run_" + std::to_string(i));
      t->set_thread_count(4);
      const auto m = t->add_metric("TIME", "usec");
      const auto e = t->add_event("main");
      for (std::size_t th = 0; th < 4; ++th) {
        t->set_inclusive(th, e, m, 100.0 + static_cast<double>(i));
      }
      t->set_calls(0, e, 1, 0);
      repo.put("selfdemo", "budget", std::move(t));
    }
    repo.save(work / "repo");
  }
  perfdmf::Repository repo =
      perfdmf::Repository::attach(work / "repo", /*cache_budget=*/0);

  // --- 2. a telemetry-enabled scripted session --------------------------
  const fs::path trace = work / "self_profile.trace.json";
  {
    script::SessionOptions options;
    options.repository = &repo;
    options.enable_telemetry = true;
    options.telemetry_trace = trace;  // written when the session closes
    script::AnalysisSession session(options);
    session.run(R"(
# thrash the zero-budget repository cache: every lookup is a miss
for round in range(5):
    for i in range(4):
        trial = Utilities.getTrial("selfdemo", "budget", "run_" + str(i))
print("telemetry enabled: " + str(Telemetry.enabled()))
)");
    for (const auto& line : session.output()) {
      std::printf("script: %s\n", line.c_str());
    }
  }
  telemetry::set_enabled(false);

  // --- 3. export, store as PKB, reload, and diagnose --------------------
  const profile::Trial self =
      telemetry::to_trial(telemetry::snapshot(), "perfknow.self");
  const fs::path pkb = work / "perfknow_self.pkb";
  io::save_trial(self, pkb);
  const profile::Trial reloaded = io::open_trial(pkb);
  std::printf("\nself profile: %zu instrumented events, stored at %s\n",
              reloaded.event_count() - 1, pkb.string().c_str());

  rules::RuleHarness harness;
  rules::add_rules(harness, std::string(rules::builtin::self_diagnosis()));
  const std::size_t facts = telemetry::assert_self_facts(harness, reloaded);
  harness.process_rules();
  std::printf("asserted %zu facts about perfknow's own run\n\ndiagnoses:\n",
              facts);
  for (const auto& d : harness.diagnoses()) {
    std::printf("  %s\n", d.to_string().c_str());
  }
  std::printf("\nchrome trace: %s (open in chrome://tracing)\n",
              trace.string().c_str());
  return harness.diagnoses().empty() ? 1 : 0;
}
