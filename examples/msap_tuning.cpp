// Scenario: automated OpenMP schedule tuning for the MSAP application
// (the paper's §III-A case study as a closed loop).
//
// The tuner profiles the application under the current schedule, asserts
// the load-balance facts, and asks the inference rules whether a problem
// exists. When the load-imbalance rule fires, it switches to the
// recommended dynamic schedule and re-validates — demonstrating how
// captured expert knowledge replaces the manual drill-down.
#include <cstdio>
#include <string>

#include "apps/msap/msap.hpp"
#include "machine/machine.hpp"
#include "perfknow.hpp"

namespace msap = perfknow::apps::msap;
using perfknow::machine::Machine;
using perfknow::machine::MachineConfig;
using perfknow::runtime::Schedule;

namespace {

msap::MsapResult profile_run(const Schedule& sched, unsigned threads) {
  Machine machine(MachineConfig::altix300());
  msap::MsapConfig cfg;
  cfg.threads = threads;
  cfg.schedule = sched;
  return msap::run_msap(machine, cfg);
}

/// One tuning step: profile, diagnose, and report whether the rulebase
/// asked for a schedule change.
bool diagnose(const msap::MsapResult& run, std::string* recommendation) {
  perfknow::rules::RuleHarness harness;
  perfknow::rules::builtin::use(harness,
                                perfknow::rules::builtin::load_imbalance());
  perfknow::analysis::assert_load_balance_facts(harness, run.trial);
  harness.process_rules();
  const auto diags = harness.diagnoses_for("LoadImbalance");
  if (diags.empty()) return false;
  *recommendation = diags.front().recommendation;
  return true;
}

}  // namespace

int main() {
  constexpr unsigned kThreads = 16;
  std::printf("== MSAP automated schedule tuning (%u threads) ==\n\n",
              kThreads);

  Schedule schedule = Schedule::static_even();  // OpenMP default
  auto run = profile_run(schedule, kThreads);
  std::printf("iteration 1: schedule(%s): %.3f s, inner-loop cv %.3f\n",
              schedule.name().c_str(), run.elapsed_seconds,
              run.stage1_loop.imbalance());

  std::string recommendation;
  int iteration = 1;
  while (diagnose(run, &recommendation) && iteration < 5) {
    ++iteration;
    std::printf("  -> rule fired: %s\n", recommendation.c_str());
    // Apply the recommended schedule (the rulebase recommends
    // schedule(dynamic,1) for this imbalance signature).
    schedule = Schedule::dynamic(1);
    run = profile_run(schedule, kThreads);
    std::printf("iteration %d: schedule(%s): %.3f s, inner-loop cv %.3f\n",
                iteration, schedule.name().c_str(), run.elapsed_seconds,
                run.stage1_loop.imbalance());
  }
  std::printf("\nconverged: no further diagnoses. Final schedule: %s\n",
              schedule.name().c_str());

  // Validation sweep, as Fig. 4(b) does.
  std::printf("\nvalidation (relative efficiency, dynamic,1):\n");
  const double base =
      profile_run(schedule, 1).elapsed_seconds;
  for (const unsigned t : {2u, 4u, 8u, 16u}) {
    const double secs = profile_run(schedule, t).elapsed_seconds;
    std::printf("  %2u threads: speedup %5.2f, efficiency %5.1f%%\n", t,
                base / secs, base / secs / t * 100.0);
  }
  return 0;
}
