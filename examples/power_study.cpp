// Scenario: compiling for power vs energy (the paper's §III-C study).
//
// Builds GenIDLEST at every optimization level through the OpenUH
// substrate, runs it with 16 MPI ranks, estimates processor power with
// the Eq. 1/2 component model, prints Table I, and lets the power
// rulebase recommend a level per objective.
#include <cstdio>

#include "apps/genidlest/genidlest.hpp"
#include "common/table.hpp"
#include "machine/machine.hpp"
#include "perfknow.hpp"
#include "power/power_model.hpp"

namespace gen = perfknow::apps::genidlest;
namespace pw = perfknow::power;
using perfknow::machine::Machine;
using perfknow::machine::MachineConfig;
using perfknow::openuh::OptLevel;

int main() {
  std::printf(
      "== GenIDLEST power/energy study: 90rib, 16 MPI ranks ==\n\n");

  pw::PowerStudy study(pw::PowerModel::itanium2());
  for (const auto level :
       {OptLevel::kO0, OptLevel::kO1, OptLevel::kO2, OptLevel::kO3}) {
    Machine machine(MachineConfig::altix3600());
    auto cfg = gen::GenConfig::rib90();
    cfg.model = gen::Model::kMpi;
    cfg.optimized = true;
    cfg.nprocs = 16;
    cfg.opt = level;
    const auto r = gen::run_genidlest(machine, cfg);
    study.add(level, r.aggregate_counters, r.elapsed_seconds, 16);
    std::printf("  built and ran at %s: %.3f s\n",
                std::string(perfknow::openuh::to_string(level)).c_str(),
                r.elapsed_seconds);
  }

  std::printf("\nrelative differences (O0 = 1.0), Table I style:\n\n");
  perfknow::TextTable table({"Metric", "O0", "O1", "O2", "O3"});
  for (const auto& [name, vals] : study.relative_table()) {
    table.begin_row().add(name);
    for (const double v : vals) table.add(v, 3);
  }
  std::printf("%s\n", table.str().c_str());

  // Per-component breakdown at the extremes, to show where power goes.
  std::printf("recommendations from the power rulebase:\n");
  perfknow::rules::RuleHarness harness;
  perfknow::rules::builtin::use(harness, perfknow::rules::builtin::power());
  study.assert_facts(harness);
  harness.process_rules();
  for (const auto& d : harness.diagnoses()) {
    std::printf("  %s\n", d.recommendation.c_str());
  }
  return 0;
}
