// Quickstart: the paper's Fig. 1 workflow in 60 lines.
//
// 1. Run an instrumented workload on the simulated machine (here: the
//    MSAP sequence-alignment stage under a bad schedule).
// 2. Store the profile in a PerfDMF repository.
// 3. Automate the analysis with a PerfScript script: load rules, load
//    the trial, derive a metric, compare events to main, process rules.
// 4. Read the diagnoses.
#include <cstdio>
#include <memory>

#include "apps/msap/msap.hpp"
#include "machine/machine.hpp"
#include "perfknow.hpp"

int main() {
  using namespace perfknow;

  // --- 1. run the instrumented workload --------------------------------
  machine::Machine altix(machine::MachineConfig::altix300());
  apps::msap::MsapConfig cfg;
  cfg.threads = 16;
  cfg.schedule = runtime::Schedule::static_even();  // the default, and bad
  auto result = apps::msap::run_msap(altix, cfg);
  std::printf("ran MSAP: %zu events, %zu threads, %.3f s\n",
              result.trial.event_count(), result.trial.thread_count(),
              result.elapsed_seconds);

  // --- 2. store the profile --------------------------------------------
  perfdmf::Repository repo;
  repo.put("MSAP", "schedules",
           std::make_shared<profile::Trial>(std::move(result.trial)));

  // --- 3. automate the analysis ----------------------------------------
  script::AnalysisSession session(script::SessionOptions{&repo});
  session.run(R"(
# load the expert rules and the trial (Fig. 1 of the paper)
ruleHarness = RuleHarness.useGlobalRules("openuh/OpenUHRules.drl")
trial = TrialMeanResult(Utilities.getTrial("MSAP", "schedules",
                                           "msap_static_16t"))

# derive the stall rate and compare each event against the application
op = DeriveMetricOperation(trial, "BACK_END_BUBBLE_ALL", "CPU_CYCLES",
                           DeriveMetricOperation.DIVIDE)
derived = op.processData().get(0)
mainEvent = derived.getMainEvent()
for event in derived.getEvents():
    MeanEventFact.compareEventToMain(derived, mainEvent, derived, event)

# the load-imbalance rule needs the balance/nesting/correlation facts
assertLoadBalanceFacts(trial)

fired = ruleHarness.processRules()
print("rules fired: " + str(fired))
)");

  // --- 4. read the diagnoses -------------------------------------------
  std::printf("\nscript output:\n");
  for (const auto& line : session.output()) {
    std::printf("  %s\n", line.c_str());
  }
  std::printf("\ndiagnoses:\n");
  for (const auto& d : session.harness().diagnoses()) {
    std::printf("  [%s] %s -> %s\n", d.problem.c_str(), d.event.c_str(),
                d.recommendation.c_str());
  }
  return 0;
}
