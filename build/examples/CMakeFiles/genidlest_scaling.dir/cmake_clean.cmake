file(REMOVE_RECURSE
  "CMakeFiles/genidlest_scaling.dir/genidlest_scaling.cpp.o"
  "CMakeFiles/genidlest_scaling.dir/genidlest_scaling.cpp.o.d"
  "genidlest_scaling"
  "genidlest_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genidlest_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
