# Empty compiler generated dependencies file for genidlest_scaling.
# This may be replaced when dependencies are built.
