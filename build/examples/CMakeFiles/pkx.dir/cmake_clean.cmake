file(REMOVE_RECURSE
  "CMakeFiles/pkx.dir/pkx.cpp.o"
  "CMakeFiles/pkx.dir/pkx.cpp.o.d"
  "pkx"
  "pkx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
