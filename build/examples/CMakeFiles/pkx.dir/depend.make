# Empty dependencies file for pkx.
# This may be replaced when dependencies are built.
