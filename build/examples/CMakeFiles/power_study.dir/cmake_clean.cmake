file(REMOVE_RECURSE
  "CMakeFiles/power_study.dir/power_study.cpp.o"
  "CMakeFiles/power_study.dir/power_study.cpp.o.d"
  "power_study"
  "power_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
