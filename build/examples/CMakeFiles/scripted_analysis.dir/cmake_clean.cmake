file(REMOVE_RECURSE
  "CMakeFiles/scripted_analysis.dir/scripted_analysis.cpp.o"
  "CMakeFiles/scripted_analysis.dir/scripted_analysis.cpp.o.d"
  "scripted_analysis"
  "scripted_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scripted_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
