# Empty compiler generated dependencies file for scripted_analysis.
# This may be replaced when dependencies are built.
