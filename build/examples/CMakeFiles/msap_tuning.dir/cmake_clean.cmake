file(REMOVE_RECURSE
  "CMakeFiles/msap_tuning.dir/msap_tuning.cpp.o"
  "CMakeFiles/msap_tuning.dir/msap_tuning.cpp.o.d"
  "msap_tuning"
  "msap_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msap_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
