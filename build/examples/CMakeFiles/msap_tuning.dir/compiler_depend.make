# Empty compiler generated dependencies file for msap_tuning.
# This may be replaced when dependencies are built.
