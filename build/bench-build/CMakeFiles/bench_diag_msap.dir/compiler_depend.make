# Empty compiler generated dependencies file for bench_diag_msap.
# This may be replaced when dependencies are built.
