file(REMOVE_RECURSE
  "../bench/bench_diag_msap"
  "../bench/bench_diag_msap.pdb"
  "CMakeFiles/bench_diag_msap.dir/bench_diag_msap.cpp.o"
  "CMakeFiles/bench_diag_msap.dir/bench_diag_msap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diag_msap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
