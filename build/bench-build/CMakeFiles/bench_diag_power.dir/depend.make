# Empty dependencies file for bench_diag_power.
# This may be replaced when dependencies are built.
