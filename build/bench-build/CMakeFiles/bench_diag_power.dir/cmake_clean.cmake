file(REMOVE_RECURSE
  "../bench/bench_diag_power"
  "../bench/bench_diag_power.pdb"
  "CMakeFiles/bench_diag_power.dir/bench_diag_power.cpp.o"
  "CMakeFiles/bench_diag_power.dir/bench_diag_power.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diag_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
