# Empty compiler generated dependencies file for bench_fig5a_genidlest_events.
# This may be replaced when dependencies are built.
