file(REMOVE_RECURSE
  "../bench/bench_fig5a_genidlest_events"
  "../bench/bench_fig5a_genidlest_events.pdb"
  "CMakeFiles/bench_fig5a_genidlest_events.dir/bench_fig5a_genidlest_events.cpp.o"
  "CMakeFiles/bench_fig5a_genidlest_events.dir/bench_fig5a_genidlest_events.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5a_genidlest_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
