# Empty compiler generated dependencies file for bench_diag_genidlest.
# This may be replaced when dependencies are built.
