file(REMOVE_RECURSE
  "../bench/bench_diag_genidlest"
  "../bench/bench_diag_genidlest.pdb"
  "CMakeFiles/bench_diag_genidlest.dir/bench_diag_genidlest.cpp.o"
  "CMakeFiles/bench_diag_genidlest.dir/bench_diag_genidlest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diag_genidlest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
