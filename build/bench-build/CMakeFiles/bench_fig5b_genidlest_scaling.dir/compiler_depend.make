# Empty compiler generated dependencies file for bench_fig5b_genidlest_scaling.
# This may be replaced when dependencies are built.
