# Empty dependencies file for bench_fig4b_msap_efficiency.
# This may be replaced when dependencies are built.
