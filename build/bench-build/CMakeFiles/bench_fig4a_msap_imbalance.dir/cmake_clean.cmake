file(REMOVE_RECURSE
  "../bench/bench_fig4a_msap_imbalance"
  "../bench/bench_fig4a_msap_imbalance.pdb"
  "CMakeFiles/bench_fig4a_msap_imbalance.dir/bench_fig4a_msap_imbalance.cpp.o"
  "CMakeFiles/bench_fig4a_msap_imbalance.dir/bench_fig4a_msap_imbalance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4a_msap_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
