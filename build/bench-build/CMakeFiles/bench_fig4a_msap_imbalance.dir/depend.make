# Empty dependencies file for bench_fig4a_msap_imbalance.
# This may be replaced when dependencies are built.
