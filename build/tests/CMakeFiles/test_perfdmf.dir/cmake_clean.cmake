file(REMOVE_RECURSE
  "CMakeFiles/test_perfdmf.dir/test_perfdmf.cpp.o"
  "CMakeFiles/test_perfdmf.dir/test_perfdmf.cpp.o.d"
  "test_perfdmf"
  "test_perfdmf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perfdmf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
