# Empty dependencies file for test_perfdmf.
# This may be replaced when dependencies are built.
