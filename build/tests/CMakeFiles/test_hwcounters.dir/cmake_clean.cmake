file(REMOVE_RECURSE
  "CMakeFiles/test_hwcounters.dir/test_hwcounters.cpp.o"
  "CMakeFiles/test_hwcounters.dir/test_hwcounters.cpp.o.d"
  "test_hwcounters"
  "test_hwcounters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hwcounters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
