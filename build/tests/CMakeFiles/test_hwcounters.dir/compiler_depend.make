# Empty compiler generated dependencies file for test_hwcounters.
# This may be replaced when dependencies are built.
