# Empty compiler generated dependencies file for test_msap.
# This may be replaced when dependencies are built.
