file(REMOVE_RECURSE
  "CMakeFiles/test_msap.dir/test_msap.cpp.o"
  "CMakeFiles/test_msap.dir/test_msap.cpp.o.d"
  "test_msap"
  "test_msap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_msap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
