# Empty compiler generated dependencies file for test_openuh.
# This may be replaced when dependencies are built.
