file(REMOVE_RECURSE
  "CMakeFiles/test_openuh.dir/test_openuh.cpp.o"
  "CMakeFiles/test_openuh.dir/test_openuh.cpp.o.d"
  "test_openuh"
  "test_openuh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_openuh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
