# Empty compiler generated dependencies file for test_mpi_analysis.
# This may be replaced when dependencies are built.
