file(REMOVE_RECURSE
  "CMakeFiles/test_mpi_analysis.dir/test_mpi_analysis.cpp.o"
  "CMakeFiles/test_mpi_analysis.dir/test_mpi_analysis.cpp.o.d"
  "test_mpi_analysis"
  "test_mpi_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpi_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
