file(REMOVE_RECURSE
  "CMakeFiles/test_shipped_rules.dir/test_shipped_rules.cpp.o"
  "CMakeFiles/test_shipped_rules.dir/test_shipped_rules.cpp.o.d"
  "test_shipped_rules"
  "test_shipped_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shipped_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
