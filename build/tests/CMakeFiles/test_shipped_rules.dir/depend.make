# Empty dependencies file for test_shipped_rules.
# This may be replaced when dependencies are built.
