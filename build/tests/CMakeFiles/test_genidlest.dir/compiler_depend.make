# Empty compiler generated dependencies file for test_genidlest.
# This may be replaced when dependencies are built.
