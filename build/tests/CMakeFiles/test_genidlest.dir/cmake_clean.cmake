file(REMOVE_RECURSE
  "CMakeFiles/test_genidlest.dir/test_genidlest.cpp.o"
  "CMakeFiles/test_genidlest.dir/test_genidlest.cpp.o.d"
  "test_genidlest"
  "test_genidlest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_genidlest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
