# Empty dependencies file for test_omp_collector.
# This may be replaced when dependencies are built.
