file(REMOVE_RECURSE
  "CMakeFiles/test_omp_collector.dir/test_omp_collector.cpp.o"
  "CMakeFiles/test_omp_collector.dir/test_omp_collector.cpp.o.d"
  "test_omp_collector"
  "test_omp_collector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_omp_collector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
