file(REMOVE_RECURSE
  "libperfknow.a"
)
