
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/clustering.cpp" "src/CMakeFiles/perfknow.dir/analysis/clustering.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/analysis/clustering.cpp.o.d"
  "/root/repo/src/analysis/facts.cpp" "src/CMakeFiles/perfknow.dir/analysis/facts.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/analysis/facts.cpp.o.d"
  "/root/repo/src/analysis/mpi_analysis.cpp" "src/CMakeFiles/perfknow.dir/analysis/mpi_analysis.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/analysis/mpi_analysis.cpp.o.d"
  "/root/repo/src/analysis/operations.cpp" "src/CMakeFiles/perfknow.dir/analysis/operations.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/analysis/operations.cpp.o.d"
  "/root/repo/src/analysis/pca.cpp" "src/CMakeFiles/perfknow.dir/analysis/pca.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/analysis/pca.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/CMakeFiles/perfknow.dir/analysis/report.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/analysis/report.cpp.o.d"
  "/root/repo/src/apps/genidlest/genidlest.cpp" "src/CMakeFiles/perfknow.dir/apps/genidlest/genidlest.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/apps/genidlest/genidlest.cpp.o.d"
  "/root/repo/src/apps/genidlest/solver.cpp" "src/CMakeFiles/perfknow.dir/apps/genidlest/solver.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/apps/genidlest/solver.cpp.o.d"
  "/root/repo/src/apps/msap/alignment.cpp" "src/CMakeFiles/perfknow.dir/apps/msap/alignment.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/apps/msap/alignment.cpp.o.d"
  "/root/repo/src/apps/msap/msap.cpp" "src/CMakeFiles/perfknow.dir/apps/msap/msap.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/apps/msap/msap.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/perfknow.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/perfknow.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/strings.cpp" "src/CMakeFiles/perfknow.dir/common/strings.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/common/strings.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/perfknow.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/common/table.cpp.o.d"
  "/root/repo/src/hwcounters/counters.cpp" "src/CMakeFiles/perfknow.dir/hwcounters/counters.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/hwcounters/counters.cpp.o.d"
  "/root/repo/src/hwcounters/synthesize.cpp" "src/CMakeFiles/perfknow.dir/hwcounters/synthesize.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/hwcounters/synthesize.cpp.o.d"
  "/root/repo/src/instrument/overhead.cpp" "src/CMakeFiles/perfknow.dir/instrument/overhead.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/instrument/overhead.cpp.o.d"
  "/root/repo/src/instrument/regions.cpp" "src/CMakeFiles/perfknow.dir/instrument/regions.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/instrument/regions.cpp.o.d"
  "/root/repo/src/instrument/trial_builder.cpp" "src/CMakeFiles/perfknow.dir/instrument/trial_builder.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/instrument/trial_builder.cpp.o.d"
  "/root/repo/src/machine/machine.cpp" "src/CMakeFiles/perfknow.dir/machine/machine.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/machine/machine.cpp.o.d"
  "/root/repo/src/openuh/compiler.cpp" "src/CMakeFiles/perfknow.dir/openuh/compiler.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/openuh/compiler.cpp.o.d"
  "/root/repo/src/openuh/cost_model.cpp" "src/CMakeFiles/perfknow.dir/openuh/cost_model.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/openuh/cost_model.cpp.o.d"
  "/root/repo/src/openuh/feedback.cpp" "src/CMakeFiles/perfknow.dir/openuh/feedback.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/openuh/feedback.cpp.o.d"
  "/root/repo/src/openuh/frequency.cpp" "src/CMakeFiles/perfknow.dir/openuh/frequency.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/openuh/frequency.cpp.o.d"
  "/root/repo/src/openuh/ir.cpp" "src/CMakeFiles/perfknow.dir/openuh/ir.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/openuh/ir.cpp.o.d"
  "/root/repo/src/openuh/passes.cpp" "src/CMakeFiles/perfknow.dir/openuh/passes.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/openuh/passes.cpp.o.d"
  "/root/repo/src/openuh/phase_map.cpp" "src/CMakeFiles/perfknow.dir/openuh/phase_map.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/openuh/phase_map.cpp.o.d"
  "/root/repo/src/perfdmf/csv_format.cpp" "src/CMakeFiles/perfknow.dir/perfdmf/csv_format.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/perfdmf/csv_format.cpp.o.d"
  "/root/repo/src/perfdmf/json_format.cpp" "src/CMakeFiles/perfknow.dir/perfdmf/json_format.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/perfdmf/json_format.cpp.o.d"
  "/root/repo/src/perfdmf/repository.cpp" "src/CMakeFiles/perfknow.dir/perfdmf/repository.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/perfdmf/repository.cpp.o.d"
  "/root/repo/src/perfdmf/snapshot.cpp" "src/CMakeFiles/perfknow.dir/perfdmf/snapshot.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/perfdmf/snapshot.cpp.o.d"
  "/root/repo/src/perfdmf/tau_format.cpp" "src/CMakeFiles/perfknow.dir/perfdmf/tau_format.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/perfdmf/tau_format.cpp.o.d"
  "/root/repo/src/power/dvs.cpp" "src/CMakeFiles/perfknow.dir/power/dvs.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/power/dvs.cpp.o.d"
  "/root/repo/src/power/power_model.cpp" "src/CMakeFiles/perfknow.dir/power/power_model.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/power/power_model.cpp.o.d"
  "/root/repo/src/profile/profile.cpp" "src/CMakeFiles/perfknow.dir/profile/profile.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/profile/profile.cpp.o.d"
  "/root/repo/src/rules/engine.cpp" "src/CMakeFiles/perfknow.dir/rules/engine.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/rules/engine.cpp.o.d"
  "/root/repo/src/rules/fact.cpp" "src/CMakeFiles/perfknow.dir/rules/fact.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/rules/fact.cpp.o.d"
  "/root/repo/src/rules/parser.cpp" "src/CMakeFiles/perfknow.dir/rules/parser.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/rules/parser.cpp.o.d"
  "/root/repo/src/rules/rulebases.cpp" "src/CMakeFiles/perfknow.dir/rules/rulebases.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/rules/rulebases.cpp.o.d"
  "/root/repo/src/runtime/mpi.cpp" "src/CMakeFiles/perfknow.dir/runtime/mpi.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/runtime/mpi.cpp.o.d"
  "/root/repo/src/runtime/omp.cpp" "src/CMakeFiles/perfknow.dir/runtime/omp.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/runtime/omp.cpp.o.d"
  "/root/repo/src/runtime/omp_collector.cpp" "src/CMakeFiles/perfknow.dir/runtime/omp_collector.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/runtime/omp_collector.cpp.o.d"
  "/root/repo/src/script/bindings.cpp" "src/CMakeFiles/perfknow.dir/script/bindings.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/script/bindings.cpp.o.d"
  "/root/repo/src/script/interpreter.cpp" "src/CMakeFiles/perfknow.dir/script/interpreter.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/script/interpreter.cpp.o.d"
  "/root/repo/src/script/lexer.cpp" "src/CMakeFiles/perfknow.dir/script/lexer.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/script/lexer.cpp.o.d"
  "/root/repo/src/script/parser.cpp" "src/CMakeFiles/perfknow.dir/script/parser.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/script/parser.cpp.o.d"
  "/root/repo/src/script/value.cpp" "src/CMakeFiles/perfknow.dir/script/value.cpp.o" "gcc" "src/CMakeFiles/perfknow.dir/script/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
