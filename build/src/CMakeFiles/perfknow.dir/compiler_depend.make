# Empty compiler generated dependencies file for perfknow.
# This may be replaced when dependencies are built.
