// Tests for counter vocabulary and analytic counter synthesis.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "hwcounters/counters.hpp"
#include "hwcounters/synthesize.hpp"
#include "machine/machine.hpp"

namespace pk = perfknow;
using pk::hwcounters::Counter;
using pk::hwcounters::CounterVector;
using pk::hwcounters::KernelWork;
using pk::hwcounters::MemoryStream;
using pk::hwcounters::Synthesizer;
using pk::machine::Machine;
using pk::machine::MachineConfig;

TEST(Counters, NameRoundTrip) {
  for (std::size_t i = 0; i < pk::hwcounters::kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    EXPECT_EQ(pk::hwcounters::counter_from_name(pk::hwcounters::name_of(c)),
              c);
  }
  EXPECT_TRUE(pk::hwcounters::is_counter_name("CPU_CYCLES"));
  EXPECT_FALSE(pk::hwcounters::is_counter_name("MADE_UP"));
  EXPECT_THROW((void)pk::hwcounters::counter_from_name("MADE_UP"),
               pk::NotFoundError);
}

TEST(Counters, VectorArithmetic) {
  CounterVector a;
  a.set(Counter::kFpOps, 10);
  CounterVector b;
  b.set(Counter::kFpOps, 5);
  b.set(Counter::kLoads, 3);
  a += b;
  EXPECT_DOUBLE_EQ(a.get(Counter::kFpOps), 15.0);
  EXPECT_DOUBLE_EQ(a.get(Counter::kLoads), 3.0);
  a *= 2.0;
  EXPECT_DOUBLE_EQ(a.get(Counter::kFpOps), 30.0);
}

TEST(Counters, StallDecompositionAndFormulas) {
  CounterVector c;
  c.set(Counter::kL1dStallCycles, 900.0);
  c.set(Counter::kFpStallCycles, 50.0);
  c.set(Counter::kBranchStallCycles, 30.0);
  c.set(Counter::kRegDepStalls, 20.0);
  const auto d = pk::hwcounters::decompose_stalls(c);
  EXPECT_DOUBLE_EQ(d.total(), 1000.0);
  EXPECT_DOUBLE_EQ(d.memory_fp_fraction(), 0.95);

  c.set(Counter::kL2References, 1000.0);
  c.set(Counter::kL2Misses, 100.0);
  c.set(Counter::kL3Misses, 10.0);
  c.set(Counter::kRemoteMemoryAccesses, 5.0);
  c.set(Counter::kTlbMisses, 2.0);
  pk::hwcounters::MemoryLatencies lat;
  const double expected = 900.0 * lat.l2_cycles + 90.0 * lat.l3_cycles +
                          5.0 * lat.local_cycles + 5.0 * lat.remote_cycles +
                          2.0 * lat.tlb_penalty;
  EXPECT_DOUBLE_EQ(pk::hwcounters::memory_stall_cycles(c, lat), expected);
  EXPECT_DOUBLE_EQ(pk::hwcounters::remote_access_ratio(c), 0.5);
}

TEST(Counters, RemoteRatioWithoutMissesIsZero) {
  CounterVector c;
  EXPECT_DOUBLE_EQ(pk::hwcounters::remote_access_ratio(c), 0.0);
}

namespace {

KernelWork simple_kernel(std::uint64_t base, std::uint64_t bytes,
                         double passes = 1.0) {
  KernelWork w;
  w.flops = 1000.0;
  w.int_instructions = 2000.0;
  w.branches = 100.0;
  w.streams.push_back(MemoryStream{base, bytes, 8, passes, 0.2});
  return w;
}

}  // namespace

TEST(Synthesize, ProducesConsistentCounters) {
  Machine m(MachineConfig::altix300());
  Synthesizer synth(m);
  const auto base = m.address_space().allocate(1 << 20);
  const auto r = synth.run(simple_kernel(base, 1 << 20), 0);

  const auto& c = r.counters;
  EXPECT_GT(r.cycles, 0u);
  EXPECT_DOUBLE_EQ(c.get(Counter::kFpOps), 1000.0);
  // Retired = flops + ints + loads + stores + branches.
  const double mem = c.get(Counter::kLoads) + c.get(Counter::kStores);
  EXPECT_DOUBLE_EQ(c.get(Counter::kInstructionsCompleted),
                   1000.0 + 2000.0 + mem + 100.0);
  EXPECT_GT(c.get(Counter::kInstructionsIssued),
            c.get(Counter::kInstructionsCompleted));
  // Cache hierarchy is inclusive: L1 >= L2 >= L3 misses.
  EXPECT_GE(c.get(Counter::kL1dMisses), c.get(Counter::kL2Misses));
  EXPECT_GE(c.get(Counter::kL2Misses), c.get(Counter::kL3Misses));
  // CPU_CYCLES >= stall cycles.
  EXPECT_GE(c.get(Counter::kCpuCycles), c.get(Counter::kBackEndBubbleAll));
  // Local + remote = L3 misses.
  EXPECT_DOUBLE_EQ(c.get(Counter::kLocalMemoryAccesses) +
                       c.get(Counter::kRemoteMemoryAccesses),
                   c.get(Counter::kL3Misses));
}

TEST(Synthesize, WorkingSetBelowCacheHasNoL3Misses) {
  Machine m(MachineConfig::altix300());
  Synthesizer synth(m);
  const auto base = m.address_space().allocate(8 * 1024);
  // 8 KB fits L1D (16 KB): repeated passes stay cached after the first.
  const auto small = synth.run(simple_kernel(base, 8 * 1024, 100.0), 0);
  const auto cold_lines = 8.0 * 1024 / 128;  // L3-line-grain cold misses
  EXPECT_LE(small.counters.get(Counter::kL3Misses), cold_lines + 1);
}

TEST(Synthesize, StreamingWorkingSetMissesEveryPass) {
  Machine m(MachineConfig::altix300());
  Synthesizer synth(m);
  const auto bytes = 32ull * 1024 * 1024;  // 32 MB >> 6 MB L3
  const auto base = m.address_space().allocate(bytes);
  const auto one = synth.run(simple_kernel(base, bytes, 1.0), 0);
  const auto ten = synth.run(simple_kernel(base, bytes, 10.0), 0);
  EXPECT_NEAR(ten.counters.get(Counter::kL3Misses),
              10.0 * one.counters.get(Counter::kL3Misses),
              one.counters.get(Counter::kL3Misses) * 0.01);
}

TEST(Synthesize, FirstTouchMakesAccessesLocal) {
  Machine m(MachineConfig::altix300());
  Synthesizer synth(m);
  const auto bytes = 16ull * 1024 * 1024;
  const auto base = m.address_space().allocate(bytes);
  // CPU 6 (node 3) touches first: all pages home on node 3.
  const auto r = synth.run(simple_kernel(base, bytes), 6);
  EXPECT_DOUBLE_EQ(r.counters.get(Counter::kRemoteMemoryAccesses), 0.0);
  EXPECT_GT(r.counters.get(Counter::kLocalMemoryAccesses), 0.0);
}

TEST(Synthesize, RemoteAccessesAfterForeignFirstTouch) {
  Machine m(MachineConfig::altix300());
  Synthesizer synth(m);
  const auto bytes = 16ull * 1024 * 1024;
  const auto base = m.address_space().allocate(bytes);
  // CPU 0 (node 0) initializes; CPU 14 (node 7) then streams the data.
  (void)synth.run(simple_kernel(base, bytes), 0);
  const auto r = synth.run(simple_kernel(base, bytes), 14);
  EXPECT_DOUBLE_EQ(r.counters.get(Counter::kLocalMemoryAccesses), 0.0);
  EXPECT_GT(r.counters.get(Counter::kRemoteMemoryAccesses), 0.0);
}

TEST(Synthesize, RemoteAccessCostsMoreCycles) {
  const auto bytes = 16ull * 1024 * 1024;
  Machine m1(MachineConfig::altix300());
  Synthesizer s1(m1);
  const auto b1 = m1.address_space().allocate(bytes);
  (void)s1.run(simple_kernel(b1, bytes), 0);           // place on node 0
  const auto local = s1.run(simple_kernel(b1, bytes), 0);   // local reuse
  const auto remote = s1.run(simple_kernel(b1, bytes), 14); // remote reuse
  EXPECT_GT(remote.cycles, local.cycles);
}

TEST(Synthesize, HigherIlpMeansFewerCycles) {
  Machine m(MachineConfig::altix300());
  Synthesizer synth(m);
  const auto base = m.address_space().allocate(1 << 16);
  auto slow = simple_kernel(base, 1 << 16);
  slow.ilp = 1.0;
  auto fast = simple_kernel(base, 1 << 16);
  fast.ilp = 4.0;
  EXPECT_GT(synth.run(slow, 0).cycles, synth.run(fast, 0).cycles);
}

TEST(Synthesize, InvalidInputsThrow) {
  Machine m(MachineConfig::altix300());
  Synthesizer synth(m);
  KernelWork w;
  w.streams.push_back(MemoryStream{0, 100, 0, 1.0, 0.0});  // zero stride
  EXPECT_THROW((void)synth.run(w, 0), pk::InvalidArgumentError);
  EXPECT_THROW((void)synth.run(KernelWork{}, 999), pk::InvalidArgumentError);
}
