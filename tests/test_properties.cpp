// Property-based tests: invariants that must hold across parameter
// sweeps, via parameterized gtest suites.
#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <tuple>

#include "analysis/operations.hpp"
#include "apps/msap/msap.hpp"
#include "common/rng.hpp"
#include "hwcounters/synthesize.hpp"
#include "machine/machine.hpp"
#include "perfdmf/snapshot.hpp"
#include "runtime/omp.hpp"

namespace pk = perfknow;
using pk::machine::Machine;
using pk::machine::MachineConfig;
using pk::runtime::OmpTeam;
using pk::runtime::Schedule;
using pk::runtime::ScheduleKind;

// ---------------------------------------------------------------------
// Property: every schedule, at every thread count, runs every iteration
// exactly once and conserves total work.
// ---------------------------------------------------------------------

using ScheduleCase = std::tuple<int /*kind*/, int /*chunk*/, int /*threads*/,
                                int /*iterations*/>;

class ScheduleProperties : public ::testing::TestWithParam<ScheduleCase> {};

TEST_P(ScheduleProperties, IterationsConserved) {
  const auto [kind, chunk, threads, n] = GetParam();
  Machine m(MachineConfig::altix300());
  OmpTeam team(m, static_cast<unsigned>(threads));
  Schedule sched{static_cast<ScheduleKind>(kind),
                 static_cast<std::uint64_t>(chunk)};

  std::vector<int> seen(n, 0);
  std::uint64_t total_work = 0;
  const auto r = team.parallel_for(
      n, sched, [&](std::uint64_t i, unsigned) {
        ++seen[i];
        const std::uint64_t w = 13 + (i * 7) % 91;
        total_work += w;
        return w;
      });

  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(seen[i], 1) << sched.name() << " iteration " << i;
  }
  // Work conservation: per-thread work sums to the serial total.
  const auto sum = std::accumulate(r.work_cycles.begin(),
                                   r.work_cycles.end(), std::uint64_t{0});
  EXPECT_EQ(sum, total_work) << sched.name();
  // The region can never be faster than the critical path (max thread).
  const auto max_work =
      *std::max_element(r.work_cycles.begin(), r.work_cycles.end());
  EXPECT_GE(r.elapsed_cycles, max_work);
  // Barrier waits: the busiest thread waits zero.
  const auto min_wait = *std::min_element(r.barrier_wait_cycles.begin(),
                                          r.barrier_wait_cycles.end());
  EXPECT_EQ(min_wait, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedules, ScheduleProperties,
    ::testing::Combine(::testing::Values(0, 1, 2),       // static/dyn/guided
                       ::testing::Values(0, 1, 7, 64),   // chunk
                       ::testing::Values(1, 3, 8, 16),   // threads
                       ::testing::Values(1, 17, 256)));  // iterations

// ---------------------------------------------------------------------
// Property: PKPROF snapshots round-trip random trials exactly.
// ---------------------------------------------------------------------

class SnapshotRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SnapshotRoundTrip, Exact) {
  pk::Rng rng(GetParam());
  pk::profile::Trial t("random_" + std::to_string(GetParam()));
  const auto threads = 1 + rng.uniform_int(0, 7);
  t.set_thread_count(threads);
  const auto metrics = 1 + rng.uniform_int(0, 3);
  for (std::uint64_t m = 0; m < metrics; ++m) {
    t.add_metric("M" + std::to_string(m));
  }
  const auto events = 1 + rng.uniform_int(0, 9);
  for (std::uint64_t e = 0; e < events; ++e) {
    const auto parent =
        e == 0 ? pk::profile::kNoEvent
               : static_cast<pk::profile::EventId>(rng.uniform_int(0, e - 1));
    t.add_event("ev_" + std::to_string(e) + " => with spaces", parent,
                e % 2 ? "LOOP" : "");
  }
  for (std::size_t th = 0; th < t.thread_count(); ++th) {
    for (pk::profile::EventId e = 0; e < t.event_count(); ++e) {
      for (pk::profile::MetricId m = 0; m < t.metric_count(); ++m) {
        t.set_inclusive(th, e, m, rng.uniform(0, 1e9));
        t.set_exclusive(th, e, m, rng.uniform(0, 1e9));
      }
      t.set_calls(th, e, rng.uniform(0, 1e6), rng.uniform(0, 1e6));
    }
  }
  t.set_metadata("seed", std::to_string(GetParam()));

  std::stringstream ss;
  pk::perfdmf::write_snapshot(t, ss);
  const auto back = pk::perfdmf::read_snapshot(ss);
  ASSERT_EQ(back.thread_count(), t.thread_count());
  ASSERT_EQ(back.event_count(), t.event_count());
  ASSERT_EQ(back.metric_count(), t.metric_count());
  for (std::size_t th = 0; th < t.thread_count(); ++th) {
    for (pk::profile::EventId e = 0; e < t.event_count(); ++e) {
      for (pk::profile::MetricId m = 0; m < t.metric_count(); ++m) {
        ASSERT_DOUBLE_EQ(back.inclusive(th, e, m), t.inclusive(th, e, m));
        ASSERT_DOUBLE_EQ(back.exclusive(th, e, m), t.exclusive(th, e, m));
      }
      ASSERT_DOUBLE_EQ(back.calls(th, e).calls, t.calls(th, e).calls);
      ASSERT_EQ(back.event(e).parent, t.event(e).parent);
      ASSERT_EQ(back.event(e).group, t.event(e).group);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------
// Property: counter synthesis invariants across stride/extent/pass grid.
// ---------------------------------------------------------------------

using SynthCase = std::tuple<int /*log2 extent*/, int /*stride*/,
                             int /*passes*/>;

class SynthesisProperties : public ::testing::TestWithParam<SynthCase> {};

TEST_P(SynthesisProperties, HierarchyAndCycleInvariants) {
  const auto [log_extent, stride, passes] = GetParam();
  Machine m(MachineConfig::altix300());
  pk::hwcounters::Synthesizer synth(m);
  pk::hwcounters::KernelWork w;
  w.flops = 500;
  w.int_instructions = 1500;
  w.branches = 100;
  pk::hwcounters::MemoryStream s;
  s.base = m.address_space().allocate(1ull << log_extent);
  s.extent_bytes = 1ull << log_extent;
  s.stride_bytes = static_cast<std::uint32_t>(stride);
  s.passes = passes;
  s.write_fraction = 0.25;
  w.streams.push_back(s);

  const auto r = synth.run(w, 3);
  const auto& c = r.counters;
  using pk::hwcounters::Counter;
  // Cache inclusion.
  EXPECT_GE(c.get(Counter::kL1dMisses), c.get(Counter::kL2Misses));
  EXPECT_GE(c.get(Counter::kL2Misses), c.get(Counter::kL3Misses));
  EXPECT_GE(c.get(Counter::kL3Misses), 0.0);
  // Local + remote = L3 misses.
  EXPECT_NEAR(c.get(Counter::kLocalMemoryAccesses) +
                  c.get(Counter::kRemoteMemoryAccesses),
              c.get(Counter::kL3Misses), 1e-6);
  // Cycles >= stalls, >= issue floor.
  EXPECT_GE(c.get(Counter::kCpuCycles), c.get(Counter::kBackEndBubbleAll));
  EXPECT_GE(c.get(Counter::kCpuCycles),
            c.get(Counter::kInstructionsCompleted) /
                m.config().issue_width);
  // Stall decomposition sums to BACK_END_BUBBLE_ALL.
  const auto d = pk::hwcounters::decompose_stalls(c);
  EXPECT_NEAR(d.total(), c.get(Counter::kBackEndBubbleAll),
              1e-6 * std::max(1.0, d.total()));
  // Issued >= retired.
  EXPECT_GE(c.get(Counter::kInstructionsIssued),
            c.get(Counter::kInstructionsCompleted));
  // Determinism.
  Machine m2(MachineConfig::altix300());
  pk::hwcounters::Synthesizer synth2(m2);
  auto w2 = w;
  w2.streams[0].base = m2.address_space().allocate(1ull << log_extent);
  const auto r2 = synth2.run(w2, 3);
  EXPECT_EQ(r.cycles, r2.cycles);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SynthesisProperties,
    ::testing::Combine(::testing::Values(10, 14, 18, 23),  // 1KB..8MB
                       ::testing::Values(4, 8, 64, 256),
                       ::testing::Values(1, 3, 10)));

// ---------------------------------------------------------------------
// Property: MSAP efficiency is monotone in schedule quality at 16
// threads, across problem seeds.
// ---------------------------------------------------------------------

class MsapSeedProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MsapSeedProperties, DynamicBeatsStaticAtSixteenThreads) {
  namespace msap = pk::apps::msap;
  auto run = [&](const Schedule& sched) {
    Machine machine(MachineConfig::altix300());
    msap::MsapConfig cfg;
    cfg.num_sequences = 200;
    cfg.threads = 16;
    cfg.schedule = sched;
    cfg.seed = GetParam();
    return msap::run_msap(machine, cfg);
  };
  const auto st = run(Schedule::static_even());
  const auto dy = run(Schedule::dynamic(1));
  EXPECT_LT(dy.elapsed_cycles, st.elapsed_cycles) << "seed " << GetParam();
  EXPECT_LT(dy.stage1_loop.imbalance(), st.stage1_loop.imbalance());
  // The sum of all threads' inner-loop work is schedule-invariant.
  const auto sum = [](const msap::MsapResult& r) {
    return std::accumulate(r.stage1_loop.work_cycles.begin(),
                           r.stage1_loop.work_cycles.end(),
                           std::uint64_t{0});
  };
  EXPECT_EQ(sum(st), sum(dy));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MsapSeedProperties,
                         ::testing::Values(1, 7, 42, 2008, 90125));

// ---------------------------------------------------------------------
// Property: derived metrics commute with the mean across threads for
// linear ops (ADD/SUBTRACT), across random trials.
// ---------------------------------------------------------------------

class DeriveProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeriveProperties, LinearOpsCommuteWithThreadMean) {
  pk::Rng rng(GetParam());
  pk::profile::Trial t("d");
  t.set_thread_count(8);
  t.add_metric("A");
  t.add_metric("B");
  const auto e = t.add_event("ev");
  for (std::size_t th = 0; th < 8; ++th) {
    t.set_exclusive(th, e, 0, rng.uniform(0, 100));
    t.set_exclusive(th, e, 1, rng.uniform(0, 100));
  }
  const auto mean_a = t.mean_exclusive(e, 0);
  const auto mean_b = t.mean_exclusive(e, 1);
  const auto sum =
      pk::analysis::derive_metric(t, "A", "B", pk::analysis::DeriveOp::kAdd);
  EXPECT_NEAR(t.mean_exclusive(e, sum), mean_a + mean_b, 1e-9);
  const auto diff = pk::analysis::derive_metric(
      t, "A", "B", pk::analysis::DeriveOp::kSubtract);
  EXPECT_NEAR(t.mean_exclusive(e, diff), mean_a - mean_b, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeriveProperties,
                         ::testing::Range<std::uint64_t>(100, 110));

// ---------------------------------------------------------------------
// Property: MPI clocks are monotone and messages are conserved across
// random BSP exchanges.
// ---------------------------------------------------------------------

#include "runtime/mpi.hpp"

class MpiProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MpiProperties, ClockMonotoneAndMessagesConserved) {
  pk::Rng rng(GetParam());
  const auto ranks = static_cast<unsigned>(2 + rng.uniform_int(0, 6));
  Machine m(MachineConfig::altix300());
  pk::runtime::MpiWorld w(m, ranks);

  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::vector<std::uint64_t> last_clock(ranks, 0);
  auto check_monotone = [&]() {
    for (unsigned r = 0; r < ranks; ++r) {
      ASSERT_GE(w.clock(r), last_clock[r]);
      last_clock[r] = w.clock(r);
    }
  };

  for (int round = 0; round < 10; ++round) {
    // Random compute.
    for (unsigned r = 0; r < ranks; ++r) {
      w.compute(r, rng.uniform_int(0, 100000));
    }
    check_monotone();
    // Ring exchange with random payloads.
    std::vector<pk::runtime::MpiRequest> sends(ranks), recvs(ranks);
    for (unsigned r = 0; r < ranks; ++r) {
      const auto bytes = rng.uniform_int(64, 65536);
      sends[r] = w.isend(r, (r + 1) % ranks, bytes, round);
      recvs[r] = w.irecv(r, (r + ranks - 1) % ranks, bytes, round);
      ++sent;
    }
    check_monotone();
    for (unsigned r = 0; r < ranks; ++r) {
      w.wait(r, recvs[r]);
      w.wait(r, sends[r]);
      ++received;
    }
    check_monotone();
    if (round % 3 == 0) {
      w.barrier();
      check_monotone();
      // After a barrier every clock is equal.
      for (unsigned r = 1; r < ranks; ++r) {
        ASSERT_EQ(w.clock(r), w.clock(0));
      }
    }
  }
  EXPECT_EQ(sent, received);
  // Elapsed equals the max clock.
  std::uint64_t max_clock = 0;
  for (unsigned r = 0; r < ranks; ++r) {
    max_clock = std::max(max_clock, w.clock(r));
  }
  EXPECT_EQ(w.elapsed(), max_clock);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MpiProperties,
                         ::testing::Range<std::uint64_t>(200, 208));

// ---------------------------------------------------------------------
// Property: LNO cost-model monotonicity — more iterations never cost
// less; more threads never raise the parallel per-thread compute share.
// ---------------------------------------------------------------------

#include "openuh/cost_model.hpp"

class CostModelProperties
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CostModelProperties, MonotoneInWorkAndLevel) {
  const auto [log_n, opt] = GetParam();
  const auto n = 1ull << log_n;
  pk::openuh::CostModel model(MachineConfig::altix300());
  const auto cg =
      pk::openuh::codegen_profile(static_cast<pk::openuh::OptLevel>(opt));

  auto nest_of = [](std::uint64_t iters) {
    pk::openuh::LoopNest nest;
    nest.name = "n";
    nest.trip_counts = {iters};
    nest.flops_per_iter = 4.0;
    nest.int_ops_per_iter = 20.0;
    nest.parallelizable = true;
    pk::openuh::ArrayRef a;
    a.name = "x";
    a.extent_elements = iters;
    nest.arrays.push_back(a);
    return nest;
  };

  const double small = model.evaluate(nest_of(n), cg).total();
  const double big = model.evaluate(nest_of(2 * n), cg).total();
  EXPECT_GT(big, small);

  // Higher optimization level never predicts more cycles for the same
  // nest (each pass only removes work or hides stalls in this model).
  if (opt < 3) {
    const auto cg_next = pk::openuh::codegen_profile(
        static_cast<pk::openuh::OptLevel>(opt + 1));
    EXPECT_LE(model.evaluate(nest_of(n), cg_next).total(),
              model.evaluate(nest_of(n), cg).total() * 1.01);
  }

  // Parallel compute share shrinks with threads.
  pk::openuh::Transformation p8;
  p8.parallelize = true;
  p8.num_threads = 8;
  pk::openuh::Transformation p2;
  p2.parallelize = true;
  p2.num_threads = 2;
  EXPECT_LT(model.evaluate(nest_of(n), cg, p8).compute_cycles,
            model.evaluate(nest_of(n), cg, p2).compute_cycles);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CostModelProperties,
    ::testing::Combine(::testing::Values(10, 14, 18, 21),
                       ::testing::Values(0, 1, 2, 3)));

// ---------------------------------------------------------------------
// Property: rule-engine results are invariant to fact assertion order.
// ---------------------------------------------------------------------

#include "analysis/facts.hpp"
#include "rules/rulebases.hpp"

class RuleOrderProperties : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RuleOrderProperties, DiagnosesIndependentOfAssertionOrder) {
  pk::Rng rng(GetParam());
  // A pool of facts, some of which satisfy the load-imbalance join.
  struct Quad {
    double cv_outer, cv_inner, frac, corr;
  };
  std::vector<Quad> quads;
  for (int i = 0; i < 6; ++i) {
    quads.push_back({0.1 + 0.1 * static_cast<double>(i),
                     0.6 - 0.05 * static_cast<double>(i),
                     0.04 + 0.03 * static_cast<double>(i),
                     -0.95 + 0.3 * static_cast<double>(i)});
  }

  auto run_with_order = [&](const std::vector<std::size_t>& order) {
    pk::rules::RuleHarness h;
    pk::rules::builtin::use(h, pk::rules::builtin::load_imbalance());
    for (const auto i : order) {
      const auto& q = quads[i];
      const std::string outer = "outer" + std::to_string(i);
      const std::string inner = "inner" + std::to_string(i);
      h.assert_fact(pk::rules::Fact("LoadBalanceFact")
                        .set("eventName", outer)
                        .set("cv", q.cv_outer)
                        .set("runtimeFraction", q.frac));
      h.assert_fact(pk::rules::Fact("LoadBalanceFact")
                        .set("eventName", inner)
                        .set("cv", q.cv_inner)
                        .set("runtimeFraction", q.frac));
      h.assert_fact(pk::rules::Fact("NestingFact")
                        .set("parentEvent", outer)
                        .set("childEvent", inner));
      h.assert_fact(pk::rules::Fact("CorrelationFact")
                        .set("eventA", outer)
                        .set("eventB", inner)
                        .set("metric", "TIME")
                        .set("correlation", q.corr));
    }
    h.process_rules();
    std::vector<std::string> events;
    for (const auto& d : h.diagnoses()) events.push_back(d.event);
    std::sort(events.begin(), events.end());
    return events;
  };

  std::vector<std::size_t> order = {0, 1, 2, 3, 4, 5};
  const auto baseline = run_with_order(order);
  for (int shuffle = 0; shuffle < 4; ++shuffle) {
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform_int(0, i - 1)]);
    }
    EXPECT_EQ(run_with_order(order), baseline);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuleOrderProperties,
                         ::testing::Range<std::uint64_t>(300, 305));

// ---------------------------------------------------------------------
// Property: PCA with k = dims reconstructs every (centered) row exactly.
// ---------------------------------------------------------------------

#include "analysis/pca.hpp"

class PcaProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PcaProperties, FullRankProjectionPreservesDistances) {
  pk::Rng rng(GetParam());
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 12; ++i) {
    rows.push_back({rng.uniform(-5, 5), rng.uniform(-5, 5),
                    rng.uniform(-5, 5)});
  }
  const auto r = pk::analysis::pca(rows, 3);
  ASSERT_EQ(r.components.size(), 3u);
  // Pairwise distances are preserved by an orthonormal change of basis.
  auto dist2 = [](const std::vector<double>& a,
                  const std::vector<double>& b) {
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      s += (a[i] - b[i]) * (a[i] - b[i]);
    }
    return s;
  };
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t j = i + 1; j < rows.size(); ++j) {
      EXPECT_NEAR(dist2(rows[i], rows[j]),
                  dist2(r.projected[i], r.projected[j]),
                  1e-6 * (1.0 + dist2(rows[i], rows[j])));
    }
  }
  // Explained ratios sum to ~1 at full rank.
  double total = 0.0;
  for (const double x : r.explained_ratio) total += x;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PcaProperties,
                         ::testing::Range<std::uint64_t>(400, 406));
