// Tests for the analysis operations: derived metrics, statistics,
// correlation, differencing, scalability, clustering and fact bridges.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "analysis/clustering.hpp"
#include "analysis/facts.hpp"
#include "analysis/pca.hpp"
#include "analysis/operations.hpp"
#include "common/error.hpp"
#include "rules/engine.hpp"

namespace pk = perfknow;
using pk::analysis::DeriveOp;
using pk::profile::Trial;

namespace {

std::shared_ptr<Trial> scaling_trial(std::size_t threads, double total,
                                     double loop_time) {
  auto t = std::make_shared<Trial>(std::to_string(threads) + "t");
  t->set_thread_count(threads);
  const auto time = t->add_metric("TIME", "usec");
  const auto main = t->add_event("main");
  const auto loop = t->add_event("loop", main);
  const auto serial = t->add_event("serial_part", main);
  for (std::size_t th = 0; th < threads; ++th) {
    t->set_inclusive(th, main, time, total);
    t->set_exclusive(th, main, time, total - loop_time - 50.0);
    t->set_exclusive(th, loop, time, loop_time);
    t->set_inclusive(th, loop, time, loop_time);
    t->set_exclusive(th, serial, time, 50.0);
    t->set_inclusive(th, serial, time, 50.0);
  }
  return t;
}

Trial two_metric_trial() {
  Trial t("derive");
  t.set_thread_count(2);
  const auto a = t.add_metric("A");
  const auto b = t.add_metric("B");
  const auto e = t.add_event("ev");
  t.set_exclusive(0, e, a, 10.0);
  t.set_exclusive(0, e, b, 4.0);
  t.set_inclusive(0, e, a, 20.0);
  t.set_inclusive(0, e, b, 5.0);
  t.set_exclusive(1, e, a, 8.0);
  t.set_exclusive(1, e, b, 0.0);  // division-by-zero case
  return t;
}

}  // namespace

TEST(DeriveMetric, AllOperatorsAndNaming) {
  Trial t = two_metric_trial();
  const auto e = t.event_id("ev");
  const auto div = pk::analysis::derive_metric(t, "A", "B", DeriveOp::kDivide);
  EXPECT_EQ(t.metric(div).name, "(A / B)");
  EXPECT_TRUE(t.metric(div).derived);
  EXPECT_DOUBLE_EQ(t.exclusive(0, e, div), 2.5);
  EXPECT_DOUBLE_EQ(t.inclusive(0, e, div), 4.0);
  EXPECT_DOUBLE_EQ(t.exclusive(1, e, div), 0.0);  // x/0 -> 0 by contract

  const auto add = pk::analysis::derive_metric(t, "A", "B", DeriveOp::kAdd);
  EXPECT_DOUBLE_EQ(t.exclusive(0, e, add), 14.0);
  const auto sub =
      pk::analysis::derive_metric(t, "A", "B", DeriveOp::kSubtract);
  EXPECT_DOUBLE_EQ(t.exclusive(0, e, sub), 6.0);
  const auto mul =
      pk::analysis::derive_metric(t, "A", "B", DeriveOp::kMultiply);
  EXPECT_DOUBLE_EQ(t.exclusive(0, e, mul), 40.0);

  // Idempotent: deriving again returns the same column.
  EXPECT_EQ(pk::analysis::derive_metric(t, "A", "B", DeriveOp::kDivide),
            div);
  EXPECT_THROW(pk::analysis::derive_metric(t, "A", "NOPE", DeriveOp::kAdd),
               pk::NotFoundError);
}

TEST(DeriveMetric, NestedDerivationMatchesInefficiencyFormula) {
  // Inefficiency = FP_OPS * (BACK_END_BUBBLE_ALL / CPU_CYCLES).
  Trial t("ineff");
  t.set_thread_count(1);
  const auto fp = t.add_metric("FP_OPS");
  const auto st = t.add_metric("BACK_END_BUBBLE_ALL");
  const auto cy = t.add_metric("CPU_CYCLES");
  const auto e = t.add_event("ev");
  t.set_exclusive(0, e, fp, 100.0);
  t.set_exclusive(0, e, st, 30.0);
  t.set_exclusive(0, e, cy, 60.0);
  pk::analysis::derive_metric(t, "BACK_END_BUBBLE_ALL", "CPU_CYCLES",
                              DeriveOp::kDivide);
  const auto ineff = pk::analysis::derive_metric(
      t, "FP_OPS", "(BACK_END_BUBBLE_ALL / CPU_CYCLES)",
      DeriveOp::kMultiply);
  EXPECT_EQ(t.metric(ineff).name,
            "(FP_OPS * (BACK_END_BUBBLE_ALL / CPU_CYCLES))");
  EXPECT_DOUBLE_EQ(t.exclusive(0, e, ineff), 50.0);
}

TEST(ScaleMetric, MultipliesEverything) {
  Trial t = two_metric_trial();
  const auto s = pk::analysis::scale_metric(t, "A", 2.0, "A_x2");
  EXPECT_DOUBLE_EQ(t.exclusive(0, t.event_id("ev"), s), 20.0);
}

TEST(Statistics, PerEventAcrossThreads) {
  Trial t("stats");
  t.set_thread_count(4);
  const auto m = t.add_metric("TIME");
  const auto e = t.add_event("ev");
  const double vals[] = {10, 20, 30, 40};
  for (std::size_t th = 0; th < 4; ++th) {
    t.set_exclusive(th, e, m, vals[th]);
  }
  const auto s = pk::analysis::event_statistics(t, e, "TIME");
  EXPECT_DOUBLE_EQ(s.mean, 25.0);
  EXPECT_DOUBLE_EQ(s.min, 10.0);
  EXPECT_DOUBLE_EQ(s.max, 40.0);
  EXPECT_DOUBLE_EQ(s.total, 100.0);
  EXPECT_NEAR(s.cv, 0.4472, 1e-3);
  EXPECT_EQ(pk::analysis::basic_statistics(t, "TIME").size(), 1u);
}

TEST(Statistics, TopEventsOrdering) {
  const auto t = scaling_trial(2, 1000, 700);
  const auto top = pk::analysis::top_events(*t, "TIME", 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].name, "loop");
  EXPECT_EQ(top[1].name, "main");
}

TEST(Statistics, RuntimeFraction) {
  const auto t = scaling_trial(2, 1000, 700);
  EXPECT_DOUBLE_EQ(
      pk::analysis::runtime_fraction(*t, t->event_id("loop")), 0.7);
  EXPECT_DOUBLE_EQ(
      pk::analysis::runtime_fraction(*t, t->event_id("serial_part")), 0.05);
}

TEST(Correlation, NegativeAcrossThreads) {
  Trial t("corr");
  t.set_thread_count(4);
  const auto m = t.add_metric("TIME");
  const auto outer = t.add_event("outer");
  const auto inner = t.add_event("inner", outer);
  // Work+wait sums constant per thread: perfect negative correlation.
  const double work[] = {10, 20, 30, 40};
  for (std::size_t th = 0; th < 4; ++th) {
    t.set_exclusive(th, inner, m, work[th]);
    t.set_exclusive(th, outer, m, 50.0 - work[th]);
  }
  EXPECT_NEAR(pk::analysis::correlate_events(t, outer, inner, "TIME"), -1.0,
              1e-12);
}

TEST(Difference, PerformanceAlgebra) {
  const auto a = scaling_trial(2, 1000, 700);
  const auto b = scaling_trial(2, 800, 500);
  const auto diff = pk::analysis::difference(*a, *b, "TIME");
  EXPECT_DOUBLE_EQ(diff.at("loop"), -200.0);
  EXPECT_DOUBLE_EQ(diff.at("serial_part"), 0.0);
}

TEST(Scalability, SpeedupAndEfficiency) {
  std::vector<pk::perfdmf::TrialPtr> trials = {
      scaling_trial(1, 1600, 1500),
      scaling_trial(2, 830, 750),
      scaling_trial(4, 430, 375),
  };
  pk::analysis::ScalabilityAnalysis sc(trials);
  const auto speedup = sc.total_speedup();
  ASSERT_EQ(speedup.size(), 3u);
  EXPECT_DOUBLE_EQ(speedup[0], 1.0);
  EXPECT_NEAR(speedup[1], 1600.0 / 830.0, 1e-12);
  const auto eff = sc.relative_efficiency();
  EXPECT_DOUBLE_EQ(eff[0], 1.0);
  EXPECT_NEAR(eff[1], 1600.0 / 830.0 / 2.0, 1e-12);
  // Per-event: the loop scales, the serial part does not.
  const auto loop_speedup = sc.event_speedup("loop");
  EXPECT_NEAR(loop_speedup[2], 4.0, 1e-12);
  const auto serial_speedup = sc.event_speedup("serial_part");
  EXPECT_NEAR(serial_speedup[2], 1.0, 1e-12);
  EXPECT_EQ(sc.events_by_baseline_cost().front(), "loop");
  EXPECT_THROW(pk::analysis::ScalabilityAnalysis({trials[0]}),
               pk::InvalidArgumentError);
}

TEST(Clustering, SeparatesTwoThreadPopulations) {
  // 6 threads: 3 "fast" and 3 "slow" with distinct event signatures.
  std::vector<std::vector<double>> rows = {
      {1, 10}, {1.2, 10.5}, {0.9, 9.8}, {8, 2}, {8.2, 2.1}, {7.9, 1.9}};
  const auto r = pk::analysis::kmeans(rows, 2);
  EXPECT_EQ(r.k(), 2u);
  EXPECT_EQ(r.assignment[0], r.assignment[1]);
  EXPECT_EQ(r.assignment[0], r.assignment[2]);
  EXPECT_EQ(r.assignment[3], r.assignment[4]);
  EXPECT_NE(r.assignment[0], r.assignment[3]);
  EXPECT_EQ(r.cluster_size(0) + r.cluster_size(1), 6u);
  EXPECT_GT(pk::analysis::silhouette(rows, r), 0.6);
}

TEST(Clustering, DeterministicAndValidated) {
  std::vector<std::vector<double>> rows = {{1, 2}, {3, 4}, {5, 6}, {7, 8}};
  const auto a = pk::analysis::kmeans(rows, 2);
  const auto b = pk::analysis::kmeans(rows, 2);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_THROW(pk::analysis::kmeans(rows, 0), pk::InvalidArgumentError);
  EXPECT_THROW(pk::analysis::kmeans(rows, 5), pk::InvalidArgumentError);
  std::vector<std::vector<double>> ragged = {{1, 2}, {3}};
  EXPECT_THROW(pk::analysis::kmeans(ragged, 1), pk::InvalidArgumentError);
}

TEST(Clustering, ThreadEventMatrixFromTrial) {
  Trial t("cluster");
  t.set_thread_count(4);
  const auto m = t.add_metric("TIME");
  const auto e1 = t.add_event("a");
  const auto e2 = t.add_event("b");
  for (std::size_t th = 0; th < 4; ++th) {
    t.set_exclusive(th, e1, m, th < 2 ? 10.0 : 100.0);
    t.set_exclusive(th, e2, m, th < 2 ? 100.0 : 10.0);
  }
  const auto r = pk::analysis::cluster_threads(t, "TIME", 2);
  EXPECT_EQ(r.assignment[0], r.assignment[1]);
  EXPECT_NE(r.assignment[0], r.assignment[2]);
}

TEST(Facts, CompareEventToMainFields) {
  const auto t = scaling_trial(2, 1000, 700);
  const auto f = pk::analysis::compare_event_to_main(
      *t, "TIME", t->event_id("loop"));
  EXPECT_EQ(f.type(), "MeanEventFact");
  EXPECT_EQ(f.text("factType"), "Compared to Main");
  EXPECT_EQ(f.text("eventName"), "loop");
  EXPECT_EQ(f.text("higherLower"), "lower");  // 700 excl < 1000 main incl
  EXPECT_DOUBLE_EQ(f.number("severity"), 0.7);
  EXPECT_DOUBLE_EQ(f.number("mainValue"), 1000.0);
  EXPECT_DOUBLE_EQ(f.number("eventValue"), 700.0);
}

TEST(Facts, LoadBalanceFactsIncludeNestingAndCorrelation) {
  Trial t("lb");
  t.set_thread_count(4);
  const auto m = t.add_metric("TIME");
  const auto main = t.add_event("main");
  const auto outer = t.add_event("outer", main);
  const auto inner = t.add_event("inner", outer);
  const double work[] = {10, 20, 30, 40};
  for (std::size_t th = 0; th < 4; ++th) {
    t.set_inclusive(th, main, m, 100.0);
    t.set_exclusive(th, inner, m, work[th]);
    t.set_exclusive(th, outer, m, 50.0 - work[th]);
  }
  pk::rules::RuleHarness h;
  const auto n = pk::analysis::assert_load_balance_facts(h, t, "TIME");
  EXPECT_EQ(n, 3u + 2u + 2u);  // 3 LB facts, 2 nesting, 2 correlation
  EXPECT_EQ(h.memory().ids_of_type("LoadBalanceFact").size(), 3u);
  EXPECT_EQ(h.memory().ids_of_type("NestingFact").size(), 2u);
  const auto corr = h.memory().ids_of_type("CorrelationFact");
  ASSERT_EQ(corr.size(), 2u);
  // outer->inner correlation is -1.
  bool found = false;
  for (const auto id : corr) {
    const auto f = h.memory().find(id);
    if (f.text("eventA") == "outer" && f.text("eventB") == "inner") {
      EXPECT_NEAR(f.number("correlation"), -1.0, 1e-9);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Facts, StallAndLocalityFactsRequireCounterMetrics) {
  const auto t = scaling_trial(2, 100, 50);
  pk::rules::RuleHarness h;
  EXPECT_THROW(pk::analysis::assert_stall_facts(h, *t), pk::NotFoundError);
  EXPECT_THROW(pk::analysis::assert_memory_locality_facts(h, *t),
               pk::NotFoundError);
}

TEST(Facts, ScalingFactsFromAnalysis) {
  std::vector<pk::perfdmf::TrialPtr> trials = {
      scaling_trial(1, 1600, 1500), scaling_trial(4, 430, 375)};
  pk::analysis::ScalabilityAnalysis sc(trials);
  pk::rules::RuleHarness h;
  const auto n = pk::analysis::assert_scaling_facts(h, sc);
  EXPECT_EQ(n, 3u);
  bool serial_seen = false;
  for (const auto id : h.memory().ids_of_type("ScalingFact")) {
    const auto f = h.memory().find(id);
    if (f.text("eventName") == "serial_part") {
      serial_seen = true;
      EXPECT_NEAR(f.number("speedup"), 1.0, 1e-9);
      EXPECT_NEAR(f.number("efficiency"), 0.25, 1e-9);
    }
  }
  EXPECT_TRUE(serial_seen);
}

// ---------------------------------------------------------------------
// Performance algebra: merge and aggregate (CUBE-style)
// ---------------------------------------------------------------------

TEST(Algebra, MergeAveragesSharedEventsAndKeepsUniqueOnes) {
  Trial a("a");
  a.set_thread_count(2);
  const auto ma = a.add_metric("TIME");
  const auto sa = a.add_event("shared");
  const auto ua = a.add_event("only_a");
  for (std::size_t th = 0; th < 2; ++th) {
    a.set_exclusive(th, sa, ma, 10.0);
    a.set_exclusive(th, ua, ma, 4.0);
    a.set_calls(th, sa, 2, 0);
  }
  Trial b("b");
  b.set_thread_count(2);
  const auto mb = b.add_metric("TIME");
  b.add_metric("ONLY_B");  // not common: dropped
  const auto sb = b.add_event("shared");
  const auto ub = b.add_event("only_b");
  for (std::size_t th = 0; th < 2; ++th) {
    b.set_exclusive(th, sb, mb, 30.0);
    b.set_exclusive(th, ub, mb, 8.0);
    b.set_calls(th, sb, 4, 0);
  }

  const auto m = pk::analysis::merge_trials(a, b);
  EXPECT_EQ(m.thread_count(), 2u);
  EXPECT_EQ(m.metric_count(), 1u);  // only TIME is common
  const auto tm = m.metric_id("TIME");
  EXPECT_DOUBLE_EQ(m.exclusive(0, m.event_id("shared"), tm), 20.0);
  EXPECT_DOUBLE_EQ(m.exclusive(0, m.event_id("only_a"), tm), 4.0);
  EXPECT_DOUBLE_EQ(m.exclusive(0, m.event_id("only_b"), tm), 8.0);
  EXPECT_DOUBLE_EQ(m.calls(0, m.event_id("shared")).calls, 3.0);

  Trial c("c");
  c.set_thread_count(4);
  c.add_metric("TIME");
  c.add_event("x");
  EXPECT_THROW(pk::analysis::merge_trials(a, c),
               pk::InvalidArgumentError);
}

TEST(Algebra, AggregateThreadsSumAndMean) {
  Trial t("agg");
  t.set_thread_count(4);
  const auto m = t.add_metric("TIME");
  const auto main = t.add_event("main");
  const auto loop = t.add_event("loop", main);
  for (std::size_t th = 0; th < 4; ++th) {
    t.set_inclusive(th, main, m, 100.0);
    t.set_exclusive(th, loop, m, static_cast<double>(th + 1) * 10.0);
    t.set_calls(th, loop, 5, 0);
  }
  t.set_metadata("k", "v");

  const auto sum = pk::analysis::aggregate_threads(t, /*mean=*/false);
  EXPECT_EQ(sum.thread_count(), 1u);
  EXPECT_DOUBLE_EQ(sum.exclusive(0, sum.event_id("loop"), 0), 100.0);
  EXPECT_DOUBLE_EQ(sum.inclusive(0, sum.event_id("main"), 0), 400.0);
  EXPECT_DOUBLE_EQ(sum.calls(0, sum.event_id("loop")).calls, 20.0);
  // Callgraph and metadata preserved.
  EXPECT_EQ(sum.event(sum.event_id("loop")).parent, sum.event_id("main"));
  EXPECT_EQ(*sum.metadata("k"), "v");

  const auto mean = pk::analysis::aggregate_threads(t, /*mean=*/true);
  EXPECT_DOUBLE_EQ(mean.exclusive(0, mean.event_id("loop"), 0), 25.0);
}

// ---------------------------------------------------------------------
// PCA
// ---------------------------------------------------------------------

TEST(Pca, RecoversDominantAxis) {
  // Points along the (1, 1) direction with small orthogonal noise.
  std::vector<std::vector<double>> rows;
  for (int i = -5; i <= 5; ++i) {
    const double t = static_cast<double>(i);
    rows.push_back({t + 0.01 * (i % 2), t - 0.01 * (i % 2)});
  }
  const auto r = pk::analysis::pca(rows, 2);
  ASSERT_GE(r.components.size(), 1u);
  // First component ~ (1/sqrt2, 1/sqrt2).
  EXPECT_NEAR(std::abs(r.components[0][0]), std::sqrt(0.5), 3e-3);
  EXPECT_NEAR(std::abs(r.components[0][1]), std::sqrt(0.5), 3e-3);
  EXPECT_GT(r.explained_ratio[0], 0.99);
  // Projection of the extreme point is ~ +-5*sqrt(2).
  double max_proj = 0.0;
  for (const auto& p : r.projected) {
    max_proj = std::max(max_proj, std::abs(p[0]));
  }
  EXPECT_NEAR(max_proj, 5.0 * std::sqrt(2.0), 0.05);
}

TEST(Pca, ComponentsAreOrthonormalAndVarianceOrdered) {
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 40; ++i) {
    const double a = static_cast<double>(i % 7) - 3.0;
    const double b = static_cast<double>(i % 5) - 2.0;
    const double c = static_cast<double>(i % 3) - 1.0;
    rows.push_back(
        {3.0 * a + 0.2 * b, 0.5 * b + c, a - b, 0.1 * a - 2.0 * c});
  }
  const auto r = pk::analysis::pca(rows, 3);
  ASSERT_EQ(r.components.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    double norm = 0.0;
    for (const double x : r.components[i]) norm += x * x;
    EXPECT_NEAR(norm, 1.0, 1e-9);
    for (std::size_t j = i + 1; j < 3; ++j) {
      double d = 0.0;
      for (std::size_t k = 0; k < 4; ++k) {
        d += r.components[i][k] * r.components[j][k];
      }
      EXPECT_NEAR(d, 0.0, 1e-6);
    }
  }
  EXPECT_GE(r.explained_variance[0], r.explained_variance[1]);
  EXPECT_GE(r.explained_variance[1], r.explained_variance[2]);
}

TEST(Pca, DegenerateInputsHandled) {
  EXPECT_THROW(pk::analysis::pca({}, 1), pk::InvalidArgumentError);
  EXPECT_THROW(pk::analysis::pca({{1.0, 2.0}}, 0),
               pk::InvalidArgumentError);
  std::vector<std::vector<double>> ragged = {{1, 2}, {3}};
  EXPECT_THROW(pk::analysis::pca(ragged, 1), pk::InvalidArgumentError);
  // Constant data: no components extractable, no crash.
  std::vector<std::vector<double>> flat(5, std::vector<double>{2.0, 2.0});
  const auto r = pk::analysis::pca(flat, 2);
  EXPECT_TRUE(r.components.empty());
  // k clamps to dimensionality.
  std::vector<std::vector<double>> thin = {{1.0}, {2.0}, {3.0}};
  EXPECT_LE(pk::analysis::pca(thin, 5).components.size(), 1u);
}

TEST(Pca, SeparatesThreadClusters) {
  // The master thread's signature differs from the workers': PCA axis 1
  // should separate them at a glance, mirroring PerfExplorer's use.
  Trial t("pca");
  t.set_thread_count(8);
  const auto m = t.add_metric("TIME");
  const auto work = t.add_event("work");
  const auto copy = t.add_event("serial_copy");
  for (std::size_t th = 0; th < 8; ++th) {
    t.set_exclusive(th, work, m, th == 0 ? 10.0 : 100.0);
    t.set_exclusive(th, copy, m, th == 0 ? 90.0 : 0.0);
  }
  const auto rows = pk::analysis::thread_event_matrix(t, "TIME", false);
  const auto r = pk::analysis::pca(rows, 1);
  ASSERT_EQ(r.components.size(), 1u);
  // Thread 0's projection is far from every worker's.
  const double t0 = r.projected[0][0];
  for (std::size_t th = 1; th < 8; ++th) {
    EXPECT_GT(std::abs(t0 - r.projected[th][0]), 50.0);
  }
}

// ---------------------------------------------------------------------
// Report rendering
// ---------------------------------------------------------------------

#include "analysis/report.hpp"
#include "rules/rulebases.hpp"

TEST(Report, RendersSummaryEventsAndGroupedDiagnoses) {
  auto t = scaling_trial(4, 1000, 700);
  t->set_metadata("schedule", "static");
  pk::rules::RuleHarness h;
  h.add_rule(pk::rules::Rule{
      "always", 0,
      {pk::rules::Pattern{"LoadBalanceFact", "", {}, {}, nullptr, {}}},
      [](pk::rules::RuleContext& ctx) {
        ctx.diagnose("SomeProblem", "loop", 0.7, "do the thing");
        ctx.print("trace line");
      },
      {}});
  pk::analysis::assert_load_balance_facts(h, *t);
  h.process_rules();

  pk::analysis::ReportOptions opts;
  opts.include_rule_output = true;
  const auto md = pk::analysis::render_report(*t, &h, opts);
  EXPECT_NE(md.find("# Performance report: 4t"), std::string::npos);
  EXPECT_NE(md.find("- schedule: static"), std::string::npos);
  EXPECT_NE(md.find("| loop |"), std::string::npos);
  EXPECT_NE(md.find("### SomeProblem (3)"), std::string::npos);
  EXPECT_NE(md.find("do the thing"), std::string::npos);
  EXPECT_NE(md.find("trace line"), std::string::npos);
}

TEST(Report, NoHarnessAndNoDiagnoses) {
  const auto t = scaling_trial(2, 100, 50);
  const auto plain = pk::analysis::render_report(*t, nullptr);
  EXPECT_EQ(plain.find("## Diagnoses"), std::string::npos);
  pk::rules::RuleHarness empty;
  const auto quiet = pk::analysis::render_report(*t, &empty);
  EXPECT_NE(quiet.find("No rules fired"), std::string::npos);
}
