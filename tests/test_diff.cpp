// Trial-history layer: lineage in perfdmf::Repository, the differential
// fact deriver (analysis/diff), and the shipped regression.rules
// rulebase that turns those facts into gate verdicts.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diff.hpp"
#include "analysis/operations.hpp"
#include "common/error.hpp"
#include "io/bench_json.hpp"
#include "perfdmf/repository.hpp"
#include "profile/profile.hpp"
#include "provenance/explanation.hpp"
#include "rules/engine.hpp"
#include "rules/rulebases.hpp"

namespace pk = perfknow;
namespace fs = std::filesystem;
using pk::analysis::DiffOptions;
using pk::perfdmf::Repository;
using pk::profile::Trial;
using pk::rules::RuleHarness;

namespace {

/// A one-thread trial with a "main" root and the given exclusive TIME
/// per child event; main's inclusive TIME is the sum.
std::shared_ptr<Trial> make_versioned(
    const std::string& name,
    const std::vector<std::pair<std::string, double>>& events) {
  auto t = std::make_shared<Trial>(name);
  t->set_thread_count(1);
  const auto time = t->add_metric("TIME", "usec");
  const auto root = t->add_event("main");
  double total = 0.0;
  for (const auto& [ename, usec] : events) {
    const auto e = t->add_event(ename, root);
    t->set_inclusive(0, e, time, usec);
    t->set_exclusive(0, e, time, usec);
    t->set_calls(0, e, 1, 0);
    total += usec;
  }
  t->set_inclusive(0, root, time, total);
  t->set_calls(0, root, 1, static_cast<double>(events.size()));
  return t;
}

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() /
           ("perfknow_diff_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    fs::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return dir_; }

 private:
  fs::path dir_;
  static inline int counter_ = 0;
};

std::string bench_baseline_json(const std::string& name) {
  const auto path =
      fs::path(PERFKNOW_SOURCE_DIR) / "bench" / "baseline" / name;
  std::ifstream is(path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

/// Live facts of one type, in assertion order.
std::vector<pk::rules::FactRef> facts_of(const RuleHarness& harness,
                                         const std::string& type) {
  std::vector<pk::rules::FactRef> out;
  for (const auto id : harness.memory().ids_of_type(type)) {
    out.push_back(harness.memory().find(id));
  }
  return out;
}

}  // namespace

// ---- lineage in the repository -----------------------------------------

TEST(Lineage, PutVersionChainsAndHistoryOrders) {
  Repository repo;
  repo.put_version("app", "exp", make_versioned("v1", {{"a", 10}}));
  repo.put_version("app", "exp", make_versioned("v2", {{"a", 11}}));
  repo.put_version("app", "exp", make_versioned("v3", {{"a", 12}}));

  EXPECT_EQ(repo.history("app", "exp"),
            (std::vector<std::string>{"v1", "v2", "v3"}));
  EXPECT_EQ(repo.predecessor_of("app", "exp", "v1"), "");
  EXPECT_EQ(repo.predecessor_of("app", "exp", "v2"), "v1");
  EXPECT_EQ(repo.predecessor_of("app", "exp", "v3"), "v2");
  // The link is stamped into metadata so it survives inside snapshots.
  EXPECT_EQ(repo.get("app", "exp", "v3")->metadata("version.predecessor"),
            "v2");
  EXPECT_THROW(repo.predecessor_of("app", "nope", "v1"),
               pk::NotFoundError);
}

TEST(Lineage, ExplicitPredecessorAndSelfLinkRejected) {
  Repository repo;
  repo.put_version("app", "exp", make_versioned("v1", {{"a", 1}}));
  repo.put_version("app", "exp", make_versioned("v2", {{"a", 1}}));
  // Branch off v1 explicitly instead of the chain head v2.
  repo.put_version("app", "exp", make_versioned("v2b", {{"a", 1}}), "v1");
  EXPECT_EQ(repo.predecessor_of("app", "exp", "v2b"), "v1");
  EXPECT_THROW(repo.put_version("app", "exp",
                                make_versioned("loop", {{"a", 1}}), "loop"),
               pk::InvalidArgumentError);
}

TEST(Lineage, HistoryFallsBackToNameOrderWithoutLinks) {
  Repository repo;
  repo.put("app", "exp", make_versioned("b", {{"a", 1}}));
  repo.put("app", "exp", make_versioned("a", {{"a", 1}}));
  EXPECT_EQ(repo.history("app", "exp"),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(repo.predecessor_of("app", "exp", "a"), "");
}

TEST(Lineage, EraseSplicesTheChain) {
  Repository repo;
  for (const char* v : {"v1", "v2", "v3"}) {
    repo.put_version("app", "exp", make_versioned(v, {{"a", 1}}));
  }
  EXPECT_TRUE(repo.erase("app", "exp", "v2"));
  EXPECT_EQ(repo.history("app", "exp"),
            (std::vector<std::string>{"v1", "v3"}));
  // v3 inherits the erased link's predecessor.
  EXPECT_EQ(repo.predecessor_of("app", "exp", "v3"), "v1");
}

TEST(Lineage, PruneHistoryKeepsNewestAndReturnsRemoved) {
  Repository repo;
  for (const char* v : {"v1", "v2", "v3", "v4"}) {
    repo.put_version("app", "exp", make_versioned(v, {{"a", 1}}));
  }
  const auto removed = repo.prune_history("app", "exp", 2);
  EXPECT_EQ(removed, (std::vector<std::string>{"v1", "v2"}));
  EXPECT_EQ(repo.history("app", "exp"),
            (std::vector<std::string>{"v3", "v4"}));
  EXPECT_EQ(repo.predecessor_of("app", "exp", "v3"), "");
  EXPECT_FALSE(repo.contains("app", "exp", "v1"));
  // Pruning to a size >= the chain is a no-op.
  EXPECT_TRUE(repo.prune_history("app", "exp", 5).empty());
}

TEST(Lineage, SurvivesSaveLoadAndAttach) {
  TempDir dir;
  {
    Repository repo;
    repo.put_version("app", "exp", make_versioned("v1", {{"a", 1}}));
    repo.put_version("app", "exp", make_versioned("v2", {{"a", 2}}));
    repo.put("app", "unversioned", make_versioned("t", {{"a", 1}}));
    repo.save(dir.path());
  }
  EXPECT_TRUE(fs::exists(dir.path() / "lineage.tsv"));

  const auto loaded = Repository::load(dir.path());
  EXPECT_EQ(loaded.history("app", "exp"),
            (std::vector<std::string>{"v1", "v2"}));
  EXPECT_EQ(loaded.predecessor_of("app", "exp", "v2"), "v1");
  // No links for the unversioned experiment.
  EXPECT_EQ(loaded.predecessor_of("app", "unversioned", "t"), "");

  const auto attached = Repository::attach(dir.path());
  EXPECT_EQ(attached.history("app", "exp"),
            (std::vector<std::string>{"v1", "v2"}));

  // A lineage-free save over the same directory removes the stale file.
  Repository plain;
  plain.put("app", "exp", make_versioned("t", {{"a", 1}}));
  plain.save(dir.path());
  EXPECT_FALSE(fs::exists(dir.path() / "lineage.tsv"));
}

TEST(Lineage, MalformedLineageRowsDiagnose) {
  TempDir dir;
  {
    Repository repo;
    repo.put_version("app", "exp", make_versioned("v1", {{"a", 1}}));
    repo.save(dir.path());
  }
  std::ofstream(dir.path() / "lineage.tsv", std::ios::app)
      << "only\ttwo\n";
  EXPECT_THROW((void)Repository::load(dir.path()), pk::ParseError);
}

// ---- differential facts -------------------------------------------------

TEST(Diff, GeomeanNormalizationMatchesHandComputation) {
  // Three events; one doubles while the others are flat. The geomean of
  // ratios {2, 1, 1} is 2^(1/3), so the hot event's normalizedRatio is
  // 2 / 2^(1/3) and the flat events sit below 1.
  const auto base = make_versioned(
      "base", {{"a", 100}, {"b", 200}, {"c", 300}});
  const auto current = make_versioned(
      "cur", {{"a", 200}, {"b", 200}, {"c", 300}});
  RuleHarness harness;
  const auto summary =
      pk::analysis::assert_diff_facts(harness, *base, *current);

  // The synthetic root has no exclusive time, so it's a skipped cell;
  // the three children compare.
  EXPECT_EQ(summary.compared_cells, 3u);
  EXPECT_EQ(summary.skipped_cells, 1u);
  EXPECT_EQ(summary.regressed_cells, 1u);

  const double geomean =
      std::exp((std::log(2.0) + std::log(1.0) + std::log(1.0)) / 3.0);
  bool saw_a = false;
  for (const auto& f : facts_of(harness, "MetricDeltaFact")) {
    if (std::get<std::string>(f.get("eventName")) != "a") continue;
    saw_a = true;
    EXPECT_DOUBLE_EQ(std::get<double>(f.get("ratio")), 2.0);
    EXPECT_NEAR(std::get<double>(f.get("normalizedRatio")),
                2.0 / geomean, 1e-4);
    EXPECT_EQ(std::get<std::string>(f.get("direction")), "regressed");
    EXPECT_EQ(std::get<std::string>(f.get("baseTrial")), "base");
    EXPECT_EQ(std::get<std::string>(f.get("currentTrial")), "cur");
  }
  EXPECT_TRUE(saw_a);
}

TEST(Diff, RawRatiosWithoutNormalization) {
  const auto base = make_versioned("base", {{"a", 100}, {"b", 100}});
  const auto current = make_versioned("cur", {{"a", 150}, {"b", 100}});
  RuleHarness harness;
  DiffOptions options;
  options.normalize = false;
  pk::analysis::assert_diff_facts(harness, *base, *current, options);
  for (const auto& f : facts_of(harness, "MetricDeltaFact")) {
    EXPECT_DOUBLE_EQ(std::get<double>(f.get("ratio")),
                     std::get<double>(f.get("normalizedRatio")));
  }
}

TEST(Diff, PresenceFactsAndSummary) {
  const auto base = make_versioned("base", {{"gone", 500}, {"kept", 100}});
  const auto current = make_versioned("cur", {{"kept", 100}, {"new", 50}});
  RuleHarness harness;
  const auto summary =
      pk::analysis::assert_diff_facts(harness, *base, *current);
  EXPECT_EQ(summary.missing_events, 1u);
  EXPECT_EQ(summary.added_events, 1u);

  std::size_t presence = 0;
  for (const auto& f : facts_of(harness, "EventPresenceFact")) {
    ++presence;
    const auto name = std::get<std::string>(f.get("eventName"));
    const auto state = std::get<std::string>(f.get("presence"));
    EXPECT_EQ(state, name == "gone" ? "removed" : "added");
    EXPECT_GT(std::get<double>(f.get("runtimeFraction")), 0.0);
  }
  EXPECT_EQ(presence, 2u);
}

TEST(Diff, MetricSelectionAndErrors) {
  const auto base = make_versioned("base", {{"a", 100}});
  const auto current = make_versioned("cur", {{"a", 100}});
  RuleHarness harness;
  DiffOptions options;
  options.metrics = {"TIME"};
  EXPECT_EQ(pk::analysis::assert_diff_facts(harness, *base, *current,
                                            options)
                .compared_cells,
            1u);
  options.metrics = {"NOPE"};
  EXPECT_THROW(pk::analysis::assert_diff_facts(harness, *base, *current,
                                               options),
               pk::InvalidArgumentError);
}

// ---- regression.rules over the facts -----------------------------------

namespace {

/// Runs regression.rules over base -> current and returns the harness.
std::unique_ptr<RuleHarness> diagnose(
    const pk::profile::TrialView& base,
    const pk::profile::TrialView& current,
    pk::provenance::ProvenanceMode mode =
        pk::provenance::ProvenanceMode::kOff) {
  auto harness = std::make_unique<RuleHarness>();
  harness->set_provenance(mode);
  pk::rules::builtin::use(*harness, pk::rules::builtin::regression());
  pk::analysis::assert_diff_facts(*harness, base, current);
  harness->process_rules();
  return harness;
}

std::vector<std::string> diagnosis_lines(const RuleHarness& harness) {
  std::vector<std::string> out;
  for (const auto& d : harness.diagnoses()) out.push_back(d.to_string());
  return out;
}

}  // namespace

TEST(RegressionRules, SelfDiffIsWithinNoiseAcrossShippedCorpora) {
  // diff(A, A) must never diagnose a regression, whatever the corpus.
  std::vector<std::shared_ptr<Trial>> corpora;
  corpora.push_back(make_versioned("synthetic", {{"a", 10}, {"b", 20}}));
  for (const char* name :
       {"bench_rules_engine.json", "bench_trial_store.json"}) {
    const auto text = bench_baseline_json(name);
    if (text.empty()) continue;
    corpora.push_back(std::make_shared<Trial>(
        pk::io::trial_from_benchmark_json(text, name)));
  }
  ASSERT_GE(corpora.size(), 2u);
  for (const auto& trial : corpora) {
    const auto harness = diagnose(*trial, *trial);
    bool within_noise = false;
    for (const auto& d : harness->diagnoses()) {
      EXPECT_FALSE(pk::analysis::regression_problem(d.problem))
          << trial->name() << ": " << d.to_string();
      if (d.problem == "WithinNoiseBand") within_noise = true;
    }
    EXPECT_TRUE(within_noise) << trial->name();
  }
}

TEST(RegressionRules, PlantedRegressionDiagnosesWithBothTrialsNamed) {
  const auto base = make_versioned(
      "r1000", {{"hot", 1000}, {"warm", 200}, {"cold", 10}});
  const auto current = make_versioned(
      "r1001", {{"hot", 2500}, {"warm", 200}, {"cold", 10}});
  const auto harness = diagnose(*base, *current);

  bool regression = false;
  for (const auto& d : harness->diagnoses()) {
    if (d.problem != "MetricRegression") continue;
    regression = true;
    EXPECT_EQ(d.event, "hot");
    EXPECT_EQ(d.metric, "TIME");
    // The message names both versions so the gate log is actionable.
    EXPECT_NE(d.message.find("r1000"), std::string::npos);
    EXPECT_NE(d.message.find("r1001"), std::string::npos);
    EXPECT_TRUE(pk::analysis::regression_problem(d.problem));
  }
  EXPECT_TRUE(regression);
}

TEST(RegressionRules, DisappearedBenchmarkIsAGateFailure) {
  const auto base = make_versioned("v1", {{"a", 100}, {"b", 100}});
  const auto current = make_versioned("v2", {{"a", 100}});
  const auto harness = diagnose(*base, *current);
  bool missing = false;
  for (const auto& d : harness->diagnoses()) {
    if (d.problem == "MissingEvent") {
      missing = true;
      EXPECT_EQ(d.event, "b");
      EXPECT_TRUE(pk::analysis::regression_problem(d.problem));
    }
  }
  EXPECT_TRUE(missing);
}

TEST(RegressionRules, DiagnosesAreIdenticalAcrossProvenanceModes) {
  // The acceptance bar: provenance capture observes, never perturbs.
  const auto base = make_versioned(
      "v1", {{"hot", 1000}, {"warm", 300}, {"cold", 20}});
  const auto current = make_versioned(
      "v2", {{"hot", 2200}, {"warm", 310}, {"cold", 5}});
  const auto off =
      diagnosis_lines(*diagnose(*base, *current,
                                pk::provenance::ProvenanceMode::kOff));
  const auto rules =
      diagnosis_lines(*diagnose(*base, *current,
                                pk::provenance::ProvenanceMode::kRules));
  const auto full =
      diagnosis_lines(*diagnose(*base, *current,
                                pk::provenance::ProvenanceMode::kFull));
  ASSERT_FALSE(off.empty());
  EXPECT_EQ(off, rules);
  EXPECT_EQ(off, full);
}

namespace {

/// Recursively checks a proof tree bottoms out in assert_* origins and
/// collects the origin labels.
void walk_origins(const pk::provenance::FiringNode& firing,
                  std::vector<std::string>& origins) {
  for (const auto& bound : firing.facts) {
    if (bound.derived_from) {
      walk_origins(*bound.derived_from, origins);
    } else {
      ASSERT_EQ(bound.origin.rfind("assert_", 0), 0u)
          << "fact " << bound.type << " is not grounded: \""
          << bound.origin << "\"";
      origins.push_back(bound.origin);
    }
  }
}

}  // namespace

TEST(RegressionRules, ExplanationsGroundInBothTrialsRawColumns) {
  const auto base = make_versioned("alpha", {{"hot", 100}, {"c", 10}});
  const auto current = make_versioned("beta", {{"hot", 260}, {"c", 10}});
  const auto harness =
      diagnose(*base, *current, pk::provenance::ProvenanceMode::kFull);

  ASSERT_FALSE(harness->diagnoses().empty());
  for (const auto& d : harness->diagnoses()) {
    ASSERT_NE(d.provenance, nullptr) << d.to_string();
    ASSERT_NE(d.provenance->root, nullptr);
    std::vector<std::string> origins;
    walk_origins(*d.provenance->root, origins);
    ASSERT_FALSE(origins.empty());
    for (const auto& origin : origins) {
      // Every grounding origin names BOTH trials, so the proof tree
      // reaches the raw columns of each side of the comparison.
      EXPECT_NE(origin.find("base='alpha'"), std::string::npos) << origin;
      EXPECT_NE(origin.find("current='beta'"), std::string::npos)
          << origin;
    }
    // And under kFull the source lineage includes each trial's columns.
    const std::string text = pk::provenance::to_text(*d.provenance);
    EXPECT_NE(text.find("raw column of trial 'alpha'"), std::string::npos);
    EXPECT_NE(text.find("raw column of trial 'beta'"), std::string::npos);
  }
}

// ---- scaling shifts -----------------------------------------------------

namespace {

/// A scaling study whose `slow` event's speedup at `threads` is
/// `speedup` (others scale ideally).
std::vector<pk::perfdmf::TrialPtr> scaling_study(
    const std::string& tag, double slow_speedup_at_4) {
  std::vector<pk::perfdmf::TrialPtr> out;
  for (const unsigned threads : {1u, 4u}) {
    auto t = std::make_shared<Trial>(tag + "_" + std::to_string(threads));
    t->set_thread_count(threads);
    const auto time = t->add_metric("TIME", "usec");
    const auto root = t->add_event("main");
    const auto fine = t->add_event("fine", root);
    const auto slow = t->add_event("slow", root);
    const double fine_time = 1000.0 / threads;  // ideal
    const double slow_time =
        threads == 1 ? 1000.0 : 1000.0 / slow_speedup_at_4;
    for (unsigned th = 0; th < threads; ++th) {
      t->set_inclusive(th, fine, time, fine_time);
      t->set_exclusive(th, fine, time, fine_time);
      t->set_inclusive(th, slow, time, slow_time);
      t->set_exclusive(th, slow, time, slow_time);
      t->set_inclusive(th, root, time, fine_time + slow_time);
    }
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace

TEST(Diff, ScalingShiftFactsAndRegressionRule) {
  // Base: slow scales 3.6x of 4 ideal. Current: collapses to 1.8x.
  pk::analysis::ScalabilityAnalysis base(scaling_study("v1", 3.6));
  pk::analysis::ScalabilityAnalysis current(scaling_study("v2", 1.8));

  RuleHarness harness;
  pk::rules::builtin::use(harness, pk::rules::builtin::regression());
  const auto n =
      pk::analysis::assert_scaling_shift_facts(harness, base, current);
  EXPECT_GE(n, 2u);
  harness.process_rules();

  bool scaling_regression = false;
  for (const auto& d : harness.diagnoses()) {
    if (d.problem == "ScalingRegression") {
      scaling_regression = true;
      EXPECT_EQ(d.event, "slow");
    }
  }
  EXPECT_TRUE(scaling_regression);

  bool saw_shift = false;
  for (const auto& f : facts_of(harness, "ScalingShiftFact")) {
    if (std::get<std::string>(f.get("eventName")) != "slow") continue;
    saw_shift = true;
    EXPECT_NEAR(std::get<double>(f.get("baseEfficiency")), 0.9, 1e-4);
    EXPECT_NEAR(std::get<double>(f.get("currentEfficiency")), 0.45,
                1e-4);
    EXPECT_NEAR(std::get<double>(f.get("efficiencyShift")), -0.45, 1e-4);
  }
  EXPECT_TRUE(saw_shift);
}

// ---- benchmark JSON ingest ----------------------------------------------

TEST(BenchJson, ParsesBaselineIntoVersionedTrial) {
  const auto text = bench_baseline_json("bench_rules_engine.json");
  ASSERT_FALSE(text.empty());
  const auto trial = pk::io::trial_from_benchmark_json(text, "v1");
  EXPECT_EQ(trial.name(), "v1");
  EXPECT_EQ(trial.thread_count(), 1u);
  ASSERT_TRUE(trial.find_metric("TIME"));
  ASSERT_TRUE(trial.find_metric("CPU_TIME"));
  EXPECT_GT(trial.event_count(), 1u);
  // Synthetic root sums the suite, so runtime fractions are meaningful.
  const auto root = trial.main_event();
  EXPECT_EQ(trial.event(root).name, "main");
  double child_sum = 0.0;
  const auto time = trial.metric_id("TIME");
  for (const auto e : trial.children_of(root)) {
    child_sum += trial.mean_exclusive(e, time);
  }
  EXPECT_NEAR(trial.mean_inclusive(root, time), child_sum, 1e-6);
  EXPECT_TRUE(trial.metadata("bench.benchmarks"));
}

TEST(BenchJson, MinMergesRepetitionsAndSkipsAggregates) {
  const std::string doc = R"({
    "context": {"host_name": "ci", "num_cpus": 8},
    "benchmarks": [
      {"name": "BM_X", "run_type": "iteration", "iterations": 10,
       "real_time": 5.0, "cpu_time": 4.0, "time_unit": "us"},
      {"name": "BM_X", "run_type": "iteration", "iterations": 12,
       "real_time": 3.0, "cpu_time": 6.0, "time_unit": "us"},
      {"name": "BM_X_mean", "run_type": "aggregate", "iterations": 2,
       "real_time": 4.0, "cpu_time": 5.0, "time_unit": "us"},
      {"name": "BM_Y", "iterations": 7,
       "real_time": 2000.0, "cpu_time": 1000.0, "time_unit": "ns"}
    ]
  })";
  const auto trial = pk::io::trial_from_benchmark_json(doc, "t");
  const auto time = trial.metric_id("TIME");
  const auto cpu = trial.metric_id("CPU_TIME");
  const auto x = trial.event_id("BM_X");
  const auto y = trial.event_id("BM_Y");
  EXPECT_FALSE(trial.find_event("BM_X_mean"));
  // Min-merge is per column, max for iterations.
  EXPECT_DOUBLE_EQ(trial.mean_exclusive(x, time), 3.0);
  EXPECT_DOUBLE_EQ(trial.mean_exclusive(x, cpu), 4.0);
  EXPECT_DOUBLE_EQ(trial.calls(0, x).calls, 12.0);
  // ns scale to usec.
  EXPECT_DOUBLE_EQ(trial.mean_exclusive(y, time), 2.0);
  EXPECT_DOUBLE_EQ(trial.mean_exclusive(y, cpu), 1.0);
  EXPECT_EQ(trial.metadata("bench.host_name"), "ci");
  EXPECT_EQ(trial.metadata("bench.num_cpus"), "8");
}

TEST(BenchJson, RejectsMalformedDocuments) {
  EXPECT_THROW((void)pk::io::trial_from_benchmark_json("{}", "t"),
               pk::ParseError);
  EXPECT_THROW((void)pk::io::trial_from_benchmark_json("[1,2]", "t"),
               pk::ParseError);
  EXPECT_THROW((void)pk::io::trial_from_benchmark_json(
                   R"({"benchmarks": [{"real_time": 1.0}]})", "t"),
               pk::ParseError);
  EXPECT_THROW((void)pk::io::trial_from_benchmark_json(
                   R"({"benchmarks": [{"name": "x", "real_time": 1.0,
                       "time_unit": "fortnights"}]})",
                   "t"),
               pk::ParseError);
  EXPECT_THROW(
      (void)pk::io::trial_from_benchmark_files({}, "t"),
      pk::InvalidArgumentError);
}
