// Concurrency stress: many AnalysisSessions against ONE shared attached
// repository, mixing scripted analysis, direct rule evaluation
// (server::run_analysis) and differential analysis (server::run_diff).
// Run under TSan by the CI tsan job. The oracle is determinism: every
// worker's rendered output — diagnosis lines AND proof trees — must be
// byte-identical to the same work item run serially.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/msap/msap.hpp"
#include "io/bench_json.hpp"
#include "machine/machine.hpp"
#include "perfknow.hpp"

namespace pk = perfknow;
namespace fs = std::filesystem;

namespace {

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() /
           ("perfknow_concurrent_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    fs::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return dir_; }

 private:
  fs::path dir_;
  static inline int counter_ = 0;
};

fs::path write_bench_json(const fs::path& file, double parse_us) {
  std::ofstream os(file);
  os << "{\n  \"context\": {\"host_name\": \"ci\"},\n"
     << "  \"benchmarks\": [\n"
     << "    {\"name\": \"BM_Parse\", \"run_type\": \"iteration\","
     << " \"iterations\": 100, \"real_time\": " << parse_us
     << ", \"cpu_time\": " << parse_us << ", \"time_unit\": \"us\"},\n"
     << "    {\"name\": \"BM_Match\", \"run_type\": \"iteration\","
     << " \"iterations\": 100, \"real_time\": 45.0, \"cpu_time\": 45.0,"
     << " \"time_unit\": \"us\"}\n"
     << "  ]\n}\n";
  return file;
}

/// Builds the on-disk repository every worker shares: the MSAP schedule
/// study (imbalanced static run fires the load-balance rules) plus a
/// two-version benchmark history with a planted 2x regression.
void build_repository(const fs::path& repo_dir, const fs::path& scratch) {
  pk::perfdmf::Repository repo;
  for (const bool dynamic : {false, true}) {
    pk::machine::Machine m(pk::machine::MachineConfig::altix300());
    pk::apps::msap::MsapConfig cfg;
    cfg.threads = 16;
    cfg.schedule = dynamic ? pk::runtime::Schedule::dynamic(1)
                           : pk::runtime::Schedule::static_even();
    auto r = pk::apps::msap::run_msap(m, cfg);
    repo.put("MSAP", "schedules",
             std::make_shared<pk::profile::Trial>(std::move(r.trial)));
  }
  repo.put_version("perfknow", "bench",
                   std::make_shared<pk::profile::Trial>(
                       pk::io::trial_from_benchmark_files(
                           {write_bench_json(scratch / "v1.json", 120.0)},
                           "v1")));
  repo.put_version("perfknow", "bench",
                   std::make_shared<pk::profile::Trial>(
                       pk::io::trial_from_benchmark_files(
                           {write_bench_json(scratch / "v2.json", 240.0)},
                           "v2")));
  repo.save(repo_dir);
}

constexpr const char* kScript = R"(
ruleHarness = RuleHarness.useGlobalRules("openuh/OpenUHRules.drl")
trial = TrialMeanResult(Utilities.getTrial("MSAP", "schedules",
                                           "msap_static_16t"))
n = assertLoadBalanceFacts(trial)
print("facts: " + str(n))
print("fired: " + str(ruleHarness.processRules()))
)";

/// One worker's unit of work against the shared repository; returns the
/// full rendered output (script echo, diagnoses, proof trees) as one
/// string for byte comparison.
std::string run_item(pk::perfdmf::Repository& repo, int kind) {
  std::string out;
  switch (kind % 3) {
    case 0: {  // scripted analysis (the paper's Fig. 1 loop)
      pk::script::AnalysisSession session(pk::script::SessionOptions{&repo});
      session.run(kScript);
      for (const auto& line : session.output()) out += line + "\n";
      for (const auto& d : session.harness().diagnoses()) {
        out += d.to_string() + "\n";
      }
      break;
    }
    case 1: {  // direct analysis with full provenance
      pk::server::AnalyzeParams params;
      params.application = "MSAP";
      params.experiment = "schedules";
      params.trial = "msap_static_16t";
      pk::rules::RuleHarness harness;
      for (const auto& d :
           pk::server::run_analysis(repo, params, {}, harness)) {
        out += d.to_string() + "\n";
        if (d.provenance) out += pk::provenance::to_text(*d.provenance);
      }
      break;
    }
    default: {  // differential analysis across the version history
      pk::server::DiffParams params;
      params.application = "perfknow";
      params.experiment = "bench";
      params.base = "v1";
      params.current = "v2";
      pk::rules::RuleHarness harness;
      const auto outcome = pk::server::run_diff(repo, params, harness);
      out += outcome.regression ? "regression\n" : "clean\n";
      for (const auto& d : outcome.diagnoses) {
        out += d.to_string() + "\n";
        if (d.provenance) out += pk::provenance::to_text(*d.provenance);
      }
      break;
    }
  }
  return out;
}

}  // namespace

TEST(ConcurrentSessions, MixedWorkloadMatchesSerialByteForByte) {
  TempDir scratch;
  const fs::path repo_dir = scratch.path() / "repo";
  build_repository(repo_dir, scratch.path());

  constexpr int kWorkers = 8;
  constexpr int kRoundsPerWorker = 3;

  // Serial baseline: every (worker, round) item against its own
  // freshly attached repository, one at a time.
  std::vector<std::string> expected(kWorkers * kRoundsPerWorker);
  {
    auto repo = pk::perfdmf::Repository::attach(repo_dir);
    for (int w = 0; w < kWorkers; ++w) {
      for (int r = 0; r < kRoundsPerWorker; ++r) {
        expected[static_cast<std::size_t>(w * kRoundsPerWorker + r)] =
            run_item(repo, w + r);
      }
    }
  }
  ASSERT_FALSE(expected[0].empty());
  ASSERT_NE(expected[0].find("fired:"), std::string::npos);

  // Concurrent: ONE attached repository shared by all workers. A small
  // cache budget keeps the demand-load cache churning (load + evict
  // races are the interesting part under TSan).
  auto shared = pk::perfdmf::Repository::attach(repo_dir,
                                                /*cache_budget=*/1 << 16);
  std::vector<std::string> actual(kWorkers * kRoundsPerWorker);
  std::vector<std::string> errors(kWorkers);
  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      try {
        for (int r = 0; r < kRoundsPerWorker; ++r) {
          actual[static_cast<std::size_t>(w * kRoundsPerWorker + r)] =
              run_item(shared, w + r);
        }
      } catch (const std::exception& e) {
        errors[static_cast<std::size_t>(w)] = e.what();
      }
    });
  }
  for (auto& t : threads) t.join();

  for (int w = 0; w < kWorkers; ++w) {
    EXPECT_TRUE(errors[static_cast<std::size_t>(w)].empty())
        << "worker " << w << ": " << errors[static_cast<std::size_t>(w)];
  }
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << "item " << i;
  }
}

TEST(ConcurrentSessions, SessionsShareRepositoryButNeverWorkingMemory) {
  // The isolation contract the columnar store leans on: WorkingMemory is
  // per-session state (non-copyable, interior pointers, no locks), so
  // two sessions may share one Repository but must never share one
  // WorkingMemory — the TSan job holds the rest of the proof.
  TempDir scratch;
  const fs::path repo_dir = scratch.path() / "repo";
  build_repository(repo_dir, scratch.path());
  auto repo = pk::perfdmf::Repository::attach(repo_dir);

  pk::script::AnalysisSession a(pk::script::SessionOptions{&repo});
  pk::script::AnalysisSession b(pk::script::SessionOptions{&repo});
  EXPECT_EQ(&a.repository(), &b.repository());
  EXPECT_NE(&a.harness().memory(), &b.harness().memory());
  // Asserting into one session must be invisible to the other.
  const auto id = a.harness().memory().assert_fact(
      pk::rules::Fact("MeanEventFact").set("metric", "TIME"));
  EXPECT_TRUE(a.harness().memory().find(id));
  EXPECT_FALSE(b.harness().memory().find(id));
}

TEST(ConcurrentSessions, ServerSharesOneRepositoryAcrossUploadsAndReads) {
  // The daemon-side variant of the same property: concurrent uploads
  // (exclusive lock) interleaved with analyses (shared lock) on one
  // Server must neither race nor cross results between clients. Kept
  // here so the tsan job covers the server's locking too.
  TempDir scratch;
  pk::server::ServerOptions opt;
  opt.socket_path = fs::temp_directory_path() /
                    ("pkx_tsan_" + std::to_string(::getpid()) + ".sock");
  opt.workers = 4;
  pk::server::Server server(opt);

  const auto v1 = write_bench_json(scratch.path() / "v1.json", 120.0);
  const auto v2 = write_bench_json(scratch.path() / "v2.json", 240.0);
  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::vector<std::string> errors(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        const std::string app = "app" + std::to_string(c);
        pk::server::Client client(opt.socket_path);
        for (const char* round : {"v1", "v2"}) {
          const auto& file = round[1] == '1' ? v1 : v2;
          auto up = client.upload_file(app, "bench", file, round);
          if (!up.ok()) throw pk::Error("upload: " + up.error_message);
        }
        auto diff = client.call(
            "diff", "{\"application\":\"" + app +
                        "\",\"experiment\":\"bench\",\"base\":\"v1\","
                        "\"current\":\"v2\"}");
        if (!diff.ok()) throw pk::Error("diff: " + diff.error_message);
        if (diff.result.find("\"regression\":true") == std::string::npos) {
          throw pk::Error("missing regression: " + diff.result);
        }
      } catch (const std::exception& e) {
        errors[static_cast<std::size_t>(c)] = e.what();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(errors[static_cast<std::size_t>(c)].empty())
        << "client " << c << ": " << errors[static_cast<std::size_t>(c)];
  }
  server.stop();
}
