// Tests for the OpenMP collector-API event interface.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "machine/machine.hpp"
#include "runtime/omp.hpp"
#include "apps/genidlest/genidlest.hpp"
#include "rules/rulebases.hpp"
#include "runtime/omp_collector.hpp"

namespace pk = perfknow;
using pk::machine::Machine;
using pk::machine::MachineConfig;
using pk::runtime::OmpCollector;
using pk::runtime::OmpEvent;
using pk::runtime::OmpEventKind;
using pk::runtime::OmpTeam;
using pk::runtime::Schedule;

namespace {

Machine altix() { return Machine(MachineConfig::altix300()); }

}  // namespace

TEST(OmpCollectorEvents, ForkJoinPairAndPerThreadBarriers) {
  auto m = altix();
  OmpTeam team(m, 4);
  const auto result = team.parallel_for(
      100, Schedule::dynamic(1),
      [](std::uint64_t i, unsigned) { return 10 * (100 - i); });

  std::vector<OmpEvent> events;
  pk::runtime::emit_collector_events(
      team, "loop1", result,
      [&](const OmpEvent& ev) { events.push_back(ev); });

  int forks = 0;
  int joins = 0;
  int barrier_enters = 0;
  for (const auto& ev : events) {
    if (ev.kind == OmpEventKind::kFork) ++forks;
    if (ev.kind == OmpEventKind::kJoin) ++joins;
    if (ev.kind == OmpEventKind::kImplicitBarrierEnter) ++barrier_enters;
    EXPECT_EQ(ev.region, "loop1");
  }
  EXPECT_EQ(forks, 1);
  EXPECT_EQ(joins, 1);
  EXPECT_EQ(barrier_enters, 4);
  EXPECT_THROW(
      pk::runtime::emit_collector_events(team, "x", result, nullptr),
      pk::InvalidArgumentError);
}

TEST(OmpCollectorStats, AccumulatesAcrossInvocations) {
  auto m = altix();
  OmpTeam team(m, 8);
  OmpCollector collector(8);
  const auto hook = collector.hook();
  for (int iter = 0; iter < 3; ++iter) {
    const auto r = team.parallel_for(
        64, Schedule::static_even(),
        [](std::uint64_t, unsigned) { return 1000; });
    pk::runtime::emit_collector_events(team, "stencil", r, hook);
  }
  const auto& s = collector.region("stencil");
  EXPECT_EQ(s.invocations, 3u);
  // fork + join per invocation, plus one barrier-cost contribution each.
  EXPECT_GT(s.fork_join_cycles,
            3 * (team.costs().fork_cycles + team.costs().join_cycles));
  EXPECT_LT(s.fork_join_cycles,
            3 * (team.costs().fork_cycles + team.costs().join_cycles +
                 10000));
  // Uniform work: no barrier waits.
  for (const auto w : s.barrier_wait) EXPECT_EQ(w, 0u);
  EXPECT_THROW((void)collector.region("nope"), pk::NotFoundError);
}

TEST(OmpCollectorStats, FactsExposeOverheadShares) {
  auto m = altix();
  OmpTeam team(m, 8);
  OmpCollector collector(8);
  const auto hook = collector.hook();
  // Imbalanced triangular loop: barrier waits dominate the overhead pool.
  const auto r = team.parallel_for(
      200, Schedule::static_even(),
      [](std::uint64_t i, unsigned) { return 50 * (200 - i); });
  pk::runtime::emit_collector_events(team, "tri", r, hook);

  pk::rules::RuleHarness h;
  EXPECT_EQ(collector.assert_facts(h), 1u);
  const auto ids = h.memory().ids_of_type("OmpRegionFact");
  ASSERT_EQ(ids.size(), 1u);
  const auto f = h.memory().find(ids[0]);
  EXPECT_EQ(f.text("region"), "tri");
  EXPECT_DOUBLE_EQ(f.number("invocations"), 1.0);
  EXPECT_GT(f.number("barrierShare"), 0.5);
  EXPECT_GT(f.number("imbalanceCv"), 0.1);
  EXPECT_NEAR(f.number("barrierShare") + f.number("forkJoinShare") +
                  f.number("dispatchCycles") /
                      (f.number("dispatchCycles") +
                       f.number("forkJoinCycles") +
                       f.number("meanBarrierWait") * 8),
              1.0, 0.2);
}

TEST(OmpCollectorStats, DispatchRecordedForDynamicOnly) {
  auto m = altix();
  OmpTeam team(m, 4);
  OmpCollector collector(4);
  const auto hook = collector.hook();
  const auto st = team.parallel_for(
      100, Schedule::static_even(),
      [](std::uint64_t, unsigned) { return 100; });
  pk::runtime::emit_collector_events(team, "static_loop", st, hook);
  const auto dy = team.parallel_for(
      100, Schedule::dynamic(1),
      [](std::uint64_t, unsigned) { return 100; });
  pk::runtime::emit_collector_events(team, "dynamic_loop", dy, hook);

  EXPECT_GT(collector.region("dynamic_loop").dispatch_cycles,
            10 * collector.region("static_loop").dispatch_cycles);
}

TEST(OmpCollectorIntegration, GenidlestCarriesRegionStats) {
  pk::machine::Machine machine(MachineConfig::altix3600());
  auto cfg = perfknow::apps::genidlest::GenConfig::rib90();
  cfg.model = perfknow::apps::genidlest::Model::kOpenMP;
  cfg.optimized = true;
  cfg.nprocs = 16;
  const auto r = perfknow::apps::genidlest::run_genidlest(machine, cfg);
  ASSERT_NE(r.omp, nullptr);
  // One region per compute phase, with the right invocation counts.
  const auto& matx = r.omp->region("matxvec");
  EXPECT_EQ(matx.invocations, cfg.timesteps * cfg.solver_iters);
  EXPECT_EQ(r.omp->region("diff_coeff").invocations, cfg.timesteps);
  EXPECT_GT(matx.fork_join_cycles, 0u);

  // MPI runs carry no collector.
  pk::machine::Machine m2(MachineConfig::altix3600());
  cfg.model = perfknow::apps::genidlest::Model::kMpi;
  EXPECT_EQ(perfknow::apps::genidlest::run_genidlest(m2, cfg).omp,
            nullptr);
}

TEST(OmpCollectorRules, FineGrainedRegionTriggersForkJoinRule) {
  auto m = altix();
  OmpTeam team(m, 8);
  OmpCollector collector(8);
  const auto hook = collector.hook();
  // A tiny loop forked 100 times: fork/join swamps the overhead pool.
  for (int i = 0; i < 100; ++i) {
    const auto r = team.parallel_for(
        8, Schedule::static_even(),
        [](std::uint64_t, unsigned) { return 50; });
    pk::runtime::emit_collector_events(team, "tiny_region", r, hook);
  }
  pk::rules::RuleHarness h;
  pk::rules::builtin::use(h, pk::rules::builtin::openmp());
  collector.assert_facts(h);
  h.process_rules();
  const auto diags = h.diagnoses_for("ForkJoinOverhead");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].event, "tiny_region");
  EXPECT_NE(diags[0].recommendation.find("Hoist"), std::string::npos);
}

TEST(OmpCollectorRules, ImbalancedBarrierTriggersScheduleAdvice) {
  auto m = altix();
  OmpTeam team(m, 8);
  OmpCollector collector(8);
  const auto hook = collector.hook();
  const auto r = team.parallel_for(
      160, Schedule::static_even(),
      [](std::uint64_t i, unsigned) { return 1000 * (160 - i); });
  pk::runtime::emit_collector_events(team, "triangle", r, hook);

  pk::rules::RuleHarness h;
  pk::rules::builtin::use(h, pk::rules::builtin::openmp());
  collector.assert_facts(h);
  h.process_rules();
  const auto diags = h.diagnoses_for("BarrierImbalance");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].event, "triangle");
}
