// Tests for the DVS operating-point analysis.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "power/dvs.hpp"

namespace pk = perfknow;
using pk::hwcounters::Counter;
using pk::hwcounters::CounterVector;
using pk::power::dvs_sweep;
using pk::power::DvsModel;

namespace {

CounterVector vector_with_memory_fraction(double mem_fraction) {
  CounterVector c;
  c.set(Counter::kCpuCycles, 1e9);
  c.set(Counter::kL1dStallCycles, mem_fraction * 1e9);
  return c;
}

const std::vector<double> kFreqs = {0.75, 1.0, 1.25, 1.5};

}  // namespace

TEST(Dvs, ComputeBoundScalesLinearlyWithFrequency) {
  const auto sweep =
      dvs_sweep(vector_with_memory_fraction(0.0), 10.0, 100.0, kFreqs);
  ASSERT_EQ(sweep.size(), 4u);
  // At half... 0.75/1.5 = half frequency: double the time.
  EXPECT_NEAR(sweep[0].seconds, 20.0, 1e-9);
  EXPECT_NEAR(sweep[3].seconds, 10.0, 1e-9);
  // Power drops superlinearly (f * V^2).
  EXPECT_LT(sweep[0].watts, 0.75 * sweep[3].watts);
}

TEST(Dvs, MemoryBoundTimeBarelyMoves) {
  const auto sweep =
      dvs_sweep(vector_with_memory_fraction(0.9), 10.0, 100.0, kFreqs);
  // 90% of the time is DRAM latency: halving f adds only ~10% runtime.
  EXPECT_NEAR(sweep[0].seconds, 10.0 * (0.1 * 2.0 + 0.9), 1e-9);
  // So the lowest frequency is the energy winner.
  EXPECT_TRUE(sweep[0].is_min_energy);
  EXPECT_FALSE(sweep[3].is_min_energy);
}

TEST(Dvs, ComputeBoundPrefersRaceToIdleForEdp) {
  const auto sweep =
      dvs_sweep(vector_with_memory_fraction(0.0), 10.0, 100.0, kFreqs);
  // EDP weights delay: the nominal frequency wins for compute-bound code.
  EXPECT_TRUE(sweep[3].is_min_edp);
}

TEST(Dvs, ExactlyOneWinnerPerCriterion) {
  for (const double mf : {0.0, 0.3, 0.6, 0.95}) {
    const auto sweep =
        dvs_sweep(vector_with_memory_fraction(mf), 5.0, 80.0, kFreqs);
    int energy = 0;
    int edp = 0;
    for (const auto& p : sweep) {
      energy += p.is_min_energy ? 1 : 0;
      edp += p.is_min_edp ? 1 : 0;
    }
    EXPECT_EQ(energy, 1) << "memory fraction " << mf;
    EXPECT_EQ(edp, 1) << "memory fraction " << mf;
  }
}

TEST(Dvs, InvalidInputsRejected) {
  const auto c = vector_with_memory_fraction(0.5);
  EXPECT_THROW(dvs_sweep(c, 0.0, 100.0, kFreqs),
               pk::InvalidArgumentError);
  EXPECT_THROW(dvs_sweep(c, 1.0, 100.0, {}), pk::InvalidArgumentError);
  EXPECT_THROW(dvs_sweep(c, 1.0, 100.0, {1.0, -0.5}),
               pk::InvalidArgumentError);
}

TEST(Dvs, FactsRelativeToNominal) {
  const auto sweep =
      dvs_sweep(vector_with_memory_fraction(0.7), 10.0, 100.0, kFreqs);
  pk::rules::RuleHarness h;
  EXPECT_EQ(pk::power::assert_dvs_facts(h, sweep, 1.5), 4u);
  bool found_nominal = false;
  for (const auto id : h.memory().ids_of_type("DvsFact")) {
    const auto f = h.memory().find(id);
    if (f.number("frequencyGhz") == 1.5) {
      EXPECT_DOUBLE_EQ(f.number("relativeTime"), 1.0);
      EXPECT_DOUBLE_EQ(f.number("relativeJoules"), 1.0);
      found_nominal = true;
    } else {
      EXPECT_LT(f.number("relativeWatts"), 1.0);
    }
  }
  EXPECT_TRUE(found_nominal);
  EXPECT_THROW(pk::power::assert_dvs_facts(h, sweep, 2.0),
               pk::InvalidArgumentError);
}
