// Ingest-contract tests: every text front end must either parse a
// hostile input or throw ParseError/IoError with a sane location --
// never crash, hang, or leak. These are the deterministic companions to
// the fuzz_smoke runners; each case here is a class of input the
// mutation engine also explores randomly.
#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "fuzz/harness.hpp"
#include "fuzz/mutator.hpp"
#include "fuzz/targets.hpp"
#include "perfdmf/json_format.hpp"

namespace pk = perfknow;
using pk::fuzz::Frontend;
using pk::fuzz::check_contract;
using pk::fuzz::frontend_name;
using pk::fuzz::kAllFrontends;
using pk::fuzz::target;

namespace {

// Expects the contract to hold (parse cleanly or throw a well-formed
// ParseError/IoError) and reports the front end + reason on failure.
void expect_contract(Frontend fe, const std::string& input,
                     const std::string& label) {
  const auto reason = check_contract(target(fe), input);
  EXPECT_FALSE(reason.has_value())
      << frontend_name(fe) << " violated contract on " << label << ": "
      << *reason;
}

void expect_contract_all(const std::string& input, const std::string& label) {
  for (const auto fe : kAllFrontends) expect_contract(fe, input, label);
}

}  // namespace

TEST(FuzzContracts, EmptyInput) { expect_contract_all("", "empty input"); }

TEST(FuzzContracts, Utf8ByteOrderMark) {
  expect_contract_all("\xEF\xBB\xBF", "bare BOM");
  // A BOM before otherwise-valid input must not break parsing.
  EXPECT_FALSE(check_contract(target(Frontend::kScript),
                              "\xEF\xBB\xBFx = 1\n"));
  EXPECT_FALSE(check_contract(target(Frontend::kJson),
                              "\xEF\xBB\xBF{\"name\": \"t\"}"));
}

TEST(FuzzContracts, CarriageReturnLineFeed) {
  expect_contract_all("a,b,c\r\nd,e,f\r\n", "CRLF lines");
  // CRLF-terminated script with a whitespace-only line must parse: the
  // lexer once emitted a phantom INDENT for the "  \r" line.
  EXPECT_FALSE(check_contract(target(Frontend::kScript),
                              "x = 1\r\n  \r\ny = 2\r\n"));
}

TEST(FuzzContracts, OneMegabyteSingleLine) {
  std::string line(1u << 20, 'a');
  expect_contract_all(line, "1 MB single line");
  line.back() = '\n';
  expect_contract_all(line, "1 MB line with newline");
}

TEST(FuzzContracts, EmbeddedNulBytes) {
  const std::string nul("a\0b\0c", 5);
  expect_contract_all(nul, "embedded NUL bytes");
  expect_contract_all(std::string(16, '\0'), "all-NUL input");
}

TEST(FuzzContracts, DeeplyNestedJson) {
  // Far past the kMaxJsonDepth guard; must throw, not smash the stack.
  const std::string deep_arrays(100000, '[');
  expect_contract(Frontend::kJson, deep_arrays, "100k nested arrays");
  std::string deep_objects;
  for (int i = 0; i < 5000; ++i) deep_objects += "{\"a\":";
  expect_contract(Frontend::kJson, deep_objects, "5k nested objects");
  // The same guard class applies to expression parsers.
  expect_contract(Frontend::kRules,
                  "rule \"r\" when F( a == " + std::string(100000, '(') +
                      " ) then end",
                  "deep parens in rules expr");
  expect_contract(Frontend::kScript, "x = " + std::string(100000, '('),
                  "deep parens in script expr");
}

TEST(FuzzContracts, NumericOverflow) {
  expect_contract_all("1e999", "bare 1e999");
  expect_contract(Frontend::kJson, R"({"name":"t","threads":1e999})",
                  "1e999 thread count");
  expect_contract(Frontend::kCsv,
                  "event,thread,metric,value\nmain,1e999,TIME,1\n",
                  "1e999 CSV thread");
  expect_contract(Frontend::kRules,
                  "rule \"r\" salience 1e999 when F(a == 1) then end",
                  "1e999 salience");
  expect_contract(Frontend::kScript, "x = 1e999\n", "1e999 script literal");
  expect_contract(Frontend::kTau,
                  "1 templated_functions_MULTI_TIME\n# Name Calls ...\n"
                  "\"main\" 1e999 0 1\n",
                  "1e999 TAU field");
}

TEST(FuzzContracts, HugeAllocationRequestsAreRejected) {
  // Dimensions that pass numeric parsing but would allocate absurd
  // amounts of memory must be rejected up front, not attempted.
  expect_contract(Frontend::kJson, R"({"name":"t","threads":1e18})",
                  "1e18 thread count");
  expect_contract(Frontend::kJson, R"({"name":"t","threads":-1})",
                  "negative thread count");
  expect_contract(Frontend::kCsv,
                  "event,thread,metric,value\nmain,-1,TIME,1\n",
                  "negative CSV thread");
}

TEST(FuzzContracts, ParseErrorsCarryLocations) {
  try {
    (void)pk::perfdmf::from_json("{\"name\": nope}");
    FAIL() << "expected ParseError";
  } catch (const pk::ParseError& e) {
    EXPECT_GE(e.line(), 1);
    EXPECT_GE(e.column(), 1);
    EXPECT_FALSE(e.excerpt().empty());
  }
}

// --- mutation engine -------------------------------------------------

TEST(FuzzMutator, DeterministicForSameSeed) {
  const std::string seed_input = "rule \"r\" when F(a == 1) then end";
  pk::fuzz::Mutator a(42), b(42), c(43);
  std::string ma = seed_input, mb = seed_input, mc = seed_input;
  bool diverged = false;
  for (int i = 0; i < 50; ++i) {
    ma = a.mutate(ma);
    mb = b.mutate(mb);
    mc = c.mutate(mc);
    EXPECT_EQ(ma, mb) << "same seed diverged at step " << i;
    diverged = diverged || (ma != mc);
  }
  EXPECT_TRUE(diverged) << "different seeds never diverged";
}

TEST(FuzzMutator, RespectsSizeCap) {
  pk::fuzz::Mutator m(7);
  m.set_max_size(512);
  std::string input(256, 'x');
  for (int i = 0; i < 200; ++i) {
    input = m.mutate(input);
    ASSERT_LE(input.size(), 512u);
  }
}

TEST(FuzzMutator, MutatedInputsHoldContractEverywhere) {
  // A miniature in-process fuzz run: mutate each front end's grammar
  // dictionary seed and check the contract on every derivative.
  for (const auto fe : kAllFrontends) {
    pk::fuzz::Mutator m(11, pk::fuzz::dictionary(fe));
    std::string input = "x = 1\n";
    for (int i = 0; i < 100; ++i) {
      input = m.mutate(input);
      expect_contract(fe, input, "mutation chain step");
    }
  }
}
