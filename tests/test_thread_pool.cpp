// Tests for the common::ThreadPool parallel_for primitive.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "analysis/operations.hpp"
#include "common/thread_pool.hpp"
#include "profile/profile.hpp"

namespace pk = perfknow;

TEST(ThreadPool, ZeroTasksReturnsImmediately) {
  pk::ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, NoWorkersRunsInlineInOrder) {
  pk::ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0u);
  std::vector<std::size_t> seen;
  pool.parallel_for(8, [&](std::size_t i) { seen.push_back(i); });
  std::vector<std::size_t> want(8);
  std::iota(want.begin(), want.end(), 0u);
  EXPECT_EQ(seen, want);  // inline fallback preserves index order
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  pk::ThreadPool pool(4);
  constexpr std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, OversubscriptionManyMoreTasksThanThreads) {
  pk::ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  constexpr std::size_t n = 50000;
  pool.parallel_for(n, [&](std::size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
  // The pool must be reusable after a big run.
  std::atomic<std::size_t> count{0};
  pool.parallel_for(10, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10u);
}

TEST(ThreadPool, PropagatesBodyException) {
  pk::ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(1000,
                        [](std::size_t i) {
                          if (i == 537) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Still usable afterwards.
  std::atomic<int> ok{0};
  pool.parallel_for(16, [&](std::size_t) { ++ok; });
  EXPECT_EQ(ok.load(), 16);
}

TEST(ThreadPool, RethrowsLowestChunkExceptionDeterministically) {
  pk::ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    try {
      pool.parallel_for(1024, [](std::size_t i) {
        if (i == 3) throw std::runtime_error("low");
        if (i >= 900) throw std::logic_error("high");
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "low");  // lowest chunk wins every time
    }
  }
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  pk::ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 64u);
}

TEST(ThreadPool, GrainRunsSmallRangesInline) {
  pk::ThreadPool pool(2);
  std::vector<std::size_t> seen;  // unsynchronized on purpose: must be inline
  pool.parallel_for(4, [&](std::size_t i) { seen.push_back(i); },
                    /*grain=*/8);
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(ThreadPool, SharedPoolExists) {
  auto& pool = pk::ThreadPool::shared();
  std::atomic<int> n{0};
  pool.parallel_for(32, [&](std::size_t) { ++n; });
  EXPECT_EQ(n.load(), 32);
}

TEST(ThreadPool, ParallelAnalysisBitIdenticalToSerial) {
  // The parallelized analysis primitives must produce bit-for-bit the
  // values the original serial loops produced: each index computes the
  // same thing in the same order, only on a different thread. Values are
  // chosen non-representable (1/3 steps) so any reassociation would show.
  pk::profile::Trial trial("pool-identity");
  trial.set_thread_count(7);
  const auto ma = trial.add_metric("A");
  const auto mb = trial.add_metric("B");
  for (int e = 0; e < 11; ++e) {
    trial.add_event("ev" + std::to_string(e));
  }
  for (std::size_t t = 0; t < 7; ++t) {
    for (pk::profile::EventId e = 0; e < 11; ++e) {
      trial.set_inclusive(t, e, ma, double(t * 11 + e) / 3.0);
      trial.set_inclusive(t, e, mb, double(t + e) / 7.0 + 0.1);
      trial.set_exclusive(t, e, ma, double(t * 3 + e) / 9.0);
      trial.set_exclusive(t, e, mb, double(t) / 11.0 + 1.0);
    }
  }
  const auto d = pk::analysis::derive_metric(trial, "A", "B",
                                             pk::analysis::DeriveOp::kDivide);
  for (std::size_t t = 0; t < 7; ++t) {
    for (pk::profile::EventId e = 0; e < 11; ++e) {
      EXPECT_EQ(trial.inclusive(t, e, d),
                trial.inclusive(t, e, ma) / trial.inclusive(t, e, mb));
    }
  }
  const auto stats = pk::analysis::basic_statistics(trial, "A",
                                                    /*exclusive=*/false);
  ASSERT_EQ(stats.size(), 11u);
  for (pk::profile::EventId e = 0; e < 11; ++e) {
    // The serial oracle: the single-event primitive computed inline.
    const auto one =
        pk::analysis::event_statistics(trial, e, "A", /*exclusive=*/false);
    EXPECT_EQ(stats[e].mean, one.mean);
    EXPECT_EQ(stats[e].stddev, one.stddev);
    EXPECT_EQ(stats[e].total, one.total);
  }
  // Strided series views read the same cells the copying accessors copy.
  for (pk::profile::EventId e = 0; e < 11; ++e) {
    const auto view = trial.inclusive_series(e, ma);
    const auto copy = trial.inclusive_across_threads(e, ma);
    ASSERT_EQ(view.size(), copy.size());
    for (std::size_t t = 0; t < copy.size(); ++t) {
      EXPECT_EQ(view[t], copy[t]);
    }
  }
}
