// Tests for the ccNUMA machine model: topology, page table, latencies.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "machine/machine.hpp"

namespace pk = perfknow;
using pk::machine::Machine;
using pk::machine::MachineConfig;
using pk::machine::NumaTopology;

TEST(MachineConfig, Presets) {
  const auto a300 = MachineConfig::altix300();
  EXPECT_EQ(a300.num_nodes, 8u);
  EXPECT_EQ(a300.num_cpus(), 16u);
  const auto a3600 = MachineConfig::altix3600();
  EXPECT_EQ(a3600.num_cpus(), 512u);
}

TEST(Topology, NodeOfCpu) {
  const NumaTopology topo(MachineConfig::altix300());
  EXPECT_EQ(topo.node_of_cpu(0), 0u);
  EXPECT_EQ(topo.node_of_cpu(1), 0u);
  EXPECT_EQ(topo.node_of_cpu(2), 1u);
  EXPECT_EQ(topo.node_of_cpu(15), 7u);
  EXPECT_THROW((void)topo.node_of_cpu(16), pk::InvalidArgumentError);
}

TEST(Topology, HopsAreSymmetricAndMonotonic) {
  const NumaTopology topo(MachineConfig::altix3600());
  EXPECT_EQ(topo.hops(3, 3), 0u);
  EXPECT_EQ(topo.hops(0, 1), 1u);  // same C-brick
  EXPECT_GE(topo.hops(0, 2), 2u);  // cross-brick
  for (std::uint32_t a : {0u, 5u, 100u}) {
    for (std::uint32_t b : {1u, 60u, 255u}) {
      EXPECT_EQ(topo.hops(a, b), topo.hops(b, a));
    }
  }
  // Farther bricks cost at least as much as near ones.
  EXPECT_GE(topo.hops(0, 255), topo.hops(0, 2));
}

TEST(Topology, MemoryLatencyGrowsWithDistance) {
  const auto cfg = MachineConfig::altix300();
  const NumaTopology topo(cfg);
  const auto local = topo.memory_latency(0, 0);
  const auto brick = topo.memory_latency(0, 1);
  const auto far = topo.memory_latency(0, 7);
  EXPECT_EQ(local, cfg.local_memory_latency);
  EXPECT_GT(brick, local);
  EXPECT_GT(far, brick);
  EXPECT_EQ(topo.worst_case_remote_latency(), far);
}

TEST(PageTable, FirstTouchPlacesOnToucherNode) {
  Machine m(MachineConfig::altix300());
  const auto addr = m.address_space().allocate(64 * 1024);
  // CPU 4 lives on node 2.
  const std::size_t placed = m.pages().first_touch(addr, 64 * 1024, 4);
  EXPECT_GE(placed, 4u);  // 64KB / 16KB pages
  EXPECT_EQ(m.pages().node_of(addr), 2u);
  EXPECT_DOUBLE_EQ(m.pages().local_fraction(addr, 64 * 1024, 2), 1.0);
  EXPECT_DOUBLE_EQ(m.pages().local_fraction(addr, 64 * 1024, 0), 0.0);
}

TEST(PageTable, FirstTouchDoesNotMovePlacedPages) {
  Machine m(MachineConfig::altix300());
  const auto addr = m.address_space().allocate(16 * 1024);
  m.pages().first_touch(addr, 16 * 1024, 0);   // node 0
  const auto placed = m.pages().first_touch(addr, 16 * 1024, 14);  // node 7
  EXPECT_EQ(placed, 0u);
  EXPECT_EQ(m.pages().node_of(addr), 0u);
}

TEST(PageTable, ExplicitPlacementOverrides) {
  Machine m(MachineConfig::altix300());
  const auto addr = m.address_space().allocate(32 * 1024);
  m.pages().first_touch(addr, 32 * 1024, 0);
  m.pages().place(addr, 32 * 1024, 5);
  EXPECT_EQ(m.pages().node_of(addr), 5u);
  EXPECT_DOUBLE_EQ(m.pages().local_fraction(addr, 32 * 1024, 5), 1.0);
}

TEST(PageTable, PartialLocality) {
  Machine m(MachineConfig::altix300());
  const auto page = m.config().page_bytes;
  const auto addr = m.address_space().allocate(4 * page, page);
  m.pages().place(addr, 2 * page, 1);
  m.pages().place(addr + 2 * page, 2 * page, 3);
  EXPECT_DOUBLE_EQ(m.pages().local_fraction(addr, 4 * page, 1), 0.5);
  EXPECT_DOUBLE_EQ(m.pages().local_fraction(addr, 4 * page, 3), 0.5);
}

TEST(PageTable, ZeroBytesAreHarmless) {
  Machine m(MachineConfig::altix300());
  EXPECT_EQ(m.pages().first_touch(4096, 0, 0), 0u);
  EXPECT_DOUBLE_EQ(m.pages().local_fraction(4096, 0, 0), 1.0);
}

TEST(AddressSpace, AllocationsDoNotOverlapAndAlign) {
  Machine m(MachineConfig::altix300());
  const auto a = m.address_space().allocate(100, 64);
  const auto b = m.address_space().allocate(100, 64);
  EXPECT_GE(b, a + 100);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_THROW((void)m.address_space().allocate(8, 3), pk::InvalidArgumentError);
}

TEST(Machine, CycleConversions) {
  Machine m(MachineConfig::altix300());  // 1.5 GHz
  EXPECT_DOUBLE_EQ(m.seconds(1500000000ULL), 1.0);
  EXPECT_DOUBLE_EQ(m.usec(1500ULL), 1.0);
}
