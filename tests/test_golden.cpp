// Golden-file tests: byte-pinned output formats that downstream tooling
// parses — the telemetry Chrome-trace exporter and the provenance
// explanation renderers. Regenerate with PERFKNOW_REGEN_GOLDEN=1 after
// an intentional format change and review the diff like code.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <regex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "perfdmf/repository.hpp"
#include "profile/profile.hpp"
#include "provenance/explanation.hpp"
#include "rules/engine.hpp"
#include "rules/parser.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "tools/pkx_cli.hpp"

namespace pk = perfknow;
namespace tel = pk::telemetry;
namespace prov = pk::provenance;

namespace {

std::filesystem::path golden_dir() {
  return std::filesystem::path(PERFKNOW_SOURCE_DIR) / "tests" / "golden";
}

void compare_golden(const std::string& name, const std::string& actual) {
  const auto path = golden_dir() / name;
  if (std::getenv("PERFKNOW_REGEN_GOLDEN") != nullptr) {
    std::filesystem::create_directories(golden_dir());
    std::ofstream os(path);
    os << actual;
    return;
  }
  std::ifstream is(path);
  ASSERT_TRUE(is.is_open())
      << "missing golden file " << path
      << " — run this test once with PERFKNOW_REGEN_GOLDEN=1";
  std::ostringstream ss;
  ss << is.rdbuf();
  EXPECT_EQ(actual, ss.str()) << "output differs from " << path;
}

// Blanks the run-dependent parts of a Chrome trace so a live capture can
// be compared against a golden: timestamps, durations, and thread ids
// vary per run; names, order, and structure must not.
std::string normalize_trace(const std::string& trace) {
  std::string out = std::regex_replace(
      trace, std::regex("\"(ts|dur)\":-?[0-9.]+"), "\"$1\":<NUM>");
  return std::regex_replace(out, std::regex("\"tid\":[0-9]+"),
                            "\"tid\":<TID>");
}

}  // namespace

TEST(Golden, ChromeTraceFromHandBuiltSnapshot) {
  // A fully synthetic snapshot: every field chosen by hand, so the
  // exporter's output is compared byte-for-byte with no normalizing.
  tel::Snapshot snap;
  snap.names = {"repo.load", "rules.match"};
  snap.thread_count = 2;
  snap.spans = {
      {0, 0, 1000, 5000, 3500},
      {1, 1, 2500, 1500, 1500},
      {1, 0, 6000, 250, 250},
  };
  snap.counters = {{"rules.firings", 42}, {"io.bytes", 123456}};

  std::ostringstream os;
  tel::write_chrome_trace(snap, os);
  compare_golden("chrome_trace_synthetic.json", os.str());
}

TEST(Golden, ChromeTraceFromLiveCaptureNormalized) {
  tel::reset();
  tel::set_enabled(true);
  {
    tel::ScopedSpan outer(std::string_view("golden.outer"));
    {
      tel::ScopedSpan inner(std::string_view("golden.inner"));
    }
    tel::counter("golden.counter").add(3);
  }
  tel::set_enabled(false);
  const auto snap = tel::snapshot();

  std::ostringstream os;
  tel::write_chrome_trace(snap, os);
  compare_golden("chrome_trace_live.json", normalize_trace(os.str()));
  tel::reset();
}

namespace {

// A two-rule chain with hand-picked values so every rendered number is
// deterministic: Seed(v=2) -> Derived(doubled=4) -> diagnosis.
std::string golden_explanation_harness(pk::rules::RuleHarness& harness) {
  pk::rules::add_rules(harness, R"RULES(
rule "seed to derived" salience 10
when s : Seed( v > 1, n : name )
then
  print("deriving from " + n)
  assert(Derived(name = n, doubled = s.v * 2))
end
rule "derived to diagnosis"
when d : Derived( doubled > 3, n : name )
then
  print("diagnosing " + n)
  diagnose(problem = "Chained", event = n, metric = "M",
           severity = d.doubled / 8,
           recommendation = "split " + n)
end
)RULES",
                      "golden.rules");
  {
    const pk::rules::ProvenanceSource source(
        harness, "assert_golden_facts(trial='t0', metric='M')",
        {"\"M\" = derive(/) of [A, B] on trial 't0'",
         "\"A\": raw column of trial 't0'",
         "\"B\": raw column of trial 't0'"});
    harness.assert_fact(
        pk::rules::Fact("Seed").set("v", 2.0).set("name", "n1"));
  }
  harness.process_rules();
  return harness.diagnoses().empty() ? ""
                                     : harness.diagnoses()[0].explain();
}

}  // namespace

TEST(Golden, ExplanationTextProofTree) {
  pk::rules::RuleHarness harness;
  harness.set_provenance(prov::ProvenanceMode::kFull);
  const std::string text = golden_explanation_harness(harness);
  ASSERT_FALSE(text.empty());
  compare_golden("explanation_chain.txt", text);
}

TEST(Golden, ExplanationTextUnderRulesMode) {
  // kRules drops field snapshots and lineage but keeps the DAG; pin that
  // shape too so the mode split stays visible.
  pk::rules::RuleHarness harness;
  harness.set_provenance(prov::ProvenanceMode::kRules);
  const std::string text = golden_explanation_harness(harness);
  ASSERT_FALSE(text.empty());
  compare_golden("explanation_chain_rules_mode.txt", text);
}

TEST(Golden, ExplanationJsonAndDot) {
  pk::rules::RuleHarness harness;
  harness.set_provenance(prov::ProvenanceMode::kFull);
  ASSERT_FALSE(golden_explanation_harness(harness).empty());
  const auto& e = *harness.diagnoses()[0].provenance;
  compare_golden("explanation_chain.json", prov::to_json(e));
  compare_golden("explanation_chain.dot", prov::to_dot(e));

  // The golden JSON parses back to the golden text: the two formats pin
  // the same tree.
  const auto parsed = prov::explanations_from_json(prov::to_json(e));
  ASSERT_EQ(parsed.size(), 1u);
  compare_golden("explanation_chain.txt", prov::to_text(parsed[0]));
}

namespace {

/// A deterministic two-version repository for the pkx diff goldens: one
/// hot event regresses 2.6x, everything else is flat.
void write_diff_repo(const std::filesystem::path& dir) {
  pk::perfdmf::Repository repo;
  for (const bool current : {false, true}) {
    auto t = std::make_shared<pk::profile::Trial>(current ? "v2" : "v1");
    t->set_thread_count(1);
    const auto time = t->add_metric("TIME", "usec");
    const auto root = t->add_event("main");
    const std::vector<std::pair<std::string, double>> events = {
        {"parse", current ? 1300.0 : 500.0},
        {"match", 250.0},
        {"emit", 40.0},
    };
    double total = 0.0;
    for (const auto& [name, usec] : events) {
      const auto e = t->add_event(name, root);
      t->set_inclusive(0, e, time, usec);
      t->set_exclusive(0, e, time, usec);
      t->set_calls(0, e, 1, 0);
      total += usec;
    }
    t->set_inclusive(0, root, time, total);
    t->set_calls(0, root, 1, 3);
    repo.put_version("app", "exp", std::move(t));
  }
  repo.save(dir);
}

}  // namespace

TEST(Golden, PkxDiffTextAndExplanationJson) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("perfknow_golden_diff_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  write_diff_repo(dir);

  const auto json_file = dir / "explanations.json";
  std::ostringstream out;
  std::ostringstream err;
  const int code = pk::tools::pkx_main(
      {dir.string(), "diff", "app", "exp", "v1", "v2", "--json",
       json_file.string()},
      out, err);
  EXPECT_EQ(code, 3) << err.str();

  // The "wrote <file>" trailer carries the temp path; pin what precedes.
  std::string text = out.str();
  const auto wrote = text.rfind("\nwrote ");
  ASSERT_NE(wrote, std::string::npos);
  text.resize(wrote + 1);
  compare_golden("pkx_diff_regression.txt", text);

  std::ifstream is(json_file);
  ASSERT_TRUE(is.is_open());
  std::ostringstream ss;
  ss << is.rdbuf();
  compare_golden("pkx_diff_explanations.json", ss.str());
  // And the exported file is a valid explanation document.
  EXPECT_FALSE(prov::explanations_from_json(ss.str()).empty());

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(Golden, PkxClientStatsTable) {
  const std::string stats =
      "{\"connections\":3,\"requests\":128,\"executed\":120,"
      "\"rejected_overload\":5,\"rejected_budget\":1,\"uploads\":14,"
      "\"queue_depth\":2}";
  compare_golden("pkx_client_stats.txt",
                 pk::tools::render_stats_table(stats));
}

TEST(Golden, PkxClientWatchTable) {
  // Two event lines as the daemon frames them, rendered through the
  // same path `pkx client watch` uses.
  const std::string ev1 =
      "{\"api\":\"perfknow.api/1\",\"id\":\"1\",\"event\":\"stats\","
      "\"data\":{\"seq\":1,\"interval\":1,\"stats\":{\"connections\":1,"
      "\"requests\":10,\"executed\":9,\"rejected_overload\":0,"
      "\"rejected_budget\":0,\"uploads\":2,\"queue_depth\":1},"
      "\"delta\":{\"requests\":10,\"executed\":9,\"rejected_overload\":0,"
      "\"rejected_budget\":0,\"uploads\":2}}}";
  const std::string ev2 =
      "{\"api\":\"perfknow.api/1\",\"id\":\"1\",\"event\":\"stats\","
      "\"data\":{\"seq\":2,\"interval\":1,\"stats\":{\"connections\":1,"
      "\"requests\":14,\"executed\":12,\"rejected_overload\":2,"
      "\"rejected_budget\":1,\"uploads\":2,\"queue_depth\":0},"
      "\"delta\":{\"requests\":4,\"executed\":3,\"rejected_overload\":2,"
      "\"rejected_budget\":1,\"uploads\":0}}}";
  compare_golden("pkx_client_watch.txt",
                 pk::tools::render_watch_header() +
                     pk::tools::render_watch_row(ev1) +
                     pk::tools::render_watch_row(ev2));
}
