// Tests for the PKB binary columnar snapshot format and its mmap-backed
// view: text/binary differential round-trips over the shipped corpora,
// structural corruption diagnostics, and PkbView promotion semantics.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "io/format.hpp"
#include "perfdmf/csv_format.hpp"
#include "perfdmf/json_format.hpp"
#include "perfdmf/pkb_format.hpp"
#include "perfdmf/pkb_view.hpp"
#include "perfdmf/snapshot.hpp"
#include "perfdmf/tau_format.hpp"

namespace pk = perfknow;
namespace fs = std::filesystem;
using pk::perfdmf::PkbView;
using pk::profile::Trial;
using pk::profile::TrialView;

namespace {

Trial make_trial(const std::string& name, std::size_t threads = 3) {
  Trial t(name);
  const auto time = t.add_metric("TIME", "usec");
  const auto cyc = t.add_metric("CPU_CYCLES", "count", true);
  const auto main = t.add_event("main", pk::profile::kNoEvent, "PROC");
  const auto loop = t.add_event("main => loop", main, "LOOP");
  const auto mult = t.add_event("main => loop => mult", loop, "LOOP");
  t.set_thread_count(threads);
  for (std::size_t th = 0; th < threads; ++th) {
    for (pk::profile::EventId e : {main, loop, mult}) {
      t.set_inclusive(th, e, time, 1000.0 / (e + 1) + 0.25 * th);
      t.set_exclusive(th, e, time, 100.0 / (e + 1) + 0.25 * th);
      t.set_inclusive(th, e, cyc, 1.5e9 + e);
      t.set_exclusive(th, e, cyc, 0.5e9 + e);
      t.set_calls(th, e, 1.0 + e, 2.0 * e);
    }
  }
  t.set_metadata("hostname", "altix");
  t.set_metadata("schedule", "dynamic,1");
  return t;
}

// Exact structural + value equality between two trial surfaces.
void expect_trials_equal(const TrialView& a, const TrialView& b) {
  EXPECT_EQ(a.name(), b.name());
  ASSERT_EQ(a.thread_count(), b.thread_count());
  ASSERT_EQ(a.event_count(), b.event_count());
  ASSERT_EQ(a.metric_count(), b.metric_count());
  EXPECT_EQ(a.all_metadata(), b.all_metadata());
  for (pk::profile::MetricId m = 0; m < a.metric_count(); ++m) {
    EXPECT_EQ(a.metric(m).name, b.metric(m).name);
    EXPECT_EQ(a.metric(m).units, b.metric(m).units);
    EXPECT_EQ(a.metric(m).derived, b.metric(m).derived);
  }
  for (pk::profile::EventId e = 0; e < a.event_count(); ++e) {
    EXPECT_EQ(a.event(e).name, b.event(e).name);
    EXPECT_EQ(a.event(e).parent, b.event(e).parent);
    EXPECT_EQ(a.event(e).group, b.event(e).group);
  }
  for (std::size_t th = 0; th < a.thread_count(); ++th) {
    for (pk::profile::EventId e = 0; e < a.event_count(); ++e) {
      for (pk::profile::MetricId m = 0; m < a.metric_count(); ++m) {
        // Bit-exact, not approximate: the formats both promise exact
        // round-trips of the value cube.
        EXPECT_EQ(a.inclusive(th, e, m), b.inclusive(th, e, m));
        EXPECT_EQ(a.exclusive(th, e, m), b.exclusive(th, e, m));
      }
      EXPECT_EQ(a.calls(th, e).calls, b.calls(th, e).calls);
      EXPECT_EQ(a.calls(th, e).subcalls, b.calls(th, e).subcalls);
    }
  }
}

std::string corpus_dir(const char* frontend) {
  return std::string(PERFKNOW_SOURCE_DIR) + "/fuzz/corpus/" + frontend;
}

std::string read_file(const fs::path& p) {
  std::ifstream is(p, std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  return std::move(ss).str();
}

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() /
           ("perfknow_pkb_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    fs::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return dir_; }

 private:
  fs::path dir_;
  static inline int counter_ = 0;
};

}  // namespace

// ---- round trips -------------------------------------------------------

TEST(PkbFormat, RoundTripIsExact) {
  const Trial t = make_trial("round trip");
  const std::string bytes = pk::perfdmf::to_pkb(t);
  const Trial back = pk::perfdmf::parse_pkb(bytes);
  expect_trials_equal(t, back);
}

TEST(PkbFormat, RoundTripEmptyAndZeroThreadTrials) {
  for (auto make : {+[] { return Trial("empty"); },
                    +[] {
                      Trial t("schema only");
                      t.add_metric("TIME", "usec");
                      t.add_event("main");
                      return t;
                    }}) {
    const Trial t = make();
    const Trial back = pk::perfdmf::parse_pkb(pk::perfdmf::to_pkb(t));
    expect_trials_equal(t, back);
  }
}

// The differential test the format ships with: every committed text
// corpus input that parses becomes Trial -> PKB -> PkbView -> Trial and
// must survive byte-identically.
TEST(PkbFormat, DifferentialRoundTripOverShippedCorpora) {
  std::vector<Trial> trials;
  for (const auto& entry : fs::directory_iterator(corpus_dir("tau"))) {
    try {
      std::istringstream is(read_file(entry.path()));
      trials.push_back(pk::perfdmf::read_tau_stream(is, "corpus"));
    } catch (const pk::Error&) {
      // Rejection corpus entries exercise the parsers, not the formats.
    }
  }
  for (const auto& entry : fs::directory_iterator(corpus_dir("csv"))) {
    try {
      std::istringstream is(read_file(entry.path()));
      trials.push_back(pk::perfdmf::read_csv_long(is));
    } catch (const pk::Error&) {
    }
  }
  for (const auto& entry : fs::directory_iterator(corpus_dir("json"))) {
    try {
      trials.push_back(pk::perfdmf::from_json(read_file(entry.path())));
    } catch (const pk::Error&) {
    }
  }
  trials.push_back(make_trial("synthetic", 8));
  ASSERT_GT(trials.size(), 3u);

  for (const Trial& t : trials) {
    const std::string bytes = pk::perfdmf::to_pkb(t);
    // Materializing parse.
    expect_trials_equal(t, pk::perfdmf::parse_pkb(bytes));
    // Lazy view, then promotion.
    PkbView view = PkbView::from_bytes(bytes, PkbView::Verify::kFull);
    expect_trials_equal(t, view);
    expect_trials_equal(t, view.promote());
  }
}

TEST(PkbFormat, CommittedCorpusSeedsParse) {
  std::size_t parsed = 0;
  for (const auto& entry : fs::directory_iterator(corpus_dir("pkb"))) {
    const Trial t = pk::perfdmf::parse_pkb(read_file(entry.path()));
    const Trial again = pk::perfdmf::parse_pkb(pk::perfdmf::to_pkb(t));
    expect_trials_equal(t, again);
    ++parsed;
  }
  EXPECT_GE(parsed, 3u);
}

// ---- lazy view ---------------------------------------------------------

TEST(PkbView, ServesSeriesWithoutMaterializing) {
  const Trial t = make_trial("lazy", 5);
  PkbView view = PkbView::from_bytes(pk::perfdmf::to_pkb(t));
  EXPECT_FALSE(view.promoted());

  const auto m = view.metric_id("TIME");
  const auto e = view.event_id("main => loop");
  const auto got = view.inclusive_series(e, m).to_vector();
  const auto want = t.inclusive_series(e, m).to_vector();
  EXPECT_EQ(got, want);
  EXPECT_EQ(view.exclusive_series(e, m).to_vector(),
            t.exclusive_series(e, m).to_vector());
  // Derived helpers work off the primitives.
  EXPECT_EQ(view.mean_inclusive(e, m), t.mean_inclusive(e, m));
  EXPECT_EQ(view.main_event(), t.main_event());
  EXPECT_EQ(view.children_of(view.event_id("main")).size(), 1u);
  // Reads never promoted.
  EXPECT_FALSE(view.promoted());
}

TEST(PkbView, OpenFromFileAndBoundsChecks) {
  TempDir dir;
  const Trial t = make_trial("on disk");
  const fs::path file = dir.path() / "trial.pkb";
  pk::io::save_trial(t, file);

  PkbView view = PkbView::open(file);
  EXPECT_EQ(view.path(), file);
  EXPECT_EQ(view.byte_size(), fs::file_size(file));
  expect_trials_equal(t, view);
  EXPECT_THROW((void)view.inclusive(99, 0, 0), pk::InvalidArgumentError);
  EXPECT_THROW((void)view.inclusive(0, 99, 0), pk::InvalidArgumentError);
  EXPECT_THROW((void)view.inclusive(0, 0, 99), pk::InvalidArgumentError);
  EXPECT_THROW((void)view.event(99), pk::InvalidArgumentError);
}

TEST(PkbView, PromotionMaterializesOnceAndReflectsWrites) {
  const Trial t = make_trial("promote");
  PkbView view = PkbView::from_bytes(pk::perfdmf::to_pkb(t));
  Trial& mut = view.promote();
  EXPECT_TRUE(view.promoted());
  EXPECT_EQ(&mut, &view.promote());  // same Trial on every call

  // Writes through the promoted trial are visible through the view.
  mut.set_inclusive(0, 0, 0, 4242.0);
  EXPECT_EQ(view.inclusive(0, 0, 0), 4242.0);
  const auto m = mut.add_metric("NEW_METRIC");
  EXPECT_EQ(view.metric_count(), t.metric_count() + 1);
  EXPECT_TRUE(view.find_metric("NEW_METRIC").has_value());
  (void)m;
}

TEST(PkbView, SharedPromotionKeepsViewAlive) {
  const Trial t = make_trial("aliased");
  auto view = std::make_shared<PkbView>(
      PkbView::from_bytes(pk::perfdmf::to_pkb(t)));
  std::shared_ptr<Trial> trial = PkbView::promote_shared(std::move(view));
  ASSERT_TRUE(trial);
  expect_trials_equal(t, *trial);
}

// ---- corruption --------------------------------------------------------

TEST(PkbCorruption, EveryTruncationIsAParseError) {
  const std::string bytes = pk::perfdmf::to_pkb(make_trial("trunc"));
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{3}, std::size_t{4}, std::size_t{8},
        std::size_t{12}, std::size_t{24}, bytes.size() / 2,
        bytes.size() - 24, bytes.size() - 8, bytes.size() - 1}) {
    EXPECT_THROW((void)pk::perfdmf::parse_pkb(bytes.substr(0, n)),
                 pk::ParseError)
        << "prefix of " << n << " bytes";
  }
  // ... and trailing garbage after the end marker is rejected too.
  EXPECT_THROW((void)pk::perfdmf::parse_pkb(bytes + "x"), pk::ParseError);
}

TEST(PkbCorruption, BadMagicAndVersion) {
  std::string bytes = pk::perfdmf::to_pkb(make_trial("magic"));
  std::string flipped = bytes;
  flipped[0] = 'Q';
  EXPECT_THROW((void)pk::perfdmf::parse_pkb(flipped), pk::ParseError);
  std::string version = bytes;
  version[4] = 9;
  EXPECT_THROW((void)pk::perfdmf::parse_pkb(version), pk::ParseError);
}

TEST(PkbCorruption, ChecksumMismatchNamesByteOffset) {
  std::string bytes = pk::perfdmf::to_pkb(make_trial("crc"));
  // Flip one byte inside the COLS payload (the cube starts well past the
  // schema; the last 24 bytes are the end marker + padding).
  bytes[bytes.size() - 32] ^= 0x01;
  try {
    (void)pk::perfdmf::parse_pkb(bytes);
    FAIL() << "corrupt checksum not detected";
  } catch (const pk::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("byte offset"), std::string::npos)
        << e.what();
  }
}

TEST(PkbCorruption, SchemaOnlyVerifySkipsColumnsButPromotionChecks) {
  std::string bytes = pk::perfdmf::to_pkb(make_trial("lazy crc"));
  bytes[bytes.size() - 32] ^= 0x01;
  // Opening the view is O(schema): the flipped column byte goes unseen...
  PkbView view = PkbView::from_bytes(bytes, PkbView::Verify::kSchema);
  EXPECT_EQ(view.name(), "lazy crc");
  // ...full verification and promotion both catch it.
  EXPECT_THROW((void)PkbView::from_bytes(bytes, PkbView::Verify::kFull),
               pk::ParseError);
  EXPECT_THROW((void)view.promote(), pk::ParseError);
}

TEST(PkbCorruption, VerifyColumnsUpgradesSchemaOnlyViews) {
  std::string bytes = pk::perfdmf::to_pkb(make_trial("upgrade"));
  const PkbView ok = PkbView::from_bytes(bytes, PkbView::Verify::kSchema);
  EXPECT_NO_THROW(ok.verify_columns());
  bytes[bytes.size() - 32] ^= 0x01;
  const PkbView bad = PkbView::from_bytes(bytes, PkbView::Verify::kSchema);
  try {
    bad.verify_columns();
    FAIL() << "corrupt columns passed verification";
  } catch (const pk::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
}

TEST(PkbCorruption, OversizedDimensionsAreRejectedBeforeAllocation) {
  std::string bytes = pk::perfdmf::to_pkb(make_trial("dims"));
  // The SCHM payload begins at offset 24 with the u64 thread count;
  // patch it far beyond kMaxThreads. The section checksum guards the
  // payload, so the patch has to recompute it (crc field at offset 12,
  // length field at offset 16) — which also proves the dimension check
  // fires on a structurally pristine file.
  const std::uint64_t huge = std::uint64_t{1} << 40;
  std::memcpy(bytes.data() + 24, &huge, sizeof(huge));
  std::uint64_t payload_len = 0;
  std::memcpy(&payload_len, bytes.data() + 16, sizeof(payload_len));
  const std::uint32_t crc = pk::crc32(bytes.data() + 24, payload_len);
  std::memcpy(bytes.data() + 12, &crc, sizeof(crc));
  try {
    (void)pk::perfdmf::parse_pkb(bytes);
    FAIL() << "oversized thread count not detected";
  } catch (const pk::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("thread"), std::string::npos)
        << e.what();
  }
}

TEST(PkbCorruption, LoadErrorsNameTheFile) {
  TempDir dir;
  const fs::path file = dir.path() / "broken.pkb";
  {
    std::string bytes = pk::perfdmf::to_pkb(make_trial("named"));
    bytes[bytes.size() - 32] ^= 0x01;
    std::ofstream os(file, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  try {
    (void)pk::io::open_trial(file);
    FAIL() << "corrupt file loaded";
  } catch (const pk::ParseError& e) {
    EXPECT_EQ(e.file(), file.string());
    EXPECT_NE(std::string(e.what()).find("broken.pkb"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("byte offset"), std::string::npos)
        << e.what();
  }
  // The lazy open path diagnoses identically (schema sections verify).
  std::string truncated = read_file(file).substr(0, 20);
  const fs::path shortfile = dir.path() / "short.pkb";
  {
    std::ofstream os(shortfile, std::ios::binary);
    os.write(truncated.data(),
             static_cast<std::streamsize>(truncated.size()));
  }
  try {
    (void)PkbView::open(shortfile);
    FAIL() << "truncated file opened";
  } catch (const pk::ParseError& e) {
    EXPECT_EQ(e.file(), shortfile.string());
  }
}

TEST(PkbFormat, WritesFromAnUnpromotedViewAreIdentical) {
  // write_pkb over a PkbView must produce the same bytes as over the
  // original trial — the repository streams cached views out this way.
  const Trial t = make_trial("restream");
  const std::string bytes = pk::perfdmf::to_pkb(t);
  PkbView view = PkbView::from_bytes(bytes);
  EXPECT_EQ(pk::perfdmf::to_pkb(view), bytes);
  EXPECT_FALSE(view.promoted());
}
