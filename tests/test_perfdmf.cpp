// Tests for the PerfDMF layer: repository, snapshot format, TAU format.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "perfdmf/repository.hpp"
#include "io/format.hpp"
#include "perfdmf/snapshot.hpp"
#include "common/thread_pool.hpp"
#include "perfdmf/tau_format.hpp"

namespace pk = perfknow;
namespace fs = std::filesystem;
using pk::perfdmf::Repository;
using pk::profile::Trial;

namespace {

std::shared_ptr<Trial> make_trial(const std::string& name,
                                  std::size_t threads = 2) {
  auto t = std::make_shared<Trial>(name);
  t->set_thread_count(threads);
  const auto time = t->add_metric("TIME", "usec");
  const auto cyc = t->add_metric("CPU_CYCLES", "count");
  const auto main = t->add_event("main", pk::profile::kNoEvent, "PROC");
  const auto loop = t->add_event("main => loop", main, "LOOP");
  for (std::size_t th = 0; th < threads; ++th) {
    t->set_inclusive(th, main, time, 100.0 + static_cast<double>(th));
    t->set_exclusive(th, main, time, 10.0);
    t->set_inclusive(th, loop, time, 90.0 + static_cast<double>(th));
    t->set_exclusive(th, loop, time, 90.0 + static_cast<double>(th));
    t->set_inclusive(th, main, cyc, 1.5e8);
    t->set_calls(th, main, 1, 7);
    t->set_calls(th, loop, 7, 0);
  }
  t->set_metadata("schedule", "dynamic,1");
  t->set_metadata("weird key", "value\twith\ttabs\nand newline");
  return t;
}

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() /
           ("perfknow_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    fs::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return dir_; }

 private:
  fs::path dir_;
  static inline int counter_ = 0;
};

}  // namespace

TEST(Repository, PutGetContainsErase) {
  Repository repo;
  repo.put("app", "exp", make_trial("t1"));
  EXPECT_TRUE(repo.contains("app", "exp", "t1"));
  EXPECT_FALSE(repo.contains("app", "exp", "t2"));
  EXPECT_EQ(repo.get("app", "exp", "t1")->name(), "t1");
  EXPECT_TRUE(repo.erase("app", "exp", "t1"));
  EXPECT_FALSE(repo.erase("app", "exp", "t1"));
}

TEST(Repository, MissingLevelsThrowWithContext) {
  Repository repo;
  repo.put("app", "exp", make_trial("t1"));
  EXPECT_THROW(repo.get("nope", "exp", "t1"), pk::NotFoundError);
  EXPECT_THROW(repo.get("app", "nope", "t1"), pk::NotFoundError);
  EXPECT_THROW(repo.get("app", "exp", "nope"), pk::NotFoundError);
  EXPECT_THROW(repo.put("a", "e", nullptr), pk::InvalidArgumentError);
}

TEST(Repository, ListingAndCounts) {
  Repository repo;
  repo.put("app", "scaling", make_trial("1_2"));
  repo.put("app", "scaling", make_trial("1_4"));
  repo.put("app", "power", make_trial("O0"));
  repo.put("other", "x", make_trial("t"));
  EXPECT_EQ(repo.applications().size(), 2u);
  EXPECT_EQ(repo.experiments("app").size(), 2u);
  EXPECT_EQ(repo.trials("app", "scaling").size(), 2u);
  EXPECT_EQ(repo.trial_count(), 4u);
  EXPECT_EQ(repo.experiment_trials("app", "scaling").size(), 2u);
}

TEST(Snapshot, RoundTripIsExact) {
  const auto t = make_trial("round trip");
  std::stringstream ss;
  pk::perfdmf::write_snapshot(*t, ss);
  const Trial back = pk::perfdmf::read_snapshot(ss);

  EXPECT_EQ(back.name(), t->name());
  EXPECT_EQ(back.thread_count(), t->thread_count());
  EXPECT_EQ(back.metric_count(), t->metric_count());
  EXPECT_EQ(back.event_count(), t->event_count());
  EXPECT_EQ(*back.metadata("schedule"), "dynamic,1");
  EXPECT_EQ(*back.metadata("weird key"), "value\twith\ttabs\nand newline");
  for (std::size_t th = 0; th < t->thread_count(); ++th) {
    for (pk::profile::EventId e = 0; e < t->event_count(); ++e) {
      for (pk::profile::MetricId m = 0; m < t->metric_count(); ++m) {
        EXPECT_DOUBLE_EQ(back.inclusive(th, e, m), t->inclusive(th, e, m));
        EXPECT_DOUBLE_EQ(back.exclusive(th, e, m), t->exclusive(th, e, m));
      }
      EXPECT_DOUBLE_EQ(back.calls(th, e).calls, t->calls(th, e).calls);
    }
  }
  // Callgraph preserved.
  EXPECT_EQ(back.event(back.event_id("main => loop")).parent,
            back.event_id("main"));
}

TEST(Snapshot, RejectsGarbage) {
  std::stringstream ss("not a snapshot\n");
  EXPECT_THROW(pk::perfdmf::read_snapshot(ss), pk::ParseError);
  std::stringstream truncated("PKPROF\t1\ntrial\tx\n");  // no 'end'
  EXPECT_THROW(pk::perfdmf::read_snapshot(truncated), pk::ParseError);
  std::stringstream empty("");
  EXPECT_THROW(pk::perfdmf::read_snapshot(empty), pk::ParseError);
}

TEST(Snapshot, CsvExport) {
  const auto t = make_trial("csv");
  const std::string csv = pk::perfdmf::to_csv(*t, "TIME");
  EXPECT_NE(csv.find("event,thread0,thread1"), std::string::npos);
  EXPECT_NE(csv.find("main => loop"), std::string::npos);
  EXPECT_THROW(pk::perfdmf::to_csv(*t, "NOPE"), pk::NotFoundError);
}

TEST(RepositoryPersistence, SaveLoadRoundTrip) {
  TempDir dir;
  Repository repo;
  repo.put("Fluid Dynamic", "rib 45", make_trial("1_8"));
  repo.put("Fluid Dynamic", "rib 45", make_trial("1_16"));
  repo.put("MSAP", "schedules", make_trial("static"));
  repo.save(dir.path());

  const Repository loaded = Repository::load(dir.path());
  EXPECT_EQ(loaded.trial_count(), 3u);
  const auto t = loaded.get("Fluid Dynamic", "rib 45", "1_16");
  EXPECT_EQ(t->thread_count(), 2u);
  EXPECT_EQ(*t->metadata("schedule"), "dynamic,1");
}

TEST(RepositoryPersistence, LoadMissingIndexThrows) {
  TempDir dir;
  EXPECT_THROW(Repository::load(dir.path() / "nope"), pk::IoError);
}

TEST(TauFormat, WriteReadRoundTrip) {
  TempDir dir;
  const auto t = make_trial("tau", 4);
  pk::perfdmf::write_tau_profiles(*t, "TIME", dir.path());
  // Four per-thread files written.
  EXPECT_TRUE(fs::exists(dir.path() / "profile.0.0.0"));
  EXPECT_TRUE(fs::exists(dir.path() / "profile.3.0.0"));

  const Trial back = pk::perfdmf::read_tau_profiles(dir.path());
  EXPECT_EQ(back.thread_count(), 4u);
  ASSERT_TRUE(back.find_metric("TIME").has_value());
  const auto m = back.metric_id("TIME");
  const auto loop = back.event_id("main => loop");
  EXPECT_DOUBLE_EQ(back.exclusive(2, loop, m), 92.0);
  EXPECT_DOUBLE_EQ(back.calls(1, back.event_id("main")).calls, 1.0);
  // Callpath parent reconstructed from "a => b" naming.
  EXPECT_EQ(back.event(loop).parent, back.event_id("main"));
  // Group carried through.
  EXPECT_EQ(back.event(loop).group, "LOOP");
}

TEST(TauFormat, EmptyDirectoryThrows) {
  TempDir dir;
  EXPECT_THROW(pk::perfdmf::read_tau_profiles(dir.path()), pk::IoError);
  EXPECT_THROW(pk::perfdmf::read_tau_profiles(dir.path() / "nope"),
               pk::IoError);
}

TEST(TauFormat, MalformedFileThrows) {
  TempDir dir;
  {
    std::ofstream os(dir.path() / "profile.0.0.0");
    os << "2 templated_functions_MULTI_TIME\n# Name ...\n\"main\" 1 0 5\n";
    // second function row missing -> truncated
  }
  EXPECT_THROW(pk::perfdmf::read_tau_profiles(dir.path()), pk::ParseError);
}

// ---- sharded store, demand loading, cache ------------------------------

TEST(RepositoryPersistence, SaveWritesShardedPkbLayout) {
  TempDir dir;
  Repository repo;
  repo.put("app", "exp", make_trial("a"));
  repo.put("app", "exp", make_trial("b"));
  repo.save(dir.path());

  EXPECT_TRUE(fs::exists(dir.path() / "index.tsv"));
  std::size_t pkb_files = 0;
  for (const auto& entry : fs::recursive_directory_iterator(dir.path())) {
    if (entry.path().extension() == ".pkb") {
      // Every snapshot lives under a shard directory.
      EXPECT_EQ(entry.path().parent_path().filename().string().rfind(
                    "shard-", 0),
                0u)
          << entry.path();
      ++pkb_files;
    }
  }
  EXPECT_EQ(pkb_files, 2u);
}

TEST(RepositoryPersistence, LegacyFlatPkprofLayoutStillLoads) {
  TempDir dir;
  // Hand-write the pre-sharding layout: flat .pkprof files + index.
  const auto t = make_trial("old trial");
  pk::io::save_trial(*t, dir.path() / "old_trial_0.pkprof");
  {
    std::ofstream index(dir.path() / "index.tsv");
    index << "app\texp\told trial\told_trial_0.pkprof\n";
  }
  const Repository loaded = Repository::load(dir.path());
  EXPECT_EQ(loaded.trial_count(), 1u);
  EXPECT_EQ(*loaded.get("app", "exp", "old trial")->metadata("schedule"),
            "dynamic,1");
  // attach() handles it too (text snapshots just materialize eagerly).
  const Repository attached = Repository::attach(dir.path());
  EXPECT_EQ(attached.get("app", "exp", "old trial")->thread_count(), 2u);
}

TEST(RepositoryPersistence, LoadNamesTheFailingSnapshotFile) {
  TempDir dir;
  Repository repo;
  repo.put("app", "exp", make_trial("fine"));
  repo.save(dir.path());
  // Corrupt the one snapshot behind the index's back.
  fs::path victim;
  for (const auto& entry : fs::recursive_directory_iterator(dir.path())) {
    if (entry.path().extension() == ".pkb") victim = entry.path();
  }
  ASSERT_FALSE(victim.empty());
  {
    std::ofstream os(victim, std::ios::binary | std::ios::trunc);
    os << "PKB1 but not really";
  }
  try {
    (void)Repository::load(dir.path());
    FAIL() << "corrupt repository loaded";
  } catch (const pk::ParseError& e) {
    EXPECT_EQ(e.file(), victim.string());
    EXPECT_NE(std::string(e.what()).find(victim.filename().string()),
              std::string::npos)
        << e.what();
  }
}

TEST(RepositoryPersistence, ParallelLoadMatchesSerial) {
  TempDir dir;
  Repository repo;
  for (int i = 0; i < 12; ++i) {
    repo.put("app", "exp", make_trial("t" + std::to_string(i)));
  }
  repo.save(dir.path());

  pk::ThreadPool pool(4);
  const Repository serial = Repository::load(dir.path());
  const Repository parallel = Repository::load(dir.path(), pool);
  EXPECT_EQ(parallel.trial_count(), serial.trial_count());
  for (int i = 0; i < 12; ++i) {
    const std::string name = "t" + std::to_string(i);
    const auto a = serial.get("app", "exp", name);
    const auto b = parallel.get("app", "exp", name);
    EXPECT_EQ(a->inclusive(1, 0, 0), b->inclusive(1, 0, 0));
  }
}

TEST(RepositoryCache, AttachIsLazyAndGetDemandLoads) {
  TempDir dir;
  Repository repo;
  repo.put("app", "exp", make_trial("lazy1"));
  repo.put("app", "exp", make_trial("lazy2"));
  repo.save(dir.path());

  const Repository attached = Repository::attach(dir.path());
  // The index is read, the snapshots are not.
  EXPECT_EQ(attached.trial_count(), 2u);
  EXPECT_TRUE(attached.contains("app", "exp", "lazy1"));
  EXPECT_EQ(attached.resident_trials(), 0u);
  EXPECT_EQ(attached.cached_bytes(), 0u);

  const auto t = attached.get("app", "exp", "lazy1");
  EXPECT_EQ(*t->metadata("schedule"), "dynamic,1");
  EXPECT_EQ(attached.resident_trials(), 1u);
  EXPECT_GT(attached.cached_bytes(), 0u);
  // Same entry twice -> same shared trial, no duplicate charge.
  const auto before = attached.cached_bytes();
  EXPECT_EQ(attached.get("app", "exp", "lazy1"), t);
  EXPECT_EQ(attached.cached_bytes(), before);
}

TEST(RepositoryCache, ViewServesReadsWithoutMaterializing) {
  TempDir dir;
  Repository repo;
  repo.put("app", "exp", make_trial("viewed"));
  repo.save(dir.path());

  const Repository attached = Repository::attach(dir.path());
  const auto view = attached.view("app", "exp", "viewed");
  ASSERT_TRUE(view);
  EXPECT_EQ(view->thread_count(), 2u);
  EXPECT_DOUBLE_EQ(
      view->mean_inclusive(view->event_id("main"), view->metric_id("TIME")),
      100.5);
  // A later get() materializes; the view stays coherent.
  const auto trial = attached.get("app", "exp", "viewed");
  EXPECT_EQ(trial->thread_count(), view->thread_count());
}

TEST(RepositoryCache, LruEvictionRespectsByteBudget) {
  TempDir dir;
  Repository repo;
  for (int i = 0; i < 6; ++i) {
    repo.put("app", "exp", make_trial("t" + std::to_string(i), 64));
  }
  repo.save(dir.path());

  // A budget big enough for roughly one trial forces steady eviction.
  Repository attached = Repository::attach(dir.path());
  (void)attached.get("app", "exp", "t0");
  const std::size_t one_trial = attached.cached_bytes();
  ASSERT_GT(one_trial, 0u);
  attached.set_cache_budget(one_trial + one_trial / 2);
  for (int i = 0; i < 6; ++i) {
    (void)attached.get("app", "exp", "t" + std::to_string(i));
    EXPECT_LE(attached.cached_bytes(), one_trial + one_trial / 2);
  }
  EXPECT_LT(attached.resident_trials(), 6u);

  // Shrinking the budget to zero evicts everything evictable...
  attached.set_cache_budget(0);
  EXPECT_EQ(attached.cached_bytes(), 0u);
  EXPECT_EQ(attached.resident_trials(), 0u);
  // ...but pinned (directly put) trials are never evicted.
  attached.put("app", "exp2", make_trial("pinned"));
  EXPECT_EQ(attached.get("app", "exp2", "pinned")->name(), "pinned");
  EXPECT_EQ(attached.resident_trials(), 1u);
}

TEST(RepositoryCache, ConcurrentDemandLoadsKeepAccountingConsistent) {
  TempDir dir;
  {
    Repository repo;
    for (int i = 0; i < 4; ++i) {
      repo.put("app", "exp", make_trial("c" + std::to_string(i)));
    }
    repo.save(dir.path());
  }
  const Repository attached = Repository::attach(dir.path());
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 8; ++w) {
    workers.emplace_back([&attached, &failures, w] {
      for (int i = 0; i < 25; ++i) {
        const std::string name = "c" + std::to_string((w + i) % 4);
        const auto t = attached.get("app", "exp", name);
        if (t->thread_count() != 2) ++failures;
        (void)attached.cached_bytes();
        (void)attached.resident_trials();
      }
    });
  }
  // A concurrent save exercises the same per-entry load serialization.
  TempDir out;
  attached.save(out.path());
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(attached.resident_trials(), 4u);
  // Each trial charged exactly once despite 8 racing loaders.
  const std::size_t bytes = attached.cached_bytes();
  EXPECT_GT(bytes, 0u);
  for (int i = 0; i < 4; ++i) {
    (void)attached.get("app", "exp", "c" + std::to_string(i));
  }
  EXPECT_EQ(attached.cached_bytes(), bytes);
}

TEST(RepositoryPersistence, ResavingIntoOwnDirectoryPreservesSnapshots) {
  TempDir dir;
  {
    Repository repo;
    repo.put("app", "exp", make_trial("self"));
    repo.save(dir.path());
  }
  // Re-save an attached repository into its own directory: the shard
  // filenames are deterministic, so the streaming writer reads each
  // snapshot through a live mmap of the very file it replaces. The
  // temp-file + rename write must leave the mapped source untouched.
  const Repository attached = Repository::attach(dir.path());
  (void)attached.view("app", "exp", "self");  // map the snapshot
  attached.save(dir.path());

  const Repository reloaded = Repository::load(dir.path());
  const auto t = reloaded.get("app", "exp", "self");
  EXPECT_EQ(t->thread_count(), 2u);
  EXPECT_DOUBLE_EQ(
      t->inclusive(1, t->event_id("main"), t->metric_id("TIME")), 101.0);
  EXPECT_EQ(*t->metadata("schedule"), "dynamic,1");
  // No temp files left behind.
  for (const auto& e : fs::recursive_directory_iterator(dir.path())) {
    EXPECT_NE(e.path().extension(), ".tmp") << e.path();
  }
}

TEST(RepositoryPersistence, SaveDoesNotResignCorruptColumns) {
  TempDir dir;
  {
    Repository repo;
    repo.put("app", "exp", make_trial("tamper"));
    repo.save(dir.path());
  }
  // Flip one byte inside the COLS payload of the snapshot on disk (the
  // last 16 bytes are the end-marker header; the cube ends just before).
  fs::path pkb;
  for (const auto& e : fs::recursive_directory_iterator(dir.path())) {
    if (e.path().extension() == ".pkb") pkb = e.path();
  }
  ASSERT_FALSE(pkb.empty());
  {
    std::fstream f(pkb, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(-32, std::ios::end);
    char b = 0;
    f.get(b);
    f.seekp(-32, std::ios::end);
    f.put(static_cast<char>(b ^ 0x01));
  }
  // Streaming the attached repository back out must surface the
  // corruption as a ParseError naming the snapshot — not re-sign the
  // bad bytes with fresh checksums.
  TempDir out;
  const Repository attached = Repository::attach(dir.path());
  try {
    attached.save(out.path());
    FAIL() << "corrupt COLS section streamed and re-signed";
  } catch (const pk::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find(".pkb"), std::string::npos)
        << e.what();
  }
  // Materialization (promotion) rejects it the same way.
  EXPECT_THROW((void)attached.get("app", "exp", "tamper"), pk::ParseError);
}

TEST(RepositoryCache, EvictedTrialsStayAliveForHolders) {
  TempDir dir;
  Repository repo;
  repo.put("app", "exp", make_trial("held"));
  repo.put("app", "exp", make_trial("other"));
  repo.save(dir.path());

  Repository attached = Repository::attach(dir.path());
  const auto held = attached.get("app", "exp", "held");
  attached.set_cache_budget(0);  // evicts the cache's reference
  EXPECT_EQ(attached.resident_trials(), 0u);
  // Our shared_ptr (and the mmap behind it) is still fully usable.
  EXPECT_EQ(*held->metadata("schedule"), "dynamic,1");
  // And a fresh get() reloads from disk.
  EXPECT_EQ(attached.get("app", "exp", "held")->thread_count(), 2u);
}
