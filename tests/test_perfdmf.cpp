// Tests for the PerfDMF layer: repository, snapshot format, TAU format.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "common/error.hpp"
#include "perfdmf/repository.hpp"
#include "perfdmf/snapshot.hpp"
#include "perfdmf/tau_format.hpp"

namespace pk = perfknow;
namespace fs = std::filesystem;
using pk::perfdmf::Repository;
using pk::profile::Trial;

namespace {

std::shared_ptr<Trial> make_trial(const std::string& name,
                                  std::size_t threads = 2) {
  auto t = std::make_shared<Trial>(name);
  t->set_thread_count(threads);
  const auto time = t->add_metric("TIME", "usec");
  const auto cyc = t->add_metric("CPU_CYCLES", "count");
  const auto main = t->add_event("main", pk::profile::kNoEvent, "PROC");
  const auto loop = t->add_event("main => loop", main, "LOOP");
  for (std::size_t th = 0; th < threads; ++th) {
    t->set_inclusive(th, main, time, 100.0 + static_cast<double>(th));
    t->set_exclusive(th, main, time, 10.0);
    t->set_inclusive(th, loop, time, 90.0 + static_cast<double>(th));
    t->set_exclusive(th, loop, time, 90.0 + static_cast<double>(th));
    t->set_inclusive(th, main, cyc, 1.5e8);
    t->set_calls(th, main, 1, 7);
    t->set_calls(th, loop, 7, 0);
  }
  t->set_metadata("schedule", "dynamic,1");
  t->set_metadata("weird key", "value\twith\ttabs\nand newline");
  return t;
}

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() /
           ("perfknow_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    fs::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return dir_; }

 private:
  fs::path dir_;
  static inline int counter_ = 0;
};

}  // namespace

TEST(Repository, PutGetContainsErase) {
  Repository repo;
  repo.put("app", "exp", make_trial("t1"));
  EXPECT_TRUE(repo.contains("app", "exp", "t1"));
  EXPECT_FALSE(repo.contains("app", "exp", "t2"));
  EXPECT_EQ(repo.get("app", "exp", "t1")->name(), "t1");
  EXPECT_TRUE(repo.erase("app", "exp", "t1"));
  EXPECT_FALSE(repo.erase("app", "exp", "t1"));
}

TEST(Repository, MissingLevelsThrowWithContext) {
  Repository repo;
  repo.put("app", "exp", make_trial("t1"));
  EXPECT_THROW(repo.get("nope", "exp", "t1"), pk::NotFoundError);
  EXPECT_THROW(repo.get("app", "nope", "t1"), pk::NotFoundError);
  EXPECT_THROW(repo.get("app", "exp", "nope"), pk::NotFoundError);
  EXPECT_THROW(repo.put("a", "e", nullptr), pk::InvalidArgumentError);
}

TEST(Repository, ListingAndCounts) {
  Repository repo;
  repo.put("app", "scaling", make_trial("1_2"));
  repo.put("app", "scaling", make_trial("1_4"));
  repo.put("app", "power", make_trial("O0"));
  repo.put("other", "x", make_trial("t"));
  EXPECT_EQ(repo.applications().size(), 2u);
  EXPECT_EQ(repo.experiments("app").size(), 2u);
  EXPECT_EQ(repo.trials("app", "scaling").size(), 2u);
  EXPECT_EQ(repo.trial_count(), 4u);
  EXPECT_EQ(repo.experiment_trials("app", "scaling").size(), 2u);
}

TEST(Snapshot, RoundTripIsExact) {
  const auto t = make_trial("round trip");
  std::stringstream ss;
  pk::perfdmf::write_snapshot(*t, ss);
  const Trial back = pk::perfdmf::read_snapshot(ss);

  EXPECT_EQ(back.name(), t->name());
  EXPECT_EQ(back.thread_count(), t->thread_count());
  EXPECT_EQ(back.metric_count(), t->metric_count());
  EXPECT_EQ(back.event_count(), t->event_count());
  EXPECT_EQ(*back.metadata("schedule"), "dynamic,1");
  EXPECT_EQ(*back.metadata("weird key"), "value\twith\ttabs\nand newline");
  for (std::size_t th = 0; th < t->thread_count(); ++th) {
    for (pk::profile::EventId e = 0; e < t->event_count(); ++e) {
      for (pk::profile::MetricId m = 0; m < t->metric_count(); ++m) {
        EXPECT_DOUBLE_EQ(back.inclusive(th, e, m), t->inclusive(th, e, m));
        EXPECT_DOUBLE_EQ(back.exclusive(th, e, m), t->exclusive(th, e, m));
      }
      EXPECT_DOUBLE_EQ(back.calls(th, e).calls, t->calls(th, e).calls);
    }
  }
  // Callgraph preserved.
  EXPECT_EQ(back.event(back.event_id("main => loop")).parent,
            back.event_id("main"));
}

TEST(Snapshot, RejectsGarbage) {
  std::stringstream ss("not a snapshot\n");
  EXPECT_THROW(pk::perfdmf::read_snapshot(ss), pk::ParseError);
  std::stringstream truncated("PKPROF\t1\ntrial\tx\n");  // no 'end'
  EXPECT_THROW(pk::perfdmf::read_snapshot(truncated), pk::ParseError);
  std::stringstream empty("");
  EXPECT_THROW(pk::perfdmf::read_snapshot(empty), pk::ParseError);
}

TEST(Snapshot, CsvExport) {
  const auto t = make_trial("csv");
  const std::string csv = pk::perfdmf::to_csv(*t, "TIME");
  EXPECT_NE(csv.find("event,thread0,thread1"), std::string::npos);
  EXPECT_NE(csv.find("main => loop"), std::string::npos);
  EXPECT_THROW(pk::perfdmf::to_csv(*t, "NOPE"), pk::NotFoundError);
}

TEST(RepositoryPersistence, SaveLoadRoundTrip) {
  TempDir dir;
  Repository repo;
  repo.put("Fluid Dynamic", "rib 45", make_trial("1_8"));
  repo.put("Fluid Dynamic", "rib 45", make_trial("1_16"));
  repo.put("MSAP", "schedules", make_trial("static"));
  repo.save(dir.path());

  const Repository loaded = Repository::load(dir.path());
  EXPECT_EQ(loaded.trial_count(), 3u);
  const auto t = loaded.get("Fluid Dynamic", "rib 45", "1_16");
  EXPECT_EQ(t->thread_count(), 2u);
  EXPECT_EQ(*t->metadata("schedule"), "dynamic,1");
}

TEST(RepositoryPersistence, LoadMissingIndexThrows) {
  TempDir dir;
  EXPECT_THROW(Repository::load(dir.path() / "nope"), pk::IoError);
}

TEST(TauFormat, WriteReadRoundTrip) {
  TempDir dir;
  const auto t = make_trial("tau", 4);
  pk::perfdmf::write_tau_profiles(*t, "TIME", dir.path());
  // Four per-thread files written.
  EXPECT_TRUE(fs::exists(dir.path() / "profile.0.0.0"));
  EXPECT_TRUE(fs::exists(dir.path() / "profile.3.0.0"));

  const Trial back = pk::perfdmf::read_tau_profiles(dir.path());
  EXPECT_EQ(back.thread_count(), 4u);
  ASSERT_TRUE(back.find_metric("TIME").has_value());
  const auto m = back.metric_id("TIME");
  const auto loop = back.event_id("main => loop");
  EXPECT_DOUBLE_EQ(back.exclusive(2, loop, m), 92.0);
  EXPECT_DOUBLE_EQ(back.calls(1, back.event_id("main")).calls, 1.0);
  // Callpath parent reconstructed from "a => b" naming.
  EXPECT_EQ(back.event(loop).parent, back.event_id("main"));
  // Group carried through.
  EXPECT_EQ(back.event(loop).group, "LOOP");
}

TEST(TauFormat, EmptyDirectoryThrows) {
  TempDir dir;
  EXPECT_THROW(pk::perfdmf::read_tau_profiles(dir.path()), pk::IoError);
  EXPECT_THROW(pk::perfdmf::read_tau_profiles(dir.path() / "nope"),
               pk::IoError);
}

TEST(TauFormat, MalformedFileThrows) {
  TempDir dir;
  {
    std::ofstream os(dir.path() / "profile.0.0.0");
    os << "2 templated_functions_MULTI_TIME\n# Name ...\n\"main\" 1 0 5\n";
    // second function row missing -> truncated
  }
  EXPECT_THROW(pk::perfdmf::read_tau_profiles(dir.path()), pk::ParseError);
}
