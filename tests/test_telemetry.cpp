// Telemetry subsystem tests: the probes themselves (spans, counters,
// rings), the Trial exporter, and the closed self-diagnosis loop —
// perfknow's own execution exported as a profile, stored as PKB,
// reloaded, and judged by the shipped self_diagnosis rulebase.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "io/format.hpp"
#include "perfdmf/repository.hpp"
#include "profile/profile.hpp"
#include "rules/parser.hpp"
#include "rules/rulebases.hpp"
#include "telemetry/export.hpp"
#include "telemetry/self_analysis.hpp"
#include "telemetry/telemetry.hpp"

namespace pk = perfknow;
namespace tel = pk::telemetry;
namespace fs = std::filesystem;

namespace {

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() /
           ("perfknow_tel_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    fs::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return dir_; }

 private:
  fs::path dir_;
  static inline int counter_ = 0;
};

/// Spans recorded on the calling thread under a given name.
std::vector<tel::SpanRecord> spans_named(const tel::Snapshot& snap,
                                         const std::string& name) {
  std::vector<tel::SpanRecord> out;
  for (const auto& r : snap.spans) {
    if (snap.names[r.name] == name) out.push_back(r);
  }
  return out;
}

std::uint64_t counter_value(const tel::Snapshot& snap,
                            const std::string& name) {
  for (const auto& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

/// Every test starts from a clean, enabled slate (the registry is
/// process-wide and cumulative).
void fresh_start(bool enabled) {
  tel::set_enabled(false);
  tel::reset();
  tel::set_enabled(enabled);
}

}  // namespace

TEST(Telemetry, DisabledProbesAreNoOps) {
  fresh_start(false);
  tel::Counter& c = tel::counter("test.disabled_counter");
  c.add(42);
  tel::histogram("test.disabled_hist").record(7);
  {
    static const tel::SpanSite site("test.disabled_span");
    tel::ScopedSpan span(site);
  }
  const auto snap = tel::snapshot();
  EXPECT_EQ(counter_value(snap, "test.disabled_counter"), 0u);
  EXPECT_TRUE(spans_named(snap, "test.disabled_span").empty());
  for (const auto& h : snap.histograms) {
    if (h.name == "test.disabled_hist") {
      EXPECT_EQ(h.count, 0u);
    }
  }
}

TEST(Telemetry, SpansNestAndExclusiveTimePartitions) {
  fresh_start(true);
  {
    tel::ScopedSpan outer(std::string_view("test.outer"));
    {
      tel::ScopedSpan inner(std::string_view("test.inner"));
    }
  }
  tel::set_enabled(false);
  const auto snap = tel::snapshot();
  const auto outer = spans_named(snap, "test.outer");
  const auto inner = spans_named(snap, "test.inner");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(inner.size(), 1u);
  // The inner span completes first (ring order) and owns all its time.
  EXPECT_EQ(inner[0].exclusive_ns, inner[0].duration_ns);
  // The outer span's exclusive time excludes the inner span's duration.
  EXPECT_EQ(outer[0].exclusive_ns,
            outer[0].duration_ns - inner[0].duration_ns);
  EXPECT_GE(outer[0].duration_ns, inner[0].duration_ns);
}

TEST(Telemetry, CountersAndHistogramsAccumulate) {
  fresh_start(true);
  tel::Counter& c = tel::counter("test.counter");
  c.add();
  c.add(9);
  tel::Histogram& h = tel::histogram("test.hist");
  h.record(0);
  h.record(1);
  h.record(1024);
  tel::set_enabled(false);
  const auto snap = tel::snapshot();
  EXPECT_EQ(counter_value(snap, "test.counter"), 10u);
  bool found = false;
  for (const auto& hs : snap.histograms) {
    if (hs.name != "test.hist") continue;
    found = true;
    EXPECT_EQ(hs.count, 3u);
    EXPECT_EQ(hs.sum, 1025u);
    EXPECT_EQ(hs.buckets[0], 1u);   // value 0
    EXPECT_EQ(hs.buckets[1], 1u);   // value 1
    EXPECT_EQ(hs.buckets[11], 1u);  // value 1024 = bit_width 11
  }
  EXPECT_TRUE(found);
}

TEST(Telemetry, RingWraparoundKeepsNewestAndCountsDropped) {
  fresh_start(true);
  const std::size_t cap = tel::ring_capacity();
  static const tel::SpanSite site("test.wrap");
  const std::size_t emitted = cap + 100;
  for (std::size_t i = 0; i < emitted; ++i) {
    tel::ScopedSpan span(site);
  }
  tel::set_enabled(false);
  const auto snap = tel::snapshot();
  EXPECT_EQ(spans_named(snap, "test.wrap").size(), cap);
  EXPECT_GE(snap.dropped_spans, 100u);
}

TEST(Telemetry, ConcurrentEmissionWhileSnapshotting) {
  fresh_start(true);
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 20000;
  static const tel::SpanSite site("test.concurrent");
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([] {
      tel::Counter& c = tel::counter("test.concurrent_counter");
      for (int i = 0; i < kSpansPerThread; ++i) {
        tel::ScopedSpan span(site);
        c.add();
      }
    });
  }
  // Concurrent reads must observe only whole records (seq-validated);
  // TSan checks there is no data race between writers and this reader.
  for (int i = 0; i < 50; ++i) {
    const auto snap = tel::snapshot();
    for (const auto& r : snap.spans) {
      ASSERT_LT(r.name, snap.names.size());
    }
  }
  for (auto& w : writers) w.join();
  tel::set_enabled(false);
  const auto snap = tel::snapshot();
  EXPECT_EQ(counter_value(snap, "test.concurrent_counter"),
            std::uint64_t{kThreads} * kSpansPerThread);
  // Every span was either retained in some ring or counted as dropped.
  std::uint64_t retained = spans_named(snap, "test.concurrent").size();
  EXPECT_GE(retained + snap.dropped_spans,
            std::uint64_t{kThreads} * kSpansPerThread);
}

TEST(TelemetryExport, TrialRoundTripsThroughPkb) {
  fresh_start(true);
  {
    tel::ScopedSpan outer(std::string_view("loop.outer"));
    tel::ScopedSpan inner(std::string_view("loop.inner"));
  }
  tel::counter("loop.counter").add(5);
  tel::set_enabled(false);
  const auto trial = tel::to_trial(tel::snapshot(), "roundtrip");

  TempDir dir;
  const fs::path file = dir.path() / "self.pkb";
  pk::io::save_trial(trial, file);
  const pk::profile::Trial back = pk::io::open_trial(file);

  EXPECT_EQ(back.name(), "roundtrip");
  ASSERT_TRUE(back.find_event("perfknow"));
  ASSERT_TRUE(back.find_event("loop.outer"));
  ASSERT_TRUE(back.find_event("loop.inner"));
  ASSERT_TRUE(back.find_metric("TIME"));
  ASSERT_TRUE(back.find_metric("loop.counter"));
  const auto root = *back.find_event("perfknow");
  const auto m = *back.find_metric("loop.counter");
  EXPECT_EQ(back.inclusive(0, root, m), 5.0);
  // The reloaded trial feeds the self-analysis like the live one.
  pk::rules::RuleHarness h;
  EXPECT_GE(tel::assert_self_facts(h, back), 2u);
}

TEST(SelfDiagnosis, FiresOnSyntheticDegenerateSnapshot) {
  // A hand-built "telemetry trial" describing a pathological run: the
  // cache thrashing (hit rate 4%) and the ring overflowing.
  pk::profile::Trial t("degenerate");
  t.set_thread_count(1);
  const auto time = t.add_metric("TIME", "usec");
  const auto root = t.add_event("perfknow", pk::profile::kNoEvent,
                                "TELEMETRY");
  const auto match = t.add_event("rules.match", root, "TELEMETRY");
  t.set_inclusive(0, root, time, 1000.0);
  t.set_exclusive(0, root, time, 0.0);
  t.set_calls(0, root, 1, 0);
  t.set_inclusive(0, match, time, 900.0);
  t.set_exclusive(0, match, time, 900.0);
  t.set_calls(0, match, 3, 0);
  const auto hit = t.add_metric("perfdmf.repository.cache.hit");
  const auto miss = t.add_metric("perfdmf.repository.cache.miss");
  const auto dropped = t.add_metric("telemetry.dropped_spans");
  t.set_inclusive(0, root, hit, 4.0);
  t.set_inclusive(0, root, miss, 96.0);
  t.set_inclusive(0, root, dropped, 12.0);

  pk::rules::RuleHarness h;
  pk::rules::add_rules(h, std::string(pk::rules::builtin::self_diagnosis()));
  EXPECT_GE(tel::assert_self_facts(h, t), 4u);
  h.process_rules();
  EXPECT_EQ(h.diagnoses_for("RepositoryCacheThrashing").size(), 1u);
  EXPECT_EQ(h.diagnoses_for("TelemetryRingOverflow").size(), 1u);
  const auto thrash = h.diagnoses_for("RepositoryCacheThrashing")[0];
  EXPECT_NEAR(thrash.severity, 0.96, 1e-9);
  EXPECT_FALSE(thrash.recommendation.empty());
}

TEST(SelfDiagnosis, RejectsForeignTrials) {
  pk::profile::Trial t("not telemetry");
  t.set_thread_count(1);
  t.add_metric("TIME", "usec");
  t.add_event("main");
  pk::rules::RuleHarness h;
  EXPECT_THROW(tel::assert_self_facts(h, t), pk::InvalidArgumentError);
}

// The full closed loop on real measurements, structurally deterministic:
// a budget-0 repository cache can never retain a trial, so every get()
// is a miss, the exported hit rate is 0%, and the shipped rulebase must
// diagnose RepositoryCacheThrashing on perfknow's own profile.
TEST(SelfDiagnosis, ClosedLoopDiagnosesBudgetZeroRepository) {
  TempDir dir;
  {
    pk::perfdmf::Repository repo;
    for (int i = 0; i < 4; ++i) {
      auto t = std::make_shared<pk::profile::Trial>("t" + std::to_string(i));
      t->set_thread_count(2);
      const auto m = t->add_metric("TIME", "usec");
      const auto e = t->add_event("main");
      t->set_inclusive(0, e, m, 1.0 + i);
      t->set_inclusive(1, e, m, 2.0 + i);
      t->set_calls(0, e, 1, 0);
      repo.put("app", "exp", std::move(t));
    }
    repo.save(dir.path() / "repo");
  }

  fresh_start(true);
  const pk::perfdmf::Repository cold =
      pk::perfdmf::Repository::attach(dir.path() / "repo",
                                      /*cache_budget=*/0);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 4; ++i) {
      (void)cold.get("app", "exp", "t" + std::to_string(i));
    }
  }
  tel::set_enabled(false);

  // Export perfknow's own run, round-trip it through the PKB store, and
  // let the shipped rules judge it.
  const auto self = tel::to_trial(tel::snapshot(), "perfknow.self");
  const fs::path file = dir.path() / "self.pkb";
  pk::io::save_trial(self, file);
  const pk::profile::Trial reloaded = pk::io::open_trial(file);

  pk::rules::RuleHarness h;
  pk::rules::add_rules(h, std::string(pk::rules::builtin::self_diagnosis()));
  ASSERT_GE(tel::assert_self_facts(h, reloaded), 1u);
  h.process_rules();
  const auto diags = h.diagnoses_for("RepositoryCacheThrashing");
  ASSERT_EQ(diags.size(), 1u);
  // 20 lookups, 0 hits: maximum severity.
  EXPECT_NEAR(diags[0].severity, 1.0, 1e-9);
  EXPECT_NE(diags[0].recommendation.find("set_cache_budget"),
            std::string::npos);
}
