// Tests for the CSV and JSON profile-interchange formats.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "perfdmf/csv_format.hpp"
#include "perfdmf/json_format.hpp"
#include "profile/profile.hpp"

namespace pk = perfknow;
using pk::profile::Trial;

namespace {

Trial fixture() {
  Trial t("fixture");
  t.set_thread_count(2);
  const auto time = t.add_metric("TIME", "usec");
  const auto fp = t.add_metric("FP_OPS");
  const auto main = t.add_event("main", pk::profile::kNoEvent, "PROC");
  const auto loop = t.add_event("main => loop, with \"quotes\"", main,
                                "LOOP");
  for (std::size_t th = 0; th < 2; ++th) {
    t.set_inclusive(th, main, time, 100.5 + static_cast<double>(th));
    t.set_exclusive(th, main, time, 10.25);
    t.set_inclusive(th, main, fp, 1e6);
    t.set_inclusive(th, loop, time, 90.0);
    t.set_exclusive(th, loop, time, 90.0);
    t.set_calls(th, main, 1, 3);
    t.set_calls(th, loop, 3, 0);
  }
  t.set_metadata("schedule", "dynamic,1");
  t.set_metadata("note", "line1\nline2\ttab");
  return t;
}

}  // namespace

TEST(CsvLong, RoundTripValuesAndCallpath) {
  const Trial t = fixture();
  std::stringstream ss;
  pk::perfdmf::write_csv_long(t, ss);
  const Trial back = pk::perfdmf::read_csv_long(ss);

  EXPECT_EQ(back.thread_count(), 2u);
  EXPECT_EQ(back.event_count(), 2u);
  EXPECT_EQ(back.metric_count(), 2u);
  const auto time = back.metric_id("TIME");
  const auto loop = back.event_id("main => loop, with \"quotes\"");
  EXPECT_DOUBLE_EQ(back.exclusive(1, loop, time), 90.0);
  EXPECT_DOUBLE_EQ(back.inclusive(1, back.event_id("main"), time), 101.5);
  EXPECT_DOUBLE_EQ(back.calls(0, loop).calls, 3.0);
  // Parent reconstructed from the " => " prefix.
  EXPECT_EQ(back.event(loop).parent, back.event_id("main"));
}

TEST(CsvLong, RejectsMalformedInput) {
  std::stringstream empty("");
  EXPECT_THROW(pk::perfdmf::read_csv_long(empty), pk::ParseError);
  std::stringstream bad_header("a,b,c\n");
  EXPECT_THROW(pk::perfdmf::read_csv_long(bad_header), pk::ParseError);
  std::stringstream short_row(
      "event,thread,metric,inclusive,exclusive,calls,subcalls\n"
      "main,0,TIME,1\n");
  EXPECT_THROW(pk::perfdmf::read_csv_long(short_row), pk::ParseError);
  std::stringstream bad_quote(
      "event,thread,metric,inclusive,exclusive,calls,subcalls\n"
      "\"unterminated,0,TIME,1,1,1,0\n");
  EXPECT_THROW(pk::perfdmf::read_csv_long(bad_quote), pk::ParseError);
}

TEST(JsonFormat, RoundTripExact) {
  const Trial t = fixture();
  const auto text = pk::perfdmf::to_json(t);
  const Trial back = pk::perfdmf::from_json(text);

  EXPECT_EQ(back.name(), "fixture");
  EXPECT_EQ(back.thread_count(), t.thread_count());
  EXPECT_EQ(back.metric_count(), t.metric_count());
  EXPECT_EQ(back.event_count(), t.event_count());
  EXPECT_EQ(*back.metadata("schedule"), "dynamic,1");
  EXPECT_EQ(*back.metadata("note"), "line1\nline2\ttab");
  for (std::size_t th = 0; th < t.thread_count(); ++th) {
    for (pk::profile::EventId e = 0; e < t.event_count(); ++e) {
      for (pk::profile::MetricId m = 0; m < t.metric_count(); ++m) {
        EXPECT_DOUBLE_EQ(back.inclusive(th, e, m), t.inclusive(th, e, m));
        EXPECT_DOUBLE_EQ(back.exclusive(th, e, m), t.exclusive(th, e, m));
      }
      EXPECT_DOUBLE_EQ(back.calls(th, e).calls, t.calls(th, e).calls);
      EXPECT_EQ(back.event(e).parent, t.event(e).parent);
      EXPECT_EQ(back.event(e).group, t.event(e).group);
    }
  }
}

TEST(JsonFormat, ParserHandlesEscapesAndWhitespace) {
  const auto t = pk::perfdmf::from_json(R"({
    "name": "uA\t\"x\"",
    "threads": 1,
    "metadata": {},
    "metrics": [{"name": "M", "units": "count", "derived": false}],
    "events": [{"name": "e", "parent": -1, "group": ""}],
    "data": [
      {"thread": 0, "event": 0, "calls": 2.5e2, "subcalls": 0,
       "values": [[1.5, -0.25]]}
    ]
  })");
  EXPECT_EQ(t.name(), "uA\t\"x\"");
  EXPECT_DOUBLE_EQ(t.calls(0, 0).calls, 250.0);
  EXPECT_DOUBLE_EQ(t.exclusive(0, 0, 0), -0.25);
}

TEST(JsonFormat, RejectsMalformedDocuments) {
  EXPECT_THROW(pk::perfdmf::from_json("{"), pk::ParseError);
  EXPECT_THROW(pk::perfdmf::from_json("[1, 2,]"), pk::ParseError);
  EXPECT_THROW(pk::perfdmf::from_json("{\"name\": }"), pk::ParseError);
  EXPECT_THROW(pk::perfdmf::from_json("{\"a\": 1} trailing"),
               pk::ParseError);
  EXPECT_THROW(pk::perfdmf::from_json("nope"), pk::ParseError);
  // Schema violations.
  EXPECT_THROW(pk::perfdmf::from_json("{\"threads\": 1}"), pk::ParseError);
  EXPECT_THROW(pk::perfdmf::from_json(R"({
    "name": "x", "threads": 1, "metrics": [], "events": [],
    "data": [{"thread": 0, "event": 5, "calls": 0, "subcalls": 0,
              "values": []}]
  })"),
               pk::ParseError);
}

TEST(JsonFormat, SparseZeroRowsOmittedButReadBack) {
  Trial t("sparse");
  t.set_thread_count(3);
  t.add_metric("M");
  const auto e = t.add_event("ev");
  t.set_exclusive(1, e, 0, 7.0);  // threads 0 and 2 stay all-zero
  const auto text = pk::perfdmf::to_json(t);
  // Only one data row serialized.
  EXPECT_EQ(text.find("\"thread\": 0"), std::string::npos);
  const Trial back = pk::perfdmf::from_json(text);
  EXPECT_DOUBLE_EQ(back.exclusive(0, e, 0), 0.0);
  EXPECT_DOUBLE_EQ(back.exclusive(1, e, 0), 7.0);
  EXPECT_DOUBLE_EQ(back.exclusive(2, e, 0), 0.0);
}
