// Tests for the power model (Eq. 1/2) and the optimization-level study.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "hwcounters/counters.hpp"
#include "power/power_model.hpp"
#include "rules/rulebases.hpp"

namespace pk = perfknow;
using pk::hwcounters::Counter;
using pk::hwcounters::CounterVector;
using pk::openuh::OptLevel;
using pk::power::PowerModel;
using pk::power::PowerStudy;

namespace {

CounterVector busy_vector(double cycles, double ipc, double fp_rate) {
  CounterVector c;
  c.set(Counter::kCpuCycles, cycles);
  c.set(Counter::kInstructionsCompleted, cycles * ipc);
  c.set(Counter::kInstructionsIssued, cycles * ipc * 1.05);
  c.set(Counter::kFpOps, cycles * fp_rate);
  c.set(Counter::kLoads, cycles * 0.4);
  c.set(Counter::kL2References, cycles * 0.05);
  c.set(Counter::kL3References, cycles * 0.01);
  c.set(Counter::kL3Misses, cycles * 0.002);
  return c;
}

}  // namespace

TEST(PowerModel, IdleWhenNoCycles) {
  const auto model = PowerModel::itanium2();
  const auto e = model.estimate(CounterVector{});
  EXPECT_DOUBLE_EQ(e.total_watts, model.idle_watts());
  for (const auto& c : e.components) {
    EXPECT_DOUBLE_EQ(c.watts, 0.0);
  }
}

TEST(PowerModel, BoundedBetweenIdleAndTdp) {
  const auto model = PowerModel::itanium2();
  // Saturate every component beyond its peak rate: power caps at TDP.
  CounterVector c;
  c.set(Counter::kCpuCycles, 1e9);
  c.set(Counter::kInstructionsCompleted, 1e11);
  c.set(Counter::kInstructionsIssued, 1e11);
  c.set(Counter::kFpOps, 1e11);
  c.set(Counter::kLoads, 1e11);
  c.set(Counter::kL2References, 1e11);
  c.set(Counter::kL3References, 1e11);
  c.set(Counter::kL3Misses, 1e11);
  const auto e = model.estimate(c);
  EXPECT_NEAR(e.total_watts, model.tdp_watts(), 1e-9);
  for (const auto& comp : e.components) {
    EXPECT_DOUBLE_EQ(comp.access_rate, 1.0);
  }
}

TEST(PowerModel, HigherActivityMorePower) {
  const auto model = PowerModel::itanium2();
  const auto low = model.estimate(busy_vector(1e9, 0.5, 0.1));
  const auto high = model.estimate(busy_vector(1e9, 2.0, 1.0));
  EXPECT_GT(high.total_watts, low.total_watts);
  EXPECT_GT(low.total_watts, model.idle_watts());
}

TEST(PowerModel, InvalidConfigsRejected) {
  EXPECT_THROW(PowerModel(0.0, 0.0, {{"X", 1.0, 1.0, Counter::kFpOps}}),
               pk::InvalidArgumentError);
  EXPECT_THROW(PowerModel(100.0, 100.0, {{"X", 1.0, 1.0, Counter::kFpOps}}),
               pk::InvalidArgumentError);
  EXPECT_THROW(PowerModel(100.0, 10.0, {}), pk::InvalidArgumentError);
  EXPECT_THROW(PowerModel(100.0, 10.0, {{"X", 0.0, 1.0, Counter::kFpOps}}),
               pk::InvalidArgumentError);
}

TEST(Energy, Formulas) {
  EXPECT_DOUBLE_EQ(pk::power::energy_joules(50.0, 2.0), 100.0);
  EXPECT_DOUBLE_EQ(pk::power::flops_per_joule(200.0, 100.0), 2.0);
  EXPECT_DOUBLE_EQ(pk::power::flops_per_joule(200.0, 0.0), 0.0);
}

namespace {

/// Builds a study shaped like the paper's Table I: O0 slow and low-IPC,
/// O1 scheduled, O2 few instructions, O3 fast with overlap.
PowerStudy table_like_study() {
  PowerStudy study(PowerModel::itanium2());
  const double flops = 1e12;
  auto add = [&](OptLevel lvl, double seconds, double instr, double ipc) {
    CounterVector agg;
    const double cycles = seconds * 1.5e9 * 16;  // 16 CPUs
    agg.set(Counter::kCpuCycles, cycles);
    agg.set(Counter::kInstructionsCompleted, instr);
    agg.set(Counter::kInstructionsIssued, instr * 1.05);
    agg.set(Counter::kFpOps, flops);
    agg.set(Counter::kLoads, instr * 0.3);
    agg.set(Counter::kL2References, instr * 0.05);
    agg.set(Counter::kL3References, instr * 0.01);
    agg.set(Counter::kL3Misses, cycles * 0.001);
    (void)ipc;
    study.add(lvl, agg, seconds, 16);
  };
  add(OptLevel::kO0, 100.0, 1.0e13, 0.9);
  add(OptLevel::kO1, 34.0, 4.7e12, 1.3);
  add(OptLevel::kO2, 7.1, 5.9e11, 0.8);
  add(OptLevel::kO3, 4.9, 5.6e11, 1.1);
  return study;
}

}  // namespace

TEST(PowerStudy, RelativeTableNormalizesToO0) {
  const auto study = table_like_study();
  const auto table = study.relative_table();
  ASSERT_EQ(table.size(), 8u);
  for (const auto& [name, vals] : table) {
    ASSERT_EQ(vals.size(), 4u);
    EXPECT_DOUBLE_EQ(vals[0], 1.0) << name;
  }
  // Time row matches the inputs.
  EXPECT_EQ(table[0].first, "Time");
  EXPECT_NEAR(table[0].second[1], 0.34, 1e-9);
  // Energy decreases monotonically.
  const auto& joules = table[6].second;
  EXPECT_GT(joules[0], joules[1]);
  EXPECT_GT(joules[1], joules[2]);
  EXPECT_GT(joules[2], joules[3]);
  // FLOP/Joule rises strongly.
  const auto& fpj = table[7].second;
  EXPECT_GT(fpj[3], 5.0);
  EXPECT_EQ(study.row(OptLevel::kO2).seconds, 7.1);
  EXPECT_THROW(PowerStudy(PowerModel::itanium2()).relative_table(),
               pk::InvalidArgumentError);
}

TEST(PowerStudy, FactsDriveTheRecommendationRules) {
  const auto study = table_like_study();
  pk::rules::RuleHarness h;
  pk::rules::builtin::use(h, pk::rules::builtin::power());
  EXPECT_EQ(study.assert_facts(h), 4u);
  h.process_rules();
  // One recommendation each for low power, low energy, balanced.
  ASSERT_EQ(h.diagnoses_for("LowPowerSetting").size(), 1u);
  ASSERT_EQ(h.diagnoses_for("LowEnergySetting").size(), 1u);
  ASSERT_EQ(h.diagnoses_for("BalancedSetting").size(), 1u);
  // Low energy must be the fastest level here (O3): energy ~ time.
  EXPECT_EQ(h.diagnoses_for("LowEnergySetting")[0].event, "O3");
}

TEST(PowerStudy, InvalidInputsRejected) {
  PowerStudy study(PowerModel::itanium2());
  CounterVector agg;
  EXPECT_THROW(study.add(OptLevel::kO0, agg, 1.0, 0),
               pk::InvalidArgumentError);
  EXPECT_THROW(study.add(OptLevel::kO0, agg, 0.0, 4),
               pk::InvalidArgumentError);
  EXPECT_THROW((void)study.row(OptLevel::kO2), pk::NotFoundError);
}
