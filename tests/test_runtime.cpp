// Tests for the virtual-clock runtime: OpenMP team scheduling and the
// simulated MPI world.
#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"
#include "machine/machine.hpp"
#include "runtime/mpi.hpp"
#include "runtime/omp.hpp"

namespace pk = perfknow;
using pk::machine::Machine;
using pk::machine::MachineConfig;
using pk::runtime::MpiRequest;
using pk::runtime::MpiWorld;
using pk::runtime::OmpTeam;
using pk::runtime::ParallelForResult;
using pk::runtime::Schedule;

namespace {

Machine altix() { return Machine(MachineConfig::altix300()); }

}  // namespace

TEST(Schedule, Names) {
  EXPECT_EQ(Schedule::static_even().name(), "static");
  EXPECT_EQ(Schedule::static_chunked(100).name(), "static,100");
  EXPECT_EQ(Schedule::dynamic(1).name(), "dynamic,1");
  EXPECT_EQ(Schedule::guided(8).name(), "guided,8");
}

TEST(OmpTeam, ConstructionLimits) {
  auto m = altix();
  EXPECT_THROW(OmpTeam(m, 0), pk::InvalidArgumentError);
  EXPECT_THROW(OmpTeam(m, 17), pk::InvalidArgumentError);  // 16 CPUs
  OmpTeam team(m, 16);
  EXPECT_EQ(team.num_threads(), 16u);
  EXPECT_EQ(team.cpu_of(3), 3u);
  EXPECT_EQ(team.node_of(3), 1u);
}

TEST(OmpTeam, AllIterationsRunExactlyOnce) {
  auto m = altix();
  OmpTeam team(m, 4);
  for (const auto sched : {Schedule::static_even(), Schedule::static_chunked(3),
                           Schedule::dynamic(1), Schedule::dynamic(5),
                           Schedule::guided(1)}) {
    std::vector<int> seen(100, 0);
    const auto r = team.parallel_for(
        100, sched, [&](std::uint64_t i, unsigned) {
          ++seen[i];
          return 10;
        });
    for (int s : seen) EXPECT_EQ(s, 1) << sched.name();
    const auto total = std::accumulate(r.iterations_run.begin(),
                                       r.iterations_run.end(), 0ull);
    EXPECT_EQ(total, 100u) << sched.name();
    EXPECT_EQ(r.total_iterations, 100u);
  }
}

TEST(OmpTeam, StaticEvenSplitsContiguously) {
  auto m = altix();
  OmpTeam team(m, 4);
  std::vector<unsigned> owner(8, 99);
  (void)team.parallel_for(8, Schedule::static_even(),
                          [&](std::uint64_t i, unsigned t) {
                            owner[i] = t;
                            return 1;
                          });
  EXPECT_EQ(owner, (std::vector<unsigned>{0, 0, 1, 1, 2, 2, 3, 3}));
}

TEST(OmpTeam, UniformWorkIsBalanced) {
  auto m = altix();
  OmpTeam team(m, 8);
  const auto r = team.parallel_for(
      800, Schedule::static_even(),
      [](std::uint64_t, unsigned) { return 100; });
  EXPECT_NEAR(r.imbalance(), 0.0, 1e-9);
  for (const auto w : r.work_cycles) EXPECT_EQ(w, 10000u);
}

TEST(OmpTeam, TriangularWorkImbalancedUnderStaticBalancedUnderDynamic) {
  // Decreasing per-iteration cost, like MSAP's triangular pair loop.
  auto m = altix();
  OmpTeam team(m, 8);
  auto body = [](std::uint64_t i, unsigned) { return 10 * (1000 - i); };
  const auto st = team.parallel_for(1000, Schedule::static_even(), body);
  const auto dy = team.parallel_for(1000, Schedule::dynamic(1), body);
  EXPECT_GT(st.imbalance(), 0.25);  // the paper's rule threshold
  EXPECT_LT(dy.imbalance(), 0.05);
  EXPECT_LT(dy.elapsed_cycles, st.elapsed_cycles);
}

TEST(OmpTeam, BarrierWaitMirrorsWork) {
  auto m = altix();
  OmpTeam team(m, 4);
  // Thread with more work waits less: work+wait is equal across threads.
  auto body = [](std::uint64_t i, unsigned) { return (i % 4 == 0) ? 400 : 100; };
  const auto r = team.parallel_for(64, Schedule::static_chunked(1), body);
  for (unsigned t = 0; t < 4; ++t) {
    const auto sum = r.work_cycles[t] + r.barrier_wait_cycles[t] +
                     r.dispatch_cycles[t];
    const auto sum0 = r.work_cycles[0] + r.barrier_wait_cycles[0] +
                      r.dispatch_cycles[0];
    EXPECT_EQ(sum, sum0);
  }
}

TEST(OmpTeam, DynamicDispatchOverheadGrowsWithChunkCount) {
  auto m = altix();
  OmpTeam team(m, 4);
  auto body = [](std::uint64_t, unsigned) { return 50; };
  const auto fine = team.parallel_for(1000, Schedule::dynamic(1), body);
  const auto coarse = team.parallel_for(1000, Schedule::dynamic(100), body);
  const auto fine_overhead = std::accumulate(
      fine.dispatch_cycles.begin(), fine.dispatch_cycles.end(), 0ull);
  const auto coarse_overhead = std::accumulate(
      coarse.dispatch_cycles.begin(), coarse.dispatch_cycles.end(), 0ull);
  EXPECT_GT(fine_overhead, coarse_overhead * 10);
}

TEST(OmpTeam, GuidedChunksShrink) {
  auto m = altix();
  OmpTeam team(m, 4);
  std::vector<std::uint64_t> chunk_sizes;
  std::uint64_t last = 0;
  std::uint64_t run = 0;
  unsigned last_thread = 99;
  (void)team.parallel_for(1000, Schedule::guided(1),
                          [&](std::uint64_t i, unsigned t) {
                            if (t != last_thread || i != last + 1) {
                              if (run > 0) chunk_sizes.push_back(run);
                              run = 0;
                            }
                            last = i;
                            last_thread = t;
                            ++run;
                            return 10;
                          });
  if (run > 0) chunk_sizes.push_back(run);
  ASSERT_GE(chunk_sizes.size(), 3u);
  // First chunk is remaining/(2T) = 125; later chunks shrink.
  EXPECT_EQ(chunk_sizes.front(), 125u);
  EXPECT_LT(chunk_sizes.back(), chunk_sizes.front());
}

TEST(OmpTeam, SingleChargesBarrier) {
  auto m = altix();
  OmpTeam team(m, 8);
  EXPECT_GT(team.single(1000), 1000u);
}

TEST(OmpTeam, DeterministicAcrossRuns) {
  auto m1 = altix();
  auto m2 = altix();
  OmpTeam t1(m1, 6);
  OmpTeam t2(m2, 6);
  auto body = [](std::uint64_t i, unsigned) { return 7 * (i % 13) + 3; };
  const auto a = t1.parallel_for(500, Schedule::dynamic(2), body);
  const auto b = t2.parallel_for(500, Schedule::dynamic(2), body);
  EXPECT_EQ(a.work_cycles, b.work_cycles);
  EXPECT_EQ(a.elapsed_cycles, b.elapsed_cycles);
}

// ---------------------------------------------------------------------
// MPI
// ---------------------------------------------------------------------

TEST(MpiWorld, ConstructionLimits) {
  auto m = altix();
  EXPECT_THROW(MpiWorld(m, 0), pk::InvalidArgumentError);
  EXPECT_THROW(MpiWorld(m, 17), pk::InvalidArgumentError);
  MpiWorld w(m, 8);
  EXPECT_EQ(w.size(), 8u);
  EXPECT_EQ(w.node_of(2), 1u);
}

TEST(MpiWorld, ComputeAdvancesOneClock) {
  auto m = altix();
  MpiWorld w(m, 4);
  w.compute(2, 1000);
  EXPECT_EQ(w.clock(2), 1000u);
  EXPECT_EQ(w.clock(0), 0u);
  EXPECT_EQ(w.elapsed(), 1000u);
}

TEST(MpiWorld, SendRecvDeliversAfterWireTime) {
  auto m = altix();
  MpiWorld w(m, 4);
  const auto bytes = 1 << 20;
  const auto sreq = w.isend(0, 3, bytes);
  const auto rreq = w.irecv(3, 0, bytes);
  w.wait(0, sreq);
  w.wait(3, rreq);
  // Receiver clock >= wire transfer time of 1MB.
  EXPECT_GE(w.clock(3), w.transfer_cycles(0, 3, bytes));
  // Sender is not blocked by the transfer (eager Isend).
  EXPECT_LT(w.clock(0), w.transfer_cycles(0, 3, bytes));
}

TEST(MpiWorld, LateSenderStallsReceiver) {
  auto m = altix();
  MpiWorld w(m, 2);
  w.compute(0, 1000000);  // sender is busy first
  const auto sreq = w.isend(0, 1, 1024);
  const auto rreq = w.irecv(1, 0, 1024);
  w.wait(1, rreq);
  EXPECT_GT(w.clock(1), 1000000u);
  w.wait(0, sreq);
}

TEST(MpiWorld, EarlyReceiverWaitsOnlyUntilArrival) {
  auto m = altix();
  MpiWorld w(m, 2);
  const auto rreq = w.irecv(1, 0, 1024);
  const auto sreq = w.isend(0, 1, 1024);
  w.wait(1, rreq);
  const auto t1 = w.clock(1);
  w.wait(0, sreq);
  EXPECT_GT(t1, 0u);
}

TEST(MpiWorld, MessagesMatchInFifoOrderPerTag) {
  auto m = altix();
  MpiWorld w(m, 2);
  const auto s1 = w.isend(0, 1, 100, /*tag=*/7);
  const auto s2 = w.isend(0, 1, 200, /*tag=*/7);
  const auto r1 = w.irecv(1, 0, 100, 7);
  const auto r2 = w.irecv(1, 0, 200, 7);
  w.wait(1, r1);
  w.wait(1, r2);
  w.wait(0, s1);
  w.wait(0, s2);
  SUCCEED();
}

TEST(MpiWorld, WaitWithoutMatchingSendThrows) {
  auto m = altix();
  MpiWorld w(m, 2);
  const auto r = w.irecv(1, 0, 64);
  EXPECT_THROW(w.wait(1, r), pk::InvalidArgumentError);
  // Double wait on the same request also throws (request is consumed).
  const auto s = w.isend(0, 1, 64);
  w.wait(0, s);
  EXPECT_THROW(w.wait(0, s), pk::InvalidArgumentError);
}

TEST(MpiWorld, BarrierSynchronizesClocks) {
  auto m = altix();
  MpiWorld w(m, 4);
  w.compute(2, 5000);
  w.barrier();
  for (unsigned r = 0; r < 4; ++r) {
    EXPECT_EQ(w.clock(r), w.clock(0));
    EXPECT_GT(w.clock(r), 5000u);
  }
}

TEST(MpiWorld, AllreduceCostGrowsWithRanksAndBytes) {
  auto m = altix();
  MpiWorld a(m, 2);
  a.allreduce(8);
  auto m2 = altix();
  MpiWorld b(m2, 16);
  b.allreduce(8);
  EXPECT_GT(b.elapsed(), a.elapsed());
  auto m3 = altix();
  MpiWorld c(m3, 16);
  c.allreduce(1 << 20);
  EXPECT_GT(c.elapsed(), b.elapsed());
}

TEST(MpiWorld, FartherRanksCostMore) {
  auto m = altix();
  MpiWorld w(m, 16);
  EXPECT_GT(w.transfer_cycles(0, 15, 4096), w.transfer_cycles(0, 1, 4096));
}

TEST(MpiWorld, HookObservesOperations) {
  auto m = altix();
  MpiWorld w(m, 2);
  std::vector<pk::runtime::MpiEvent> events;
  w.set_hook([&](const pk::runtime::MpiEvent& e) { events.push_back(e); });
  const auto s = w.isend(0, 1, 256);
  const auto r = w.irecv(1, 0, 256);
  w.wait(1, r);
  w.wait(0, s);
  w.local_copy(0, 1024);
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].kind, pk::runtime::MpiEvent::Kind::kIsend);
  EXPECT_EQ(events[1].kind, pk::runtime::MpiEvent::Kind::kIrecv);
  EXPECT_EQ(events[4].kind, pk::runtime::MpiEvent::Kind::kCopy);
  EXPECT_EQ(events[4].bytes, 1024u);
  EXPECT_GT(events[4].end_cycles, events[4].start_cycles);
}

TEST(MpiWorld, LocalCopyCostScalesWithBytes) {
  auto m = altix();
  MpiWorld w(m, 1);
  w.local_copy(0, 1000);
  const auto t1 = w.clock(0);
  w.local_copy(0, 10000);
  EXPECT_NEAR(static_cast<double>(w.clock(0) - t1),
              static_cast<double>(t1) * 10.0, static_cast<double>(t1) * 0.1);
}
