// Edge cases of the telemetry exporters (telemetry/export.cpp): empty
// and degenerate snapshots, hostile span names through the Chrome-trace
// JSON escaper, and the histogram quantile metrics in to_trial.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"

namespace tel = perfknow::telemetry;

namespace {

std::string chrome_trace(const tel::Snapshot& snap) {
  std::ostringstream os;
  tel::write_chrome_trace(snap, os);
  return os.str();
}

}  // namespace

TEST(TelemetryExport, EmptySnapshotProducesValidEmptyDocuments) {
  tel::Snapshot snap;
  EXPECT_EQ(chrome_trace(snap),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");

  const auto trial = tel::to_trial(snap);
  // The synthetic root plus the dropped-spans accounting still exist.
  EXPECT_EQ(trial.event_count(), 1u);
  EXPECT_TRUE(trial.find_metric("TIME"));
  EXPECT_TRUE(trial.find_metric("telemetry.dropped_spans"));
  EXPECT_EQ(trial.metadata("perfknow.telemetry"), "1");
}

TEST(TelemetryExport, ZeroDurationSpansSurviveBothExporters) {
  tel::Snapshot snap;
  snap.names = {"instant"};
  snap.thread_count = 1;
  snap.spans = {{0, 0, 1000, 0, 0}};

  const auto trace = chrome_trace(snap);
  EXPECT_NE(trace.find("\"name\":\"instant\""), std::string::npos);
  EXPECT_NE(trace.find("\"dur\":0.000"), std::string::npos);

  const auto trial = tel::to_trial(snap);
  const auto e = trial.event_id("instant");
  const auto m = trial.metric_id("TIME");
  EXPECT_EQ(trial.inclusive(0, e, m), 0.0);
  EXPECT_EQ(trial.calls(0, e).calls, 1.0);
}

TEST(TelemetryExport, CounterOnlySnapshotExports) {
  tel::Snapshot snap;
  snap.counters = {{"server.requests", 7}};

  const auto trace = chrome_trace(snap);
  // No spans: ts falls back to 0 (no min-start underflow) and the
  // counter still renders as a "C" event.
  EXPECT_NE(trace.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(trace.find("\"value\":7"), std::string::npos);

  const auto trial = tel::to_trial(snap);
  const auto m = trial.metric_id("server.requests");
  EXPECT_EQ(trial.inclusive(0, trial.event_id("perfknow"), m), 7.0);
}

TEST(TelemetryExport, ChromeTraceEscapesHostileNames) {
  tel::Snapshot snap;
  snap.names = {"evil \"quoted\\name\"\n\ttab", std::string("ctl\x01", 5)};
  snap.thread_count = 1;
  snap.spans = {{0, 0, 0, 10, 10}, {1, 0, 5, 5, 5}};
  snap.counters = {{"count \"er\\", 1}};

  const auto trace = chrome_trace(snap);
  EXPECT_NE(trace.find("evil \\\"quoted\\\\name\\\"\\n\\ttab"),
            std::string::npos);
  EXPECT_NE(trace.find("ctl\\u0001"), std::string::npos);
  EXPECT_NE(trace.find("count \\\"er\\\\"), std::string::npos);
  // No raw control bytes or unescaped quotes survive inside names.
  EXPECT_EQ(trace.find('\x01'), std::string::npos);
}

TEST(TelemetryExport, HistogramQuantilesAndMaxBecomeMetrics) {
  tel::Snapshot snap;
  tel::HistogramSample s;
  s.name = "lat";
  s.count = 100;
  s.sum = 90 * 100 + 10 * 100000;
  s.min = 100;
  s.max = 100000;
  s.p50 = 127.0;     // upper bound of the log2 bucket holding the median
  s.p95 = 100000.0;  // clamped to the observed max
  snap.histograms.push_back(s);

  const auto trial = tel::to_trial(snap);
  const auto root = trial.event_id("perfknow");
  EXPECT_EQ(trial.inclusive(0, root, trial.metric_id("lat.count")), 100.0);
  EXPECT_EQ(trial.inclusive(0, root, trial.metric_id("lat.p50")), 127.0);
  EXPECT_EQ(trial.inclusive(0, root, trial.metric_id("lat.p95")),
            100000.0);
  EXPECT_EQ(trial.inclusive(0, root, trial.metric_id("lat.max")),
            100000.0);
}

TEST(TelemetryHistogram, SnapshotComputesQuantilesFromLiveRecords) {
  tel::reset();
  tel::set_enabled(true);
  auto& h = tel::histogram("export.test.lat");
  for (int i = 0; i < 95; ++i) h.record(10);
  for (int i = 0; i < 5; ++i) h.record(5000);
  tel::set_enabled(false);

  const auto snap = tel::snapshot();
  const tel::HistogramSample* s = nullptr;
  for (const auto& hs : snap.histograms) {
    if (hs.name == "export.test.lat") s = &hs;
  }
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 100u);
  EXPECT_EQ(s->min, 10u);
  EXPECT_EQ(s->max, 5000u);
  // 95 of 100 records are 10 (log2 bucket 4, upper bound 15), so both
  // the p50 and p95 targets land there.
  EXPECT_EQ(s->p50, 15.0);
  EXPECT_EQ(s->p95, 15.0);
  ASSERT_EQ(s->sketch.size(), tel::HistogramSample::kSketchBuckets);
  std::uint64_t total = 0;
  for (const auto b : s->sketch) total += b;
  EXPECT_EQ(total, 100u);
  tel::reset();
}
