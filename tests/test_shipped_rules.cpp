// Guards the shipped rules/*.rules files against drifting from the
// embedded rulebases (they are generated from the same strings).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "rules/parser.hpp"
#include "rules/rulebases.hpp"
#include "script/ast.hpp"

namespace pk = perfknow;
namespace fs = std::filesystem;
namespace rb = pk::rules::builtin;

namespace {

fs::path rules_dir() { return fs::path(PERFKNOW_SOURCE_DIR) / "rules"; }

std::string slurp(const fs::path& p) {
  std::ifstream is(p);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

}  // namespace

TEST(ShippedRules, FilesExistParseAndMatchBuiltins) {
  const std::vector<std::pair<std::string, std::string>> files = {
      {"stalls_per_cycle.rules", std::string(rb::stalls_per_cycle())},
      {"load_imbalance.rules", std::string(rb::load_imbalance())},
      {"inefficiency.rules", std::string(rb::inefficiency())},
      {"stall_coverage.rules", std::string(rb::stall_coverage())},
      {"memory_locality.rules", std::string(rb::memory_locality())},
      {"power.rules", std::string(rb::power())},
      {"communication.rules", std::string(rb::communication())},
      {"instrumentation.rules", std::string(rb::instrumentation())},
      {"openmp.rules", std::string(rb::openmp())},
      {"OpenUHRules.rules", rb::openuh_rules()},
  };
  for (const auto& [name, builtin] : files) {
    const auto path = rules_dir() / name;
    ASSERT_TRUE(fs::exists(path)) << path;
    const auto content = slurp(path);
    EXPECT_EQ(content, builtin) << name << " drifted from the builtin";
    EXPECT_GE(pk::rules::load_rules(path).size(), 1u) << name;
  }
}

TEST(ShippedRules, ExampleScriptParses) {
  const auto script = fs::path(PERFKNOW_SOURCE_DIR) / "examples" /
                      "scripts" / "stall_analysis.ps";
  ASSERT_TRUE(fs::exists(script));
  // The script must at least tokenize and parse (running it needs a
  // populated repository, covered by the scripted_analysis example).
  std::ifstream is(script);
  std::ostringstream ss;
  ss << is.rdbuf();
  EXPECT_NO_THROW((void)pk::script::parse_program(ss.str()));
}
