// Guards the shipped rules/*.rules files against drifting from the
// embedded rulebases (they are generated from the same strings).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "rules/diagnosis.hpp"
#include "rules/parser.hpp"
#include "rules/rulebases.hpp"
#include "script/ast.hpp"

namespace pk = perfknow;
namespace fs = std::filesystem;
namespace rb = pk::rules::builtin;

namespace {

fs::path rules_dir() { return fs::path(PERFKNOW_SOURCE_DIR) / "rules"; }

std::string slurp(const fs::path& p) {
  std::ifstream is(p);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

}  // namespace

TEST(ShippedRules, FilesExistParseAndMatchBuiltins) {
  const std::vector<std::pair<std::string, std::string>> files = {
      {"stalls_per_cycle.rules", std::string(rb::stalls_per_cycle())},
      {"load_imbalance.rules", std::string(rb::load_imbalance())},
      {"inefficiency.rules", std::string(rb::inefficiency())},
      {"stall_coverage.rules", std::string(rb::stall_coverage())},
      {"memory_locality.rules", std::string(rb::memory_locality())},
      {"power.rules", std::string(rb::power())},
      {"communication.rules", std::string(rb::communication())},
      {"instrumentation.rules", std::string(rb::instrumentation())},
      {"openmp.rules", std::string(rb::openmp())},
      {"self_diagnosis.rules", std::string(rb::self_diagnosis())},
      {"regression.rules", std::string(rb::regression())},
      {"rule_tuning.rules", std::string(rb::rule_tuning())},
      {"OpenUHRules.rules", rb::openuh_rules()},
  };
  for (const auto& [name, builtin] : files) {
    const auto path = rules_dir() / name;
    ASSERT_TRUE(fs::exists(path)) << path;
    const auto content = slurp(path);
    EXPECT_EQ(content, builtin) << name << " drifted from the builtin";
    EXPECT_GE(pk::rules::load_rules(path).size(), 1u) << name;
  }
}

// Diagnosis::to_string() is rendered into reports and example output;
// pin the exact format so downstream parsers don't silently break.
TEST(ShippedRules, DiagnosisToStringFormatIsStable) {
  pk::rules::Diagnosis d;
  d.rule = "Repository Cache Thrashing";
  d.problem = "RepositoryCacheThrashing";
  d.event = "perfdmf.repository";
  d.metric = "cache.hit_rate";
  d.severity = 0.96;
  d.message = "hit rate 4%";
  d.recommendation = "raise the cache budget";
  EXPECT_EQ(d.to_string(),
            "[RepositoryCacheThrashing] perfdmf.repository {cache.hit_rate}"
            " (severity 0.96, rule \"Repository Cache Thrashing\")"
            ": hit rate 4% -> raise the cache budget");

  pk::rules::Diagnosis bare;
  bare.rule = "r";
  bare.problem = "P";
  bare.event = "e";
  bare.severity = 1.0;
  EXPECT_EQ(bare.to_string(), "[P] e (severity 1.00, rule \"r\")");
}

TEST(ShippedRules, ExampleScriptParses) {
  const auto script = fs::path(PERFKNOW_SOURCE_DIR) / "examples" /
                      "scripts" / "stall_analysis.ps";
  ASSERT_TRUE(fs::exists(script));
  // The script must at least tokenize and parse (running it needs a
  // populated repository, covered by the scripted_analysis example).
  std::ifstream is(script);
  std::ostringstream ss;
  ss << is.rdbuf();
  EXPECT_NO_THROW((void)pk::script::parse_program(ss.str()));
}
