// Drives the pkx CLI (tools::pkx_main) end to end against in-memory
// streams: the exit-code contract (0 ok / 1 error / 2 usage / 3
// regression), per-subcommand usage on bad arguments, and the
// bench2pkb -> diff -> history dogfood loop the CI perf gate runs.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "perfdmf/repository.hpp"
#include "profile/profile.hpp"
#include "provenance/explanation.hpp"
#include "tools/pkx_cli.hpp"

namespace pk = perfknow;
namespace fs = std::filesystem;

namespace {

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() /
           ("perfknow_pkx_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    fs::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return dir_; }

 private:
  fs::path dir_;
  static inline int counter_ = 0;
};

struct PkxResult {
  int code = 0;
  std::string out;
  std::string err;
};

PkxResult pkx(const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = pk::tools::pkx_main(args, out, err);
  return {code, out.str(), err.str()};
}

/// Writes a Google-Benchmark JSON document with the given per-benchmark
/// times (microseconds) and returns its path.
fs::path write_bench_json(
    const fs::path& file,
    const std::vector<std::pair<std::string, double>>& benchmarks) {
  std::ofstream os(file);
  os << "{\n  \"context\": {\"host_name\": \"ci\"},\n"
     << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < benchmarks.size(); ++i) {
    os << "    {\"name\": \"" << benchmarks[i].first
       << "\", \"run_type\": \"iteration\", \"iterations\": 100,"
       << " \"real_time\": " << benchmarks[i].second
       << ", \"cpu_time\": " << benchmarks[i].second
       << ", \"time_unit\": \"us\"}";
    os << (i + 1 < benchmarks.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
  return file;
}

/// Seeds a repository directory with versions v1 (baseline) and v2
/// (identical or with one benchmark slowed by `slowdown`).
void seed_history(const fs::path& repo, const fs::path& scratch,
                  double slowdown) {
  const auto base = write_bench_json(
      scratch / "base.json",
      {{"BM_Parse", 120.0}, {"BM_Match", 45.0}, {"BM_Assert", 8.0}});
  const auto cur = write_bench_json(
      scratch / "cur.json", {{"BM_Parse", 120.0 * slowdown},
                             {"BM_Match", 45.0},
                             {"BM_Assert", 8.0}});
  ASSERT_EQ(pkx({repo.string(), "bench2pkb", "perfknow", "bench", "v1",
                 base.string()})
                .code,
            0);
  ASSERT_EQ(pkx({repo.string(), "bench2pkb", "perfknow", "bench", "v2",
                 cur.string()})
                .code,
            0);
}

}  // namespace

TEST(PkxUsage, UnknownAndMissingArgsExitTwoWithSubcommandUsage) {
  const auto none = pkx({});
  EXPECT_EQ(none.code, 2);
  EXPECT_NE(none.err.find("usage:"), std::string::npos);

  TempDir dir;
  // Unknown subcommand on a real repository: full usage.
  pk::perfdmf::Repository().save(dir.path());
  const auto unknown = pkx({dir.path().string(), "frobnicate"});
  EXPECT_EQ(unknown.code, 2);
  EXPECT_NE(unknown.err.find("pkx <repo-dir> list"), std::string::npos);

  // Wrong arity: the failing subcommand's usage only.
  const auto diff = pkx({dir.path().string(), "diff", "app"});
  EXPECT_EQ(diff.code, 2);
  EXPECT_NE(diff.err.find("diff <app> <exp> <base> <current>"),
            std::string::npos);
  EXPECT_EQ(diff.err.find("export-csv"), std::string::npos);

  const auto hist = pkx({dir.path().string(), "history", "app"});
  EXPECT_EQ(hist.code, 2);
  EXPECT_NE(hist.err.find("history <app> <exp>"), std::string::npos);

  const auto prune = pkx({dir.path().string(), "prune", "a", "b"});
  EXPECT_EQ(prune.code, 2);
  EXPECT_NE(prune.err.find("--keep <n>"), std::string::npos);

  // Bad flag values are usage errors, not uncaught parse exceptions.
  const auto band = pkx({dir.path().string(), "diff", "a", "b", "v1",
                         "v2", "--band", "wide"});
  EXPECT_EQ(band.code, 2);
  EXPECT_NE(band.err.find("--band must be a positive number"),
            std::string::npos);
  // A band of zero would classify every cell as both regressed and
  // improved; zero and negative get the same diagnostic as non-numeric.
  for (const char* bad : {"0", "-0.25"}) {
    const auto r = pkx({dir.path().string(), "diff", "a", "b", "v1", "v2",
                        "--band", bad});
    EXPECT_EQ(r.code, 2) << bad;
    EXPECT_NE(r.err.find("--band must be a positive number"),
              std::string::npos)
        << r.err;
  }
  const auto keep = pkx(
      {dir.path().string(), "prune", "a", "b", "--keep", "lots"});
  EXPECT_EQ(keep.code, 2);
}

TEST(PkxErrors, PerfknowErrorsExitOneWithMessage) {
  TempDir dir;
  pk::perfdmf::Repository().save(dir.path());
  const auto missing =
      pkx({dir.path().string(), "show", "nope", "nope", "nope"});
  EXPECT_EQ(missing.code, 1);
  EXPECT_NE(missing.err.find("pkx: "), std::string::npos);
  EXPECT_NE(missing.err.find("nope"), std::string::npos);

  const auto no_repo = pkx(
      {(dir.path() / "absent").string(), "list"});
  EXPECT_EQ(no_repo.code, 1);
}

TEST(PkxDiff, IdenticalVersionsPassAndPlantedRegressionFails) {
  TempDir repo;
  TempDir scratch;
  seed_history(repo.path(), scratch.path(), 1.0);

  const auto same = pkx({repo.path().string(), "diff", "perfknow",
                         "bench", "v1", "v2"});
  EXPECT_EQ(same.code, 0) << same.err;
  EXPECT_NE(same.out.find("WithinNoiseBand"), std::string::npos);
  EXPECT_NE(same.out.find("0 regressed"), std::string::npos);

  TempDir repo2;
  TempDir scratch2;
  seed_history(repo2.path(), scratch2.path(), 2.0);
  const auto json = repo2.path() / "explanations.json";
  const auto bad =
      pkx({repo2.path().string(), "diff", "perfknow", "bench", "v1", "v2",
           "--json", json.string()});
  EXPECT_EQ(bad.code, 3) << bad.out;
  EXPECT_NE(bad.out.find("MetricRegression"), std::string::npos);
  EXPECT_NE(bad.out.find("BM_Parse"), std::string::npos);
  // The proof tree bottoms out in both versions' raw columns.
  EXPECT_NE(bad.out.find("raw column of trial 'v1'"), std::string::npos);
  EXPECT_NE(bad.out.find("raw column of trial 'v2'"), std::string::npos);

  // The exported artifact re-parses into the same number of
  // explanations (the CI gate uploads this file).
  std::ifstream is(json);
  ASSERT_TRUE(is.is_open());
  std::ostringstream ss;
  ss << is.rdbuf();
  const auto explanations =
      pk::provenance::explanations_from_json(ss.str());
  EXPECT_FALSE(explanations.empty());

  // And explain --from renders it, exit 0.
  const auto from = pkx({"explain", "--from", json.string()});
  EXPECT_EQ(from.code, 0);
  EXPECT_NE(from.out.find("explanations"), std::string::npos);
}

TEST(PkxDiff, MetricAndBandFlagsNarrowTheComparison) {
  TempDir repo;
  TempDir scratch;
  seed_history(repo.path(), scratch.path(), 2.0);

  // A band wide enough to swallow a 2x swing: gate passes.
  const auto wide = pkx({repo.path().string(), "diff", "perfknow",
                         "bench", "v1", "v2", "--band", "9.0"});
  EXPECT_EQ(wide.code, 0) << wide.out;

  const auto narrow =
      pkx({repo.path().string(), "diff", "perfknow", "bench", "v1", "v2",
           "--metric", "CPU_TIME"});
  EXPECT_EQ(narrow.code, 3);
  EXPECT_NE(narrow.out.find("CPU_TIME"), std::string::npos);
}

TEST(PkxHistory, ListsLineageWithPredecessorsAndRatios) {
  TempDir repo;
  TempDir scratch;
  seed_history(repo.path(), scratch.path(), 1.5);

  const auto hist =
      pkx({repo.path().string(), "history", "perfknow", "bench"});
  EXPECT_EQ(hist.code, 0) << hist.err;
  EXPECT_NE(hist.out.find("2 versions"), std::string::npos);
  EXPECT_NE(hist.out.find("v1"), std::string::npos);
  EXPECT_NE(hist.out.find("v2"), std::string::npos);
  // v2's row shows its predecessor and the vs-prev runtime ratio.
  EXPECT_NE(hist.out.find("x"), std::string::npos);

  // bench2pkb with an explicit --predecessor branches the chain.
  const auto branch = write_bench_json(scratch.path() / "b.json",
                                       {{"BM_Parse", 100.0}});
  ASSERT_EQ(pkx({repo.path().string(), "bench2pkb", "perfknow", "bench",
                 "v2b", branch.string(), "--predecessor", "v1"})
                .code,
            0);
  const auto again =
      pkx({repo.path().string(), "history", "perfknow", "bench"});
  EXPECT_NE(again.out.find("v2b"), std::string::npos);
  EXPECT_NE(again.out.find("3 versions"), std::string::npos);
}

TEST(PkxPrune, DropsOldVersionsAndOrphanedSnapshots) {
  TempDir repo;
  TempDir scratch;
  seed_history(repo.path(), scratch.path(), 1.0);

  const auto pruned = pkx(
      {repo.path().string(), "prune", "perfknow", "bench", "--keep", "1"});
  EXPECT_EQ(pruned.code, 0) << pruned.err;
  EXPECT_NE(pruned.out.find("pruned 1 version(s) (v1)"),
            std::string::npos);

  const auto hist =
      pkx({repo.path().string(), "history", "perfknow", "bench"});
  EXPECT_NE(hist.out.find("1 versions"), std::string::npos);
  EXPECT_EQ(hist.out.find("v1"), std::string::npos);

  // Every surviving .pkb is referenced by the fresh index.
  std::size_t pkbs = 0;
  for (const auto& entry :
       fs::recursive_directory_iterator(repo.path())) {
    if (entry.path().extension() == ".pkb") ++pkbs;
  }
  EXPECT_EQ(pkbs, 1u);
}

TEST(PkxImport, AutoDetectsBenchmarkJson) {
  TempDir repo;
  TempDir scratch;
  pk::perfdmf::Repository().save(repo.path());
  const auto file = write_bench_json(scratch.path() / "suite.json",
                                     {{"BM_A", 10.0}, {"BM_B", 20.0}});
  const auto imported = pkx({repo.path().string(), "import",
                             file.string(), "app", "exp"});
  EXPECT_EQ(imported.code, 0) << imported.err;

  const auto shown =
      pkx({repo.path().string(), "show", "app", "exp", "suite"});
  EXPECT_EQ(shown.code, 0) << shown.err;
  EXPECT_NE(shown.out.find("BM_A"), std::string::npos);
  EXPECT_NE(shown.out.find("bench.host_name"), std::string::npos);
}

TEST(PkxRulesProfile, ProfilesStoresAndDiagnosesAPlantedRule) {
  TempDir repo;
  TempDir scratch;
  ASSERT_EQ(pkx({"demo", repo.path().string()}).code, 0);

  // A rule whose residual (cv > x1 + 1e6) never holds: every pair of
  // LoadBalanceFacts is probed at level 2 and none survive, the
  // signature rules/rule_tuning.rules diagnoses as a join explosion.
  const auto planted = scratch.path() / "planted.rules";
  {
    std::ofstream os(planted);
    os << "rule \"Planted Cross Product\"\n"
          "when\n"
          "    a : LoadBalanceFact( x1 : cv )\n"
          "    b : LoadBalanceFact( )\n"
          "    c : LoadBalanceFact( cv > x1 + 1000000.0 )\n"
          "then\n"
          "end\n";
  }
  const auto json_file = scratch.path() / "explanations.json";

  const auto run = pkx({repo.path().string(), "rules-profile",
                        "Fluid Dynamic", "rib 90", "OpenMP_unopt_16p_O2",
                        "--rules", planted.string(), "--json",
                        json_file.string()});
  ASSERT_EQ(run.code, 0) << run.err;

  // The attribution table names the planted rule with its probe counts.
  EXPECT_NE(run.out.find("rules profile for Fluid Dynamic"),
            std::string::npos);
  EXPECT_NE(run.out.find("Planted Cross Product"), std::string::npos);
  EXPECT_NE(run.out.find("admissions"), std::string::npos);

  // The rule_tuning pass diagnoses it, with a proof tree grounded in
  // the profile facts, and exports the same diagnosis as JSON.
  EXPECT_NE(run.out.find("CombinatorialJoinExplosion"), std::string::npos);
  std::ifstream is(json_file);
  const std::string exported((std::istreambuf_iterator<char>(is)),
                             std::istreambuf_iterator<char>());
  EXPECT_NE(exported.find("CombinatorialJoinExplosion"),
            std::string::npos);

  // The profile itself is a first-class trial in the repository.
  const auto listed = pkx({repo.path().string(), "list"});
  EXPECT_NE(listed.out.find("OpenMP_unopt_16p_O2-rules-profile"),
            std::string::npos);
  const auto shown =
      pkx({repo.path().string(), "show", "Fluid Dynamic", "rib 90",
           "OpenMP_unopt_16p_O2-rules-profile"});
  EXPECT_EQ(shown.code, 0) << shown.err;
  EXPECT_NE(shown.out.find("Planted Cross Product"), std::string::npos);
}

TEST(PkxRulesProfile, UsageAndErrorExits) {
  TempDir repo;
  pk::perfdmf::Repository().save(repo.path());

  // Missing positionals and dangling flags exit 2 with the usage line.
  const auto missing = pkx({repo.path().string(), "rules-profile", "app"});
  EXPECT_EQ(missing.code, 2);
  EXPECT_NE(missing.err.find("rules-profile"), std::string::npos);
  const auto dangling = pkx({repo.path().string(), "rules-profile", "app",
                             "exp", "trial", "--rules"});
  EXPECT_EQ(dangling.code, 2);

  // Unknown trial is an ordinary error: exit 1, message on stderr.
  const auto gone = pkx(
      {repo.path().string(), "rules-profile", "app", "exp", "trial"});
  EXPECT_EQ(gone.code, 1);
  EXPECT_FALSE(gone.err.empty());
}
