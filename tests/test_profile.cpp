// Unit tests for the profile data model (Trial).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "profile/profile.hpp"

namespace pk = perfknow;
using pk::profile::Trial;

namespace {

Trial make_small_trial() {
  Trial t("small");
  t.set_thread_count(2);
  const auto time = t.add_metric("TIME", "usec");
  const auto main = t.add_event("main");
  const auto loop = t.add_event("loop", main);
  t.set_inclusive(0, main, time, 100.0);
  t.set_exclusive(0, main, time, 40.0);
  t.set_inclusive(0, loop, time, 60.0);
  t.set_exclusive(0, loop, time, 60.0);
  t.set_inclusive(1, main, time, 120.0);
  t.set_exclusive(1, main, time, 30.0);
  t.set_inclusive(1, loop, time, 90.0);
  t.set_exclusive(1, loop, time, 90.0);
  t.set_calls(0, main, 1, 1);
  t.set_calls(0, loop, 5, 0);
  return t;
}

}  // namespace

TEST(Trial, SchemaIsIdempotent) {
  Trial t("x");
  const auto m1 = t.add_metric("TIME");
  const auto m2 = t.add_metric("TIME");
  EXPECT_EQ(m1, m2);
  const auto e1 = t.add_event("main");
  const auto e2 = t.add_event("main");
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(t.metric_count(), 1u);
  EXPECT_EQ(t.event_count(), 1u);
}

TEST(Trial, LookupsAndErrors) {
  Trial t = make_small_trial();
  EXPECT_TRUE(t.find_metric("TIME").has_value());
  EXPECT_FALSE(t.find_metric("NOPE").has_value());
  EXPECT_THROW((void)t.metric_id("NOPE"), pk::NotFoundError);
  EXPECT_THROW((void)t.event_id("nope"), pk::NotFoundError);
  EXPECT_THROW((void)t.inclusive(5, 0, 0), pk::InvalidArgumentError);
  EXPECT_THROW((void)t.inclusive(0, 99, 0), pk::InvalidArgumentError);
  EXPECT_THROW((void)t.inclusive(0, 0, 99), pk::InvalidArgumentError);
}

TEST(Trial, ValuesSurviveSchemaGrowth) {
  // Adding metrics/events after data exists must preserve the cube.
  Trial t = make_small_trial();
  const auto time = t.metric_id("TIME");
  const auto loop = t.event_id("loop");
  t.add_metric("CPU_CYCLES");
  t.add_event("extra");
  EXPECT_DOUBLE_EQ(t.inclusive(1, loop, time), 90.0);
  EXPECT_DOUBLE_EQ(t.exclusive(0, loop, time), 60.0);
  EXPECT_DOUBLE_EQ(t.calls(0, loop).calls, 5.0);
  // New cells start at zero.
  const auto extra = t.event_id("extra");
  EXPECT_DOUBLE_EQ(t.inclusive(0, extra, time), 0.0);
}

TEST(Trial, ThreadGrowthAllowedShrinkForbidden) {
  Trial t = make_small_trial();
  t.set_thread_count(4);
  EXPECT_EQ(t.thread_count(), 4u);
  const auto time = t.metric_id("TIME");
  EXPECT_DOUBLE_EQ(t.inclusive(3, t.event_id("main"), time), 0.0);
  EXPECT_DOUBLE_EQ(t.inclusive(0, t.event_id("main"), time), 100.0);
  EXPECT_THROW(t.set_thread_count(1), pk::InvalidArgumentError);
}

TEST(Trial, AcrossThreadsAndMeans) {
  const Trial t = make_small_trial();
  const auto time = t.metric_id("TIME");
  const auto loop = t.event_id("loop");
  const auto xs = t.exclusive_across_threads(loop, time);
  ASSERT_EQ(xs.size(), 2u);
  EXPECT_DOUBLE_EQ(xs[0], 60.0);
  EXPECT_DOUBLE_EQ(xs[1], 90.0);
  EXPECT_DOUBLE_EQ(t.mean_exclusive(loop, time), 75.0);
  EXPECT_DOUBLE_EQ(t.mean_inclusive(t.event_id("main"), time), 110.0);
}

TEST(Trial, CallgraphQueries) {
  Trial t = make_small_trial();
  const auto main = t.event_id("main");
  const auto loop = t.event_id("loop");
  const auto inner = t.add_event("inner", loop);
  EXPECT_TRUE(t.is_nested_under(inner, main));
  EXPECT_TRUE(t.is_nested_under(loop, main));
  EXPECT_FALSE(t.is_nested_under(main, loop));
  const auto kids = t.children_of(main);
  ASSERT_EQ(kids.size(), 1u);
  EXPECT_EQ(kids[0], loop);
}

TEST(Trial, MainEventPrefersName) {
  Trial t = make_small_trial();
  EXPECT_EQ(t.main_event(), t.event_id("main"));
}

TEST(Trial, MainEventFallsBackToLargestInclusive) {
  Trial t("anon");
  t.set_thread_count(1);
  const auto m = t.add_metric("TIME");
  const auto a = t.add_event("worker_a");
  const auto b = t.add_event("driver");
  t.set_inclusive(0, a, m, 10.0);
  t.set_inclusive(0, b, m, 100.0);
  EXPECT_EQ(t.main_event(), b);
}

TEST(Trial, MainEventOnEmptyTrialThrows) {
  Trial t("empty");
  EXPECT_THROW((void)t.main_event(), pk::NotFoundError);
}

TEST(Trial, AccumulateAddsUp) {
  Trial t("acc");
  t.set_thread_count(1);
  const auto m = t.add_metric("TIME");
  const auto e = t.add_event("ev");
  t.accumulate_exclusive(0, e, m, 5.0);
  t.accumulate_exclusive(0, e, m, 7.0);
  t.accumulate_inclusive(0, e, m, 12.0);
  t.accumulate_calls(0, e, 1, 2);
  t.accumulate_calls(0, e, 1, 3);
  EXPECT_DOUBLE_EQ(t.exclusive(0, e, m), 12.0);
  EXPECT_DOUBLE_EQ(t.inclusive(0, e, m), 12.0);
  EXPECT_DOUBLE_EQ(t.calls(0, e).calls, 2.0);
  EXPECT_DOUBLE_EQ(t.calls(0, e).subcalls, 5.0);
}

TEST(Trial, Metadata) {
  Trial t("md");
  t.set_metadata("schedule", "dynamic,1");
  ASSERT_TRUE(t.metadata("schedule").has_value());
  EXPECT_EQ(*t.metadata("schedule"), "dynamic,1");
  EXPECT_FALSE(t.metadata("absent").has_value());
  t.set_metadata("schedule", "static");
  EXPECT_EQ(*t.metadata("schedule"), "static");
}

TEST(Trial, BadParentInAddEventThrows) {
  Trial t("bad");
  EXPECT_THROW(t.add_event("x", 42), pk::InvalidArgumentError);
}
