// Tests for the PerfExplorer script bindings — including the paper's
// Fig. 1 script, ported line-for-line.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>

#include "common/error.hpp"
#include "hwcounters/counters.hpp"
#include "perfdmf/repository.hpp"
#include "script/bindings.hpp"

namespace pk = perfknow;
using pk::perfdmf::Repository;
using pk::profile::Trial;
using pk::script::AnalysisSession;

namespace {

// A trial shaped like the paper's: one hot event with a high stall rate
// (>10% of runtime), others healthy.
std::shared_ptr<Trial> make_stall_trial() {
  auto t = std::make_shared<Trial>("1_8");
  t->set_thread_count(4);
  const auto time = t->add_metric("TIME", "usec");
  const auto cyc = t->add_metric("CPU_CYCLES");
  const auto stall = t->add_metric("BACK_END_BUBBLE_ALL");
  const auto main = t->add_event("main");
  const auto hot = t->add_event("exchange_var__", main);
  const auto cold = t->add_event("matxvec", main);
  for (std::size_t th = 0; th < 4; ++th) {
    t->set_inclusive(th, main, time, 1000.0);
    t->set_exclusive(th, main, time, 100.0);
    t->set_inclusive(th, main, cyc, 1.5e9);
    t->set_exclusive(th, main, cyc, 1e8);
    t->set_inclusive(th, main, stall, 4.0e8);

    t->set_inclusive(th, hot, time, 500.0);
    t->set_exclusive(th, hot, time, 500.0);  // 50% of runtime
    t->set_inclusive(th, hot, cyc, 7e8);
    t->set_exclusive(th, hot, cyc, 7e8);
    t->set_inclusive(th, hot, stall, 3.5e8);  // 0.5 stalls/cycle
    t->set_exclusive(th, hot, stall, 3.5e8);

    t->set_inclusive(th, cold, time, 400.0);
    t->set_exclusive(th, cold, time, 400.0);
    t->set_inclusive(th, cold, cyc, 7e8);
    t->set_exclusive(th, cold, cyc, 7e8);
    t->set_inclusive(th, cold, stall, 3.5e7);  // 0.05 stalls/cycle
    t->set_exclusive(th, cold, stall, 3.5e7);
  }
  return t;
}

}  // namespace

TEST(Bindings, Figure1ScriptEndToEnd) {
  Repository repo;
  repo.put("Fluid Dynamic", "rib 45", make_stall_trial());
  AnalysisSession session(pk::script::SessionOptions{&repo});

  // The paper's Fig. 1 script, ported to PerfScript (same call surface).
  session.run(R"(
# create a rulebase for processing
ruleHarness = RuleHarness.useGlobalRules("openuh/OpenUHRules.drl")
# load a trial
trial = TrialMeanResult(Utilities.getTrial("Fluid Dynamic", "rib 45", "1_8"))
# calculate the derived metric
stalls = "BACK_END_BUBBLE_ALL"
cycles = "CPU_CYCLES"
operator = DeriveMetricOperation(trial, stalls, cycles,
                                 DeriveMetricOperation.DIVIDE)
derived = operator.processData().get(0)
mainEvent = derived.getMainEvent()
# compare values to average for application
for event in derived.getEvents():
    MeanEventFact.compareEventToMain(derived, mainEvent, derived, event)
# process the rules
ruleHarness.processRules()
)");

  // The Fig. 2 rule fired for the hot event only.
  const auto& diags = session.harness().diagnoses_for("HighStallPerCycle");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].event, "exchange_var__");
  EXPECT_NEAR(diags[0].severity, 0.5, 0.01);
  // Its println-style output was emitted through the harness.
  bool found = false;
  for (const auto& line : session.output()) {
    if (line.find("exchange_var__ has a higher than average stall") !=
        std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Bindings, DerivedMetricValuesAreQuotients) {
  Repository repo;
  repo.put("app", "exp", make_stall_trial());
  AnalysisSession session(pk::script::SessionOptions{&repo});
  session.run(R"(
trial = TrialMeanResult(Utilities.getTrial("app", "exp", "1_8"))
op = DeriveMetricOperation(trial, "BACK_END_BUBBLE_ALL", "CPU_CYCLES",
                           DeriveMetricOperation.DIVIDE)
derived = op.processData().get(0)
print(derived.getMetric())
print(derived.getExclusive("exchange_var__"))
print(derived.getExclusive("matxvec"))
)");
  const auto& out = session.output();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], "(BACK_END_BUBBLE_ALL / CPU_CYCLES)");
  EXPECT_DOUBLE_EQ(std::stod(out[1]), 0.5);
  EXPECT_DOUBLE_EQ(std::stod(out[2]), 0.05);
}

TEST(Bindings, TrialAccessorsAndErrors) {
  Repository repo;
  auto t = make_stall_trial();
  t->set_metadata("schedule", "static");
  repo.put("app", "exp", t);
  AnalysisSession session(pk::script::SessionOptions{&repo});
  session.run(R"(
trial = Utilities.getTrial("app", "exp", "1_8")
print(trial.getName())
print(trial.getThreadCount())
print(trial.getMetadata("schedule"))
print(trial.getMetadata("missing"))
result = TrialMeanResult(trial)
print(result.getMainEvent())
print(len(result.getEvents()))
print(result.getMetric())
)");
  const auto& out = session.output();
  EXPECT_EQ(out[0], "1_8");
  EXPECT_EQ(out[1], "4");
  EXPECT_EQ(out[2], "static");
  EXPECT_EQ(out[3], "None");
  EXPECT_EQ(out[4], "main");
  EXPECT_EQ(out[5], "3");
  EXPECT_EQ(out[6], "TIME");

  EXPECT_THROW(session.run("Utilities.getTrial('x', 'y', 'z')\n"),
               pk::NotFoundError);
  EXPECT_THROW(session.run(
                   "t = Utilities.getTrial('app', 'exp', '1_8')\n"
                   "r = TrialMeanResult(t)\n"
                   "r.setMetric('NOPE')\n"),
               pk::NotFoundError);
}

TEST(Bindings, PerThreadResultNeedsThreadArgument) {
  Repository repo;
  repo.put("app", "exp", make_stall_trial());
  AnalysisSession session(pk::script::SessionOptions{&repo});
  session.run(R"(
r = TrialResult(Utilities.getTrial("app", "exp", "1_8"))
print(r.getExclusive(2, "exchange_var__"))
)");
  EXPECT_DOUBLE_EQ(std::stod(session.output()[0]), 500.0);
}

TEST(Bindings, AssertFactAndCustomRules) {
  Repository repo;
  AnalysisSession session(pk::script::SessionOptions{&repo});
  session.run(R"(
h = RuleHarness.useGlobalRules("load_imbalance")
h.assertFact("LoadBalanceFact",
             {"eventName": "outer", "cv": 0.4, "runtimeFraction": 0.3})
h.assertFact("LoadBalanceFact",
             {"eventName": "inner", "cv": 0.5, "runtimeFraction": 0.5})
h.assertFact("NestingFact", {"parentEvent": "outer", "childEvent": "inner"})
h.assertFact("CorrelationFact",
             {"eventA": "outer", "eventB": "inner", "metric": "TIME",
              "correlation": -0.9})
fired = h.processRules()
print(fired)
for d in h.getDiagnoses():
    print(d["problem"], d["event"])
)");
  const auto& out = session.output();
  // One line of print(fired), rule output lines, then the diagnosis line.
  EXPECT_EQ(out.back(), "LoadImbalance inner");
}

TEST(Bindings, AnalysisHelpers) {
  Repository repo;
  repo.put("app", "exp", make_stall_trial());
  AnalysisSession session(pk::script::SessionOptions{&repo});
  session.run(R"(
r = TrialMeanResult(Utilities.getTrial("app", "exp", "1_8"))
print(topEvents(r, 2))
print(correlateEvents(r, "exchange_var__", "matxvec"))
lb = loadBalance(r)
print(len(lb))
n = assertLoadBalanceFacts(r)
print(n > 0)
p = estimatePower(r)
print(p["watts"] > 0 and p["joules"] > 0)
)");
  const auto& out = session.output();
  EXPECT_EQ(out[0], "['exchange_var__', 'matxvec']");
  EXPECT_EQ(out[2], "3");
  EXPECT_EQ(out[3], "True");
  EXPECT_EQ(out[4], "True");
}

TEST(Bindings, UnknownRulebaseThrows) {
  Repository repo;
  AnalysisSession session(pk::script::SessionOptions{&repo});
  EXPECT_THROW(session.run("RuleHarness.useGlobalRules('no_such_rules')\n"),
               pk::NotFoundError);
}

TEST(Bindings, RunFileMissingThrows) {
  Repository repo;
  AnalysisSession session(pk::script::SessionOptions{&repo});
  EXPECT_THROW(session.run_file("/nonexistent/script.ps"), pk::IoError);
}

TEST(Bindings, RunFilePrefixesDiagnosticsWithFileAndLine) {
  Repository repo;
  AnalysisSession session(pk::script::SessionOptions{&repo});
  const auto path = std::filesystem::temp_directory_path() /
                    ("pk_bind_err_" + std::to_string(::getpid()) + ".ps");
  {
    std::ofstream os(path);
    os << "x = 1\ny = = 2\n";
  }
  try {
    session.run_file(path);
    FAIL() << "expected ParseError";
  } catch (const pk::ParseError& e) {
    EXPECT_EQ(e.file(), path.string());
    EXPECT_EQ(e.line(), 2);
    const std::string what = e.what();
    EXPECT_EQ(what.rfind(path.string() + ":2", 0), 0u)
        << "diagnostic should read file:line: message, got: " << what;
  }
  std::filesystem::remove(path);
}

TEST(Bindings, SessionOptionsConfiguresHarnessAndPool) {
  Repository repo;
  repo.put("app", "exp", make_stall_trial());
  pk::script::SessionOptions opts;
  opts.repository = &repo;
  opts.match_strategy = pk::rules::MatchStrategy::kNaive;
  opts.threads = 2;
  AnalysisSession session(opts);
  EXPECT_EQ(session.harness().match_strategy(),
            pk::rules::MatchStrategy::kNaive);
  EXPECT_EQ(session.pool().thread_count(), 2u);
  // The private pool is installed for analysis primitives during run().
  session.run(R"(
r = TrialMeanResult(Utilities.getTrial("app", "exp", "1_8"))
print(len(loadBalance(r)))
)");
  EXPECT_EQ(session.output().back(), "3");
}

TEST(Bindings, MatchStrategyDefaultsToBetaAndIsScriptVisible) {
  Repository repo;
  pk::script::SessionOptions opts;
  opts.repository = &repo;
  AnalysisSession session(opts);
  EXPECT_EQ(session.harness().match_strategy(),
            pk::rules::MatchStrategy::kBeta);
  session.run(R"(
h = RuleHarness.getInstance()
print(h.getMatchStrategy())
h.setMatchStrategy("indexed")
print(h.getMatchStrategy())
h.setMatchStrategy("beta")
print(h.getMatchStrategy())
)");
  const auto& out = session.output();
  ASSERT_GE(out.size(), 3u);
  EXPECT_EQ(out[out.size() - 3], "beta");
  EXPECT_EQ(out[out.size() - 2], "indexed");
  EXPECT_EQ(out[out.size() - 1], "beta");
  EXPECT_THROW(session.run("RuleHarness.getInstance()"
                           ".setMatchStrategy(\"rete\")"),
               pk::InvalidArgumentError);
}

TEST(Bindings, SessionOptionsRequiresRepository) {
  EXPECT_THROW(AnalysisSession{pk::script::SessionOptions{}},
               pk::InvalidArgumentError);
}

TEST(Bindings, SessionOptionsRulesPathResolvesShippedFiles) {
  Repository repo;
  pk::script::SessionOptions opts;
  opts.repository = &repo;
  opts.rules_path = std::filesystem::path(PERFKNOW_SOURCE_DIR) / "rules";
  AnalysisSession session(opts);
  session.run(R"(
h = RuleHarness.useGlobalRules("self_diagnosis.rules")
h.assertFact("TelemetryMetricFact",
             {"name": "telemetry.dropped_spans", "value": 3})
h.processRules()
for d in h.getDiagnoses():
    print(d["problem"])
)");
  EXPECT_EQ(session.output().back(), "TelemetryRingOverflow");
}

// A bare SessionOptions{&repo} must behave exactly like the removed
// one-argument constructor did: shared pool, no telemetry, default
// strategy, provenance off.
TEST(Bindings, DefaultSessionOptionsMatchHistoricalBehaviour) {
  Repository repo;
  repo.put("app", "exp", make_stall_trial());
  AnalysisSession session(pk::script::SessionOptions{&repo});
  EXPECT_EQ(&session.repository(), &repo);
  EXPECT_EQ(session.options().threads, 0u);
  EXPECT_EQ(session.harness().provenance_mode(),
            pk::provenance::ProvenanceMode::kOff);
  session.run("print(Utilities.getTrial('app', 'exp', '1_8').getName())\n");
  EXPECT_EQ(session.output().back(), "1_8");
}

TEST(Bindings, DataMiningAndFormatHelpers) {
  Repository repo;
  repo.put("app", "exp", make_stall_trial());
  AnalysisSession session(pk::script::SessionOptions{&repo});
  const auto json_path =
      std::filesystem::temp_directory_path() /
      ("pk_bind_" + std::to_string(::getpid()) + ".json");
  const auto csv_path =
      std::filesystem::temp_directory_path() /
      ("pk_bind_" + std::to_string(::getpid()) + ".csv");
  std::string script = R"(
r = TrialMeanResult(Utilities.getTrial("app", "exp", "1_8"))
c = clusterThreads(r, 2)
print(c["k"], len(c["assignment"]))
p = pcaThreads(r, 1)
print(len(p["projected"]))
agg = aggregateThreads(r, True)
print(agg.getThreadCount())
m = mergeTrials(r, r)
print(m.getExclusive("matxvec"))
saveJson(r, "JSON_PATH")
saveCsv(r, "CSV_PATH")
print("saved")
)";
  auto replace = [&script](const std::string& from, const std::string& to) {
    script.replace(script.find(from), from.size(), to);
  };
  replace("JSON_PATH", json_path.string());
  replace("CSV_PATH", csv_path.string());
  session.run(script);
  const auto& out = session.output();
  EXPECT_EQ(out[0], "2 4");
  EXPECT_EQ(out[1], "4");
  EXPECT_EQ(out[2], "1");
  EXPECT_DOUBLE_EQ(std::stod(out[3]), 400.0);  // merge of identical trials
  EXPECT_EQ(out[4], "saved");
  EXPECT_TRUE(std::filesystem::exists(json_path));
  EXPECT_TRUE(std::filesystem::exists(csv_path));
  std::filesystem::remove(json_path);
  std::filesystem::remove(csv_path);
}
