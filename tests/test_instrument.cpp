// Tests for the instrumentation substrate: region registry, selective
// instrumentation and the TrialBuilder measurement API.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "hwcounters/counters.hpp"
#include "instrument/regions.hpp"
#include "instrument/trial_builder.hpp"

namespace pk = perfknow;
using namespace pk::instrument;
using pk::hwcounters::Counter;
using pk::hwcounters::CounterVector;

TEST(Regions, RegistryBasics) {
  RegionRegistry reg;
  Region proc;
  proc.name = "solve";
  proc.kind = RegionKind::kProcedure;
  proc.weight = 40;
  const auto p = reg.add(proc);
  Region loop;
  loop.name = "solve_loop";
  loop.kind = RegionKind::kLoop;
  loop.parent = p;
  const auto l = reg.add(loop);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.get(l).parent, p);
  EXPECT_EQ(reg.children_of(p), (std::vector<RegionId>{l}));
  EXPECT_TRUE(reg.find("solve_loop").has_value());
  EXPECT_FALSE(reg.find("nope").has_value());
  EXPECT_THROW((void)reg.get(99), pk::InvalidArgumentError);
  Region bad;
  bad.parent = 42;
  EXPECT_THROW(reg.add(bad), pk::InvalidArgumentError);
}

TEST(Regions, SelectivityScorePenalizesHotTinyRegions) {
  Region big_rare;
  big_rare.weight = 100.0;
  big_rare.estimated_calls = 2.0;
  Region tiny_hot;
  tiny_hot.weight = 2.0;
  tiny_hot.estimated_calls = 1e6;
  EXPECT_GT(selectivity_score(big_rare), 1000.0 * selectivity_score(tiny_hot));
  // Zero-call regions are treated as called once, not divided by zero.
  Region never;
  never.weight = 5.0;
  never.estimated_calls = 0.0;
  EXPECT_DOUBLE_EQ(selectivity_score(never), 5.0);
}

TEST(Regions, SelectionHonorsFlagsAndThreshold) {
  RegionRegistry reg;
  Region proc;
  proc.name = "p";
  proc.kind = RegionKind::kProcedure;
  proc.weight = 50;
  reg.add(proc);
  Region loop;
  loop.name = "l";
  loop.kind = RegionKind::kLoop;
  loop.weight = 10;
  loop.estimated_calls = 1e6;
  reg.add(loop);
  Region mpi;
  mpi.name = "MPI_Isend";
  mpi.kind = RegionKind::kMpiOperation;
  reg.add(mpi);

  // procedures_only: loop excluded by kind; MPI always on (PMPI).
  auto sel = select_regions(reg, InstrumentationFlags::procedures_only());
  ASSERT_EQ(sel.size(), 2u);
  EXPECT_EQ(reg.get(sel[0]).name, "p");
  EXPECT_EQ(reg.get(sel[1]).name, "MPI_Isend");

  // full_detail picks up the loop...
  auto full = select_regions(reg, InstrumentationFlags::full_detail());
  EXPECT_EQ(full.size(), 3u);
  // ...unless the score threshold filters the hot tiny loop out.
  auto scored = InstrumentationFlags::full_detail();
  scored.min_score = 0.001;
  EXPECT_EQ(select_regions(reg, scored).size(), 2u);
}

TEST(TrialBuilder, InclusiveExclusiveAttribution) {
  TrialBuilder b("t", 1, 1.5);
  b.enter(0, "main");
  b.add_work(0, 1500);  // 1 usec at 1.5 GHz
  b.enter(0, "loop");
  b.add_work(0, 3000);
  b.leave(0, "loop");
  b.add_work(0, 1500);
  b.leave(0, "main");
  const auto t = b.build();
  const auto time = t.metric_id("TIME");
  const auto main = t.event_id("main");
  const auto loop = t.event_id("loop");
  EXPECT_DOUBLE_EQ(t.exclusive(0, main, time), 2.0);
  EXPECT_DOUBLE_EQ(t.inclusive(0, main, time), 4.0);
  EXPECT_DOUBLE_EQ(t.exclusive(0, loop, time), 2.0);
  EXPECT_DOUBLE_EQ(t.inclusive(0, loop, time), 2.0);
  EXPECT_EQ(t.event(loop).parent, main);
  // Calls: main entered once with one subcall; loop entered once.
  EXPECT_DOUBLE_EQ(t.calls(0, main).calls, 1.0);
  EXPECT_DOUBLE_EQ(t.calls(0, main).subcalls, 1.0);
  EXPECT_DOUBLE_EQ(t.calls(0, loop).calls, 1.0);
}

TEST(TrialBuilder, CountersFlowToOpenRegions) {
  TrialBuilder b("t", 1, 1.0, {Counter::kFpOps, Counter::kL3Misses});
  CounterVector c;
  c.set(Counter::kFpOps, 100.0);
  c.set(Counter::kL3Misses, 5.0);
  b.enter(0, "main");
  b.enter(0, "kernel");
  b.add_work(0, 1000, &c);
  b.leave(0, "kernel");
  b.leave(0, "main");
  const auto t = b.build();
  const auto fp = t.metric_id("FP_OPS");
  EXPECT_DOUBLE_EQ(t.exclusive(0, t.event_id("kernel"), fp), 100.0);
  EXPECT_DOUBLE_EQ(t.exclusive(0, t.event_id("main"), fp), 0.0);
  EXPECT_DOUBLE_EQ(t.inclusive(0, t.event_id("main"), fp), 100.0);
  EXPECT_DOUBLE_EQ(
      t.inclusive(0, t.event_id("main"), t.metric_id("L3_MISSES")), 5.0);
}

TEST(TrialBuilder, CatchesUnbalancedInstrumentation) {
  TrialBuilder b("t", 2, 1.0);
  b.enter(0, "main");
  EXPECT_THROW(b.leave(0, "other"), pk::InvalidArgumentError);
  EXPECT_THROW(b.leave(1, "main"), pk::InvalidArgumentError);
  EXPECT_THROW(b.add_work(1, 10), pk::InvalidArgumentError);
  // Still-open region at build time is an error naming the region.
  try {
    (void)b.build();
    FAIL() << "expected InvalidArgumentError";
  } catch (const pk::InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("main"), std::string::npos);
  }
}

TEST(TrialBuilder, RecordLeafAndReuse) {
  TrialBuilder b("t", 1, 1.0);
  b.enter(0, "main");
  b.record_leaf(0, "kernel", 500);
  b.record_leaf(0, "kernel", 700);
  b.leave(0, "main");
  b.set_metadata("k", "v");
  const auto t = b.build();
  EXPECT_DOUBLE_EQ(t.exclusive(0, t.event_id("kernel"), 0), 1.2);
  EXPECT_DOUBLE_EQ(t.calls(0, t.event_id("kernel")).calls, 2.0);
  EXPECT_EQ(*t.metadata("k"), "v");
}

TEST(TrialBuilder, SingleUse) {
  TrialBuilder b("t", 1, 1.0);
  b.enter(0, "main");
  b.add_work(0, 1);
  b.leave(0, "main");
  (void)b.build();
  EXPECT_THROW(b.enter(0, "again"), pk::InvalidArgumentError);
  EXPECT_THROW((void)b.build(), pk::InvalidArgumentError);
}

TEST(TrialBuilder, ValidatesConstruction) {
  EXPECT_THROW(TrialBuilder("t", 0, 1.0), pk::InvalidArgumentError);
  EXPECT_THROW(TrialBuilder("t", 1, 0.0), pk::InvalidArgumentError);
}

TEST(TrialBuilder, OpenDepthTracksNesting) {
  TrialBuilder b("t", 1, 1.0);
  EXPECT_EQ(b.open_depth(0), 0u);
  b.enter(0, "a");
  b.enter(0, "b");
  EXPECT_EQ(b.open_depth(0), 2u);
  b.leave(0, "b");
  EXPECT_EQ(b.open_depth(0), 1u);
  b.leave(0, "a");
}

// ---------------------------------------------------------------------
// Instrumentation overhead estimation
// ---------------------------------------------------------------------

#include "instrument/overhead.hpp"
#include "rules/rulebases.hpp"

namespace {

pk::profile::Trial overhead_trial() {
  pk::profile::Trial t("oh");
  t.set_thread_count(2);
  const auto cyc = t.add_metric("CPU_CYCLES");
  const auto main = t.add_event("main");
  const auto fat = t.add_event("fat_kernel", main);
  const auto tiny = t.add_event("tiny_hot", main);
  for (std::size_t th = 0; th < 2; ++th) {
    t.set_inclusive(th, main, cyc, 1e9);
    t.set_calls(th, main, 1, 2);
    t.set_inclusive(th, fat, cyc, 9e8);
    t.set_calls(th, fat, 10, 0);
    t.set_inclusive(th, tiny, cyc, 1e6);
    t.set_calls(th, tiny, 1e6, 0);  // a million probes on 1M cycles
  }
  return t;
}

}  // namespace

TEST(Overhead, DilationIdentifiesHotTinyRegions) {
  const auto t = overhead_trial();
  const auto report = pk::instrument::estimate_overhead(t);
  ASSERT_EQ(report.per_event.size(), 3u);
  // Sorted by dilation: tiny_hot first.
  EXPECT_EQ(report.per_event[0].event, "tiny_hot");
  // 2M calls x 280 cycles on 2M measured cycles: dilation >> 1.
  EXPECT_GT(report.per_event[0].dilation, 100.0);
  // The fat kernel is essentially free to instrument.
  for (const auto& e : report.per_event) {
    if (e.event == "fat_kernel") {
      EXPECT_LT(e.dilation, 1e-5);
    }
  }
  // Whole-app perturbation driven by the tiny region's probes.
  EXPECT_GT(report.app_overhead_fraction, 0.2);
  // Throttle list contains exactly the dilated region.
  const auto throttle = pk::instrument::throttle_candidates(report);
  ASSERT_EQ(throttle.size(), 1u);
  EXPECT_EQ(throttle[0], "tiny_hot");
}

TEST(Overhead, WorksFromTimeWhenNoCycles) {
  pk::profile::Trial t("time_only");
  t.set_thread_count(1);
  const auto time = t.add_metric("TIME", "usec");
  const auto e = t.add_event("main");
  t.set_inclusive(0, e, time, 1000.0);  // 1000 usec = 1.5e6 cycles
  t.set_calls(0, e, 1000, 0);
  const auto report = pk::instrument::estimate_overhead(t, 280.0, 1.5);
  EXPECT_NEAR(report.per_event[0].dilation, 1000.0 * 280.0 / 1.5e6, 1e-9);
  pk::profile::Trial bare("bare");
  bare.set_thread_count(1);
  bare.add_metric("FP_OPS");
  EXPECT_THROW(pk::instrument::estimate_overhead(bare), pk::NotFoundError);
  EXPECT_THROW(pk::instrument::estimate_overhead(t, -1.0),
               pk::InvalidArgumentError);
}

TEST(Overhead, RulesFireOnDilatedRegions) {
  const auto t = overhead_trial();
  const auto report = pk::instrument::estimate_overhead(t);
  pk::rules::RuleHarness h;
  pk::rules::builtin::use(h, pk::rules::builtin::instrumentation());
  EXPECT_EQ(pk::instrument::assert_overhead_facts(h, report), 4u);
  h.process_rules();
  const auto dilated = h.diagnoses_for("InstrumentationOverhead");
  ASSERT_EQ(dilated.size(), 1u);
  EXPECT_EQ(dilated[0].event, "tiny_hot");
  ASSERT_EQ(h.diagnoses_for("ExcessiveProbeCost").size(), 1u);
}

TEST(Overhead, CleanRunIsQuiet) {
  pk::profile::Trial t("clean");
  t.set_thread_count(1);
  const auto cyc = t.add_metric("CPU_CYCLES");
  const auto main = t.add_event("main");
  t.set_inclusive(0, main, cyc, 1e9);
  t.set_calls(0, main, 1, 0);
  const auto report = pk::instrument::estimate_overhead(t);
  pk::rules::RuleHarness h;
  pk::rules::builtin::use(h, pk::rules::builtin::instrumentation());
  pk::instrument::assert_overhead_facts(h, report);
  h.process_rules();
  EXPECT_TRUE(h.diagnoses().empty());
}
