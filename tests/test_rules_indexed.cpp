// Differential tests for the indexed incremental matcher: the naive
// full-rescan matcher is the oracle, and the indexed engine must produce
// byte-identical output lines, diagnoses, and firing counts on every
// shipped rulebase and on randomized fact soups / rulebases.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "rules/engine.hpp"
#include "rules/fact.hpp"
#include "rules/parser.hpp"
#include "rules/rulebases.hpp"

namespace pk = perfknow;
using pk::rules::CmpOp;
using pk::rules::Constraint;
using pk::rules::Fact;
using pk::rules::FactValue;
using pk::rules::FieldBinding;
using pk::rules::MatchStrategy;
using pk::rules::Operand;
using pk::rules::Pattern;
using pk::rules::Rule;
using pk::rules::RuleContext;
using pk::rules::RuleHarness;

namespace {

struct RunResult {
  std::vector<std::string> output;
  std::vector<pk::rules::Diagnosis> diagnoses;
  std::vector<std::size_t> firings_per_stage;
  /// Fire-time errors (e.g. an action touching a field the matched fact
  /// lacks) are part of the observable behaviour: both strategies must
  /// fail identically, after the identical output prefix.
  std::string error;
};

bool diagnoses_equal(const pk::rules::Diagnosis& a,
                     const pk::rules::Diagnosis& b) {
  return a.rule == b.rule && a.problem == b.problem && a.event == b.event &&
         a.severity == b.severity && a.recommendation == b.recommendation;
}

/// Runs `rules` over the staged fact soup with one strategy, calling
/// process_rules after every stage (the incremental path: later stages
/// re-enter a harness whose watermarks are already advanced).
RunResult run_with(MatchStrategy strategy, const std::vector<Rule>& rules,
                   const std::vector<std::vector<Fact>>& stages) {
  RuleHarness h;
  h.set_match_strategy(strategy);
  for (const auto& r : rules) h.add_rule(r);
  RunResult res;
  for (const auto& stage : stages) {
    for (const auto& f : stage) h.assert_fact(f);
    try {
      res.firings_per_stage.push_back(h.process_rules());
    } catch (const std::exception& e) {
      res.error = e.what();
      break;
    }
  }
  res.output = h.output();
  res.diagnoses = h.diagnoses();
  return res;
}

/// The differential assertion: both strategies, same everything.
std::size_t expect_identical(const std::vector<Rule>& rules,
                             const std::vector<std::vector<Fact>>& stages,
                             const std::string& label) {
  const RunResult naive = run_with(MatchStrategy::kNaive, rules, stages);
  const RunResult indexed = run_with(MatchStrategy::kIndexed, rules, stages);
  EXPECT_EQ(naive.firings_per_stage, indexed.firings_per_stage) << label;
  EXPECT_EQ(naive.output, indexed.output) << label;
  EXPECT_EQ(naive.error, indexed.error) << label;
  EXPECT_EQ(naive.diagnoses.size(), indexed.diagnoses.size()) << label;
  for (std::size_t i = 0;
       i < std::min(naive.diagnoses.size(), indexed.diagnoses.size()); ++i) {
    EXPECT_TRUE(diagnoses_equal(naive.diagnoses[i], indexed.diagnoses[i]))
        << label << ": diagnosis " << i << " differs: "
        << naive.diagnoses[i].rule << " / " << indexed.diagnoses[i].rule;
  }
  std::size_t total = 0;
  for (const auto f : naive.firings_per_stage) total += f;
  return total;
}

// ---- pattern-derived fact soups --------------------------------------
//
// For every pattern of every rule, synthesize a fact engineered to
// satisfy that pattern's literal constraints (and, where a constraint
// references a variable bound earlier in the same rule, the value that
// variable took), plus perturbed near-miss variants and random noise
// facts of the same types. This exercises each rulebase without
// hand-curating its field names, and guarantees both satisfying and
// non-satisfying candidates flow through the index probes.

// Numbers only: generated values can flow through rulebase arithmetic
// ("dispatchCycles > j * 2"), which throws on strings/booleans — equally
// in both engines, but an exception aborts the differential run. String
// and boolean bucketing get dedicated tests below.
FactValue pool_value(std::mt19937& rng) {
  switch (rng() % 4) {
    case 0: return 0.0;
    case 1: return 0.5;
    case 2: return 2.0;
    default: return 7.25;
  }
}

FactValue satisfying_value(CmpOp op, const FactValue& rhs) {
  if (const auto* d = std::get_if<double>(&rhs)) {
    switch (op) {
      case CmpOp::kEq: return *d;
      case CmpOp::kNe: return *d + 1.0;
      case CmpOp::kLt: return *d - 1.0;
      case CmpOp::kLe: return *d;
      case CmpOp::kGt: return *d + 1.0;
      case CmpOp::kGe: return *d;
    }
  }
  if (const auto* s = std::get_if<std::string>(&rhs)) {
    switch (op) {
      case CmpOp::kEq: return *s;
      case CmpOp::kNe: return *s + "x";
      case CmpOp::kLt: return std::string("");
      case CmpOp::kLe: return *s;
      case CmpOp::kGt: return *s + "x";
      case CmpOp::kGe: return *s;
    }
  }
  // Booleans: equality is the only useful relation.
  if (const auto* b = std::get_if<bool>(&rhs)) {
    return op == CmpOp::kNe ? FactValue(!*b) : FactValue(*b);
  }
  return rhs;
}

std::vector<Fact> soup_for_rules(const std::vector<Rule>& rules,
                                 std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<Fact> soup;
  for (const auto& rule : rules) {
    // Simulate left-to-right matching so variable right-hand sides can be
    // given the value the variable would actually hold.
    std::map<std::string, FactValue> var_values;
    for (const auto& pat : rule.patterns) {
      Fact f(pat.fact_type);
      for (const auto& con : pat.constraints) {
        FactValue rhs;
        bool known = false;
        if (con.rhs.kind == Operand::Kind::kLiteral) {
          rhs = con.rhs.literal;
          known = true;
        } else if (con.rhs.kind == Operand::Kind::kVariable) {
          const auto it = var_values.find(con.rhs.variable);
          if (it != var_values.end()) {
            rhs = it->second;
            known = true;
          }
        }
        f.set(con.field, known ? satisfying_value(con.op, rhs)
                               : FactValue(1.0 + double(rng() % 4)));
      }
      for (const auto& b : pat.bindings) {
        if (!f.has(b.field)) f.set(b.field, pool_value(rng));
        var_values[b.variable] = f.get(b.field);
      }
      if (!pat.fact_variable.empty()) {
        for (const auto& [k, v] : f.fields()) {
          var_values[pat.fact_variable + "." + k] = v;
        }
      }
      // A perturbed near-miss sibling: one field nudged off-target so the
      // index must separate it from the satisfying fact.
      Fact miss = f;
      if (!f.fields().empty()) {
        const auto& first = f.fields().begin()->first;
        miss.set(first, FactValue(-123.25));
      }
      soup.push_back(std::move(f));
      soup.push_back(std::move(miss));
      // And a pure-noise fact of the same type.
      Fact noise(pat.fact_type);
      for (const auto& [k, v] : soup[soup.size() - 2].fields()) {
        (void)v;
        noise.set(k, pool_value(rng));
      }
      soup.push_back(std::move(noise));
    }
  }
  // Deterministic shuffle so assertion order differs from pattern order.
  std::shuffle(soup.begin(), soup.end(), rng);
  return soup;
}

std::vector<std::vector<Fact>> split_stages(std::vector<Fact> soup) {
  const std::size_t half = soup.size() / 2;
  std::vector<Fact> a(soup.begin(), soup.begin() + half);
  std::vector<Fact> b(soup.begin() + half, soup.end());
  return {std::move(a), std::move(b)};
}

std::size_t differential_rulebase(std::string_view source,
                                  const std::string& label) {
  std::size_t total = 0;
  for (std::uint32_t seed = 1; seed <= 3; ++seed) {
    const auto rules = pk::rules::parse_rules(std::string(source));
    auto soup = soup_for_rules(rules, seed);
    total += expect_identical(rules, split_stages(std::move(soup)),
                              label + " seed " + std::to_string(seed));
  }
  return total;
}

}  // namespace

TEST(IndexedDifferential, StallsPerCycle) {
  differential_rulebase(pk::rules::builtin::stalls_per_cycle(), "stalls");
}

TEST(IndexedDifferential, LoadImbalance) {
  differential_rulebase(pk::rules::builtin::load_imbalance(), "imbalance");
}

TEST(IndexedDifferential, Inefficiency) {
  differential_rulebase(pk::rules::builtin::inefficiency(), "inefficiency");
}

TEST(IndexedDifferential, StallCoverage) {
  differential_rulebase(pk::rules::builtin::stall_coverage(), "coverage");
}

TEST(IndexedDifferential, MemoryLocality) {
  differential_rulebase(pk::rules::builtin::memory_locality(), "locality");
}

TEST(IndexedDifferential, Power) {
  differential_rulebase(pk::rules::builtin::power(), "power");
}

TEST(IndexedDifferential, Instrumentation) {
  differential_rulebase(pk::rules::builtin::instrumentation(),
                        "instrumentation");
}

TEST(IndexedDifferential, OpenMP) {
  differential_rulebase(pk::rules::builtin::openmp(), "openmp");
}

TEST(IndexedDifferential, Communication) {
  differential_rulebase(pk::rules::builtin::communication(), "comm");
}

TEST(IndexedDifferential, FullOpenUHRulebaseFires) {
  // The union rulebase must not only agree — the generated soups must
  // actually trigger firings, or the differential proves nothing.
  const std::string all = pk::rules::builtin::openuh_rules();
  std::size_t total = 0;
  for (std::uint32_t seed = 10; seed <= 12; ++seed) {
    const auto rules = pk::rules::parse_rules(all);
    auto soup = soup_for_rules(rules, seed);
    total += expect_identical(rules, split_stages(std::move(soup)),
                              "openuh seed " + std::to_string(seed));
  }
  EXPECT_GT(total, 0u) << "fact soups never fired a rule — vacuous test";
}

// ---- randomized rulebases --------------------------------------------

namespace {

/// Builds a random but well-formed rulebase: variable right-hand sides
/// only reference variables bound by an earlier pattern of the same rule
/// (so neither strategy can hit an unbound-variable error), and derived
/// fact types form a DAG (rule i may consume D0..D(i-1), asserts Di), so
/// chains always terminate.
std::vector<Rule> random_rules(std::mt19937& rng, std::size_t count) {
  const std::vector<std::string> base_types = {"T0", "T1", "T2"};
  const std::vector<std::string> fields = {"f0", "f1", "f2"};
  std::vector<Rule> rules;
  for (std::size_t ri = 0; ri < count; ++ri) {
    Rule rule;
    rule.name = "rand" + std::to_string(ri);
    rule.salience = static_cast<int>(rng() % 3) - 1;
    std::vector<std::string> bound;
    const std::size_t npat = 1 + rng() % 2;
    for (std::size_t pi = 0; pi < npat; ++pi) {
      Pattern pat;
      const bool derived = ri > 0 && rng() % 3 == 0;
      pat.fact_type = derived ? "D" + std::to_string(rng() % ri)
                              : base_types[rng() % base_types.size()];
      const std::size_t ncon = rng() % 3;
      for (std::size_t ci = 0; ci < ncon; ++ci) {
        Constraint con;
        con.field = fields[rng() % fields.size()];
        con.op = static_cast<CmpOp>(rng() % 6);
        if (!bound.empty() && rng() % 3 == 0) {
          con.rhs = Operand::var(bound[rng() % bound.size()]);
        } else {
          con.rhs = Operand::lit(FactValue(double(rng() % 4)));
        }
        pat.constraints.push_back(std::move(con));
      }
      if (rng() % 2 == 0) {
        FieldBinding b;
        b.variable = "v" + std::to_string(ri) + "_" + std::to_string(pi);
        b.field = fields[rng() % fields.size()];
        bound.push_back(b.variable);
        pat.bindings.push_back(std::move(b));
      }
      rule.patterns.push_back(std::move(pat));
    }
    const bool asserts = rng() % 3 == 0;
    const std::string derived_type = "D" + std::to_string(ri);
    rule.action = [name = rule.name, asserts,
                   derived_type](RuleContext& ctx) {
      std::string line = name + " fired on";
      for (const auto id : ctx.matched_facts()) {
        line += " #" + std::to_string(id);
      }
      for (const auto& [k, v] : ctx.bindings()) {
        line += " " + k + "=" + pk::rules::to_display(v);
      }
      ctx.print(line);
      if (asserts) {
        ctx.assert_fact(Fact(derived_type).set("f0", 1.0).set("f1", 2.0));
      }
    };
    rules.push_back(std::move(rule));
  }
  return rules;
}

std::vector<Fact> random_soup(std::mt19937& rng, std::size_t count) {
  const std::vector<std::string> base_types = {"T0", "T1", "T2"};
  const std::vector<std::string> fields = {"f0", "f1", "f2"};
  std::vector<Fact> soup;
  for (std::size_t i = 0; i < count; ++i) {
    Fact f(base_types[rng() % base_types.size()]);
    for (const auto& fld : fields) {
      if (rng() % 4 != 0) f.set(fld, FactValue(double(rng() % 4)));
    }
    soup.push_back(std::move(f));
  }
  return soup;
}

}  // namespace

TEST(IndexedDifferential, RandomizedRulebasesAndSoups) {
  std::size_t total = 0;
  for (std::uint32_t seed = 100; seed < 140; ++seed) {
    std::mt19937 rng(seed);
    const auto rules = random_rules(rng, 2 + rng() % 6);
    const auto soup = random_soup(rng, 8 + rng() % 20);
    total += expect_identical(rules, split_stages(soup),
                              "random seed " + std::to_string(seed));
  }
  EXPECT_GT(total, 100u) << "random soups barely fired — weak test";
}

TEST(IndexedDifferential, StrategyAccessorsAndDefault) {
  RuleHarness h;
  EXPECT_EQ(h.match_strategy(), MatchStrategy::kIndexed);
  h.set_match_strategy(MatchStrategy::kNaive);
  EXPECT_EQ(h.match_strategy(), MatchStrategy::kNaive);
}

TEST(IndexedDifferential, IncrementalRerunOnlyFiresNewFacts) {
  // The watermark must survive across process_rules calls: re-running
  // after new asserts fires only activations involving the new facts.
  RuleHarness h;  // default: indexed
  Rule r;
  r.name = "seen";
  Pattern p;
  p.fact_type = "Obs";
  p.bindings.push_back(FieldBinding{"x", "val"});
  r.patterns.push_back(std::move(p));
  r.action = [](RuleContext& ctx) {
    ctx.print("saw " + pk::rules::to_display(ctx.binding("x")));
  };
  h.add_rule(std::move(r));
  h.assert_fact(Fact("Obs").set("val", 1.0));
  h.assert_fact(Fact("Obs").set("val", 2.0));
  EXPECT_EQ(h.process_rules(), 2u);
  EXPECT_EQ(h.process_rules(), 0u);
  h.assert_fact(Fact("Obs").set("val", 3.0));
  EXPECT_EQ(h.process_rules(), 1u);
  EXPECT_EQ(h.output(),
            (std::vector<std::string>{"saw 1", "saw 2", "saw 3"}));
}

TEST(IndexedDifferential, IndexProbeRespectsValueEquivalence) {
  // values_equal treats true == "true" and 2 == 2.0; the alpha index
  // must bucket them identically or the indexed engine would miss
  // activations the naive engine finds.
  Rule r;
  r.name = "boolish";
  Pattern p;
  p.fact_type = "Flag";
  p.constraints.push_back(
      Constraint{"on", CmpOp::kEq, Operand::lit(FactValue(true))});
  r.patterns.push_back(std::move(p));
  r.action = [](RuleContext& ctx) { ctx.print("hit"); };

  std::vector<Fact> soup;
  soup.push_back(Fact("Flag").set("on", true));
  soup.push_back(Fact("Flag").set("on", "true"));
  soup.push_back(Fact("Flag").set("on", "false"));
  soup.push_back(Fact("Flag").set("on", false));
  soup.push_back(Fact("Flag").set("on", 1.0));
  expect_identical({r}, {soup}, "bool equivalence");

  Rule neg;
  neg.name = "negzero";
  Pattern q;
  q.fact_type = "Num";
  q.constraints.push_back(
      Constraint{"x", CmpOp::kEq, Operand::lit(FactValue(0.0))});
  neg.patterns.push_back(std::move(q));
  neg.action = [](RuleContext& ctx) { ctx.print("zero"); };
  std::vector<Fact> nums;
  nums.push_back(Fact("Num").set("x", 0.0));
  nums.push_back(Fact("Num").set("x", -0.0));
  nums.push_back(Fact("Num").set("x", 1.0));
  expect_identical({neg}, {nums}, "negative zero");
}

TEST(IndexedDifferential, JoinOnBoundVariableUsesIndex) {
  // The classic beta join: the second pattern's equality against a
  // variable bound by the first pattern. Both strategies must agree on
  // every pairing, across incremental stages.
  Rule r;
  r.name = "nest";
  Pattern outer;
  outer.fact_type = "Parent";
  outer.bindings.push_back(FieldBinding{"pid", "id"});
  Pattern inner;
  inner.fact_type = "Child";
  inner.constraints.push_back(
      Constraint{"parent", CmpOp::kEq, Operand::var("pid")});
  inner.bindings.push_back(FieldBinding{"cid", "id"});
  r.patterns.push_back(std::move(outer));
  r.patterns.push_back(std::move(inner));
  r.action = [](RuleContext& ctx) {
    ctx.print(pk::rules::to_display(ctx.binding("pid")) + "->" +
              pk::rules::to_display(ctx.binding("cid")));
  };

  std::vector<std::vector<Fact>> stages(2);
  for (int i = 0; i < 6; ++i) {
    stages[0].push_back(
        Fact("Parent").set("id", double(i)));
    stages[0].push_back(
        Fact("Child").set("parent", double(i % 3)).set("id", double(10 + i)));
  }
  // Second stage: new children joining OLD parents, and vice versa.
  stages[1].push_back(Fact("Child").set("parent", 1.0).set("id", 99.0));
  stages[1].push_back(Fact("Parent").set("id", 2.0));
  const auto fired = expect_identical({r}, stages, "join");
  EXPECT_GT(fired, 0u);
}
