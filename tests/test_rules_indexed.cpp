// Differential tests for the incremental matchers: the naive full-rescan
// matcher is the oracle, and both the alpha-indexed engine and the
// beta-memory join network must produce byte-identical output lines,
// diagnoses, firing counts, and provenance trees on every shipped
// rulebase and on randomized fact soups / rulebases — including
// retract-heavy sequences that exercise memoized-join invalidation.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "provenance/explanation.hpp"
#include "rules/engine.hpp"
#include "rules/fact.hpp"
#include "rules/parser.hpp"
#include "rules/rulebases.hpp"

namespace pk = perfknow;
using pk::rules::CmpOp;
using pk::rules::Constraint;
using pk::rules::Fact;
using pk::rules::FactValue;
using pk::rules::FieldBinding;
using pk::rules::MatchStrategy;
using pk::rules::Operand;
using pk::rules::Pattern;
using pk::rules::Rule;
using pk::rules::RuleContext;
using pk::rules::RuleHarness;

namespace {

struct RunResult {
  std::vector<std::string> output;
  std::vector<pk::rules::Diagnosis> diagnoses;
  /// to_json of each diagnosis's captured explanation, in order —
  /// provenance trees are part of the byte-identical contract.
  std::vector<std::string> provenance;
  std::vector<std::size_t> firings_per_stage;
  /// Fire-time errors (e.g. an action touching a field the matched fact
  /// lacks) are part of the observable behaviour: all strategies must
  /// fail identically, after the identical output prefix.
  std::string error;
};

bool diagnoses_equal(const pk::rules::Diagnosis& a,
                     const pk::rules::Diagnosis& b) {
  return a.rule == b.rule && a.problem == b.problem && a.event == b.event &&
         a.severity == b.severity && a.recommendation == b.recommendation;
}

/// One step of a differential scenario. Retract/modify address facts by
/// their position in the sequence of asserts/modifies so far (ids are
/// only comparable within one run).
struct Op {
  enum class Kind { kAssert, kRetract, kModify, kProcess } kind = Kind::kAssert;
  Fact fact{"_"};          ///< kAssert payload / kModify replacement
  std::size_t target = 0;  ///< kRetract / kModify: index into the id log
};

Op op_assert(Fact f) {
  Op o;
  o.kind = Op::Kind::kAssert;
  o.fact = std::move(f);
  return o;
}
Op op_retract(std::size_t target) {
  Op o;
  o.kind = Op::Kind::kRetract;
  o.target = target;
  return o;
}
Op op_modify(std::size_t target, Fact f) {
  Op o;
  o.kind = Op::Kind::kModify;
  o.fact = std::move(f);
  o.target = target;
  return o;
}
Op op_process() {
  Op o;
  o.kind = Op::Kind::kProcess;
  return o;
}

/// Runs an op sequence with one strategy, full provenance capture on.
/// Later process steps re-enter a harness whose watermarks (and, for
/// kBeta, memoized tokens) are already advanced.
RunResult run_ops(MatchStrategy strategy, const std::vector<Rule>& rules,
                  const std::vector<Op>& ops) {
  RuleHarness h;
  h.set_match_strategy(strategy);
  h.set_provenance(pk::provenance::ProvenanceMode::kFull);
  for (const auto& r : rules) h.add_rule(r);
  RunResult res;
  std::vector<pk::rules::FactId> log;
  for (const auto& op : ops) {
    try {
      switch (op.kind) {
        case Op::Kind::kAssert:
          log.push_back(h.assert_fact(op.fact));
          break;
        case Op::Kind::kRetract:
          h.retract(log.at(op.target));
          break;
        case Op::Kind::kModify:
          log.push_back(h.modify(log.at(op.target), op.fact));
          break;
        case Op::Kind::kProcess:
          res.firings_per_stage.push_back(h.process_rules());
          break;
      }
    } catch (const std::exception& e) {
      res.error = e.what();
      break;
    }
  }
  res.output = h.output();
  res.diagnoses = h.diagnoses();
  for (const auto& d : res.diagnoses) {
    res.provenance.push_back(d.provenance ? pk::provenance::to_json(*d.provenance)
                                          : "(none)");
  }
  return res;
}

void expect_same(const RunResult& oracle, const RunResult& got,
                 const std::string& label) {
  EXPECT_EQ(oracle.firings_per_stage, got.firings_per_stage) << label;
  EXPECT_EQ(oracle.output, got.output) << label;
  EXPECT_EQ(oracle.error, got.error) << label;
  EXPECT_EQ(oracle.provenance, got.provenance) << label;
  EXPECT_EQ(oracle.diagnoses.size(), got.diagnoses.size()) << label;
  for (std::size_t i = 0;
       i < std::min(oracle.diagnoses.size(), got.diagnoses.size()); ++i) {
    EXPECT_TRUE(diagnoses_equal(oracle.diagnoses[i], got.diagnoses[i]))
        << label << ": diagnosis " << i << " differs: "
        << oracle.diagnoses[i].rule << " / " << got.diagnoses[i].rule;
  }
}

/// The three-way differential assertion: naive is the oracle; both the
/// indexed matcher and the beta network must agree byte-for-byte.
std::size_t expect_identical_ops(const std::vector<Rule>& rules,
                                 const std::vector<Op>& ops,
                                 const std::string& label) {
  const RunResult naive = run_ops(MatchStrategy::kNaive, rules, ops);
  expect_same(naive, run_ops(MatchStrategy::kIndexed, rules, ops),
              label + " [indexed]");
  expect_same(naive, run_ops(MatchStrategy::kBeta, rules, ops),
              label + " [beta]");
  std::size_t total = 0;
  for (const auto f : naive.firings_per_stage) total += f;
  return total;
}

std::size_t expect_identical(const std::vector<Rule>& rules,
                             const std::vector<std::vector<Fact>>& stages,
                             const std::string& label) {
  std::vector<Op> ops;
  for (const auto& stage : stages) {
    for (const auto& f : stage) ops.push_back(op_assert(f));
    ops.push_back(op_process());
  }
  return expect_identical_ops(rules, ops, label);
}

// ---- pattern-derived fact soups --------------------------------------
//
// For every pattern of every rule, synthesize a fact engineered to
// satisfy that pattern's literal constraints (and, where a constraint
// references a variable bound earlier in the same rule, the value that
// variable took), plus perturbed near-miss variants and random noise
// facts of the same types. This exercises each rulebase without
// hand-curating its field names, and guarantees both satisfying and
// non-satisfying candidates flow through the index probes.

// Numbers only: generated values can flow through rulebase arithmetic
// ("dispatchCycles > j * 2"), which throws on strings/booleans — equally
// in both engines, but an exception aborts the differential run. String
// and boolean bucketing get dedicated tests below.
FactValue pool_value(std::mt19937& rng) {
  switch (rng() % 4) {
    case 0: return 0.0;
    case 1: return 0.5;
    case 2: return 2.0;
    default: return 7.25;
  }
}

FactValue satisfying_value(CmpOp op, const FactValue& rhs) {
  if (const auto* d = std::get_if<double>(&rhs)) {
    switch (op) {
      case CmpOp::kEq: return *d;
      case CmpOp::kNe: return *d + 1.0;
      case CmpOp::kLt: return *d - 1.0;
      case CmpOp::kLe: return *d;
      case CmpOp::kGt: return *d + 1.0;
      case CmpOp::kGe: return *d;
    }
  }
  if (const auto* s = std::get_if<std::string>(&rhs)) {
    switch (op) {
      case CmpOp::kEq: return *s;
      case CmpOp::kNe: return *s + "x";
      case CmpOp::kLt: return std::string("");
      case CmpOp::kLe: return *s;
      case CmpOp::kGt: return *s + "x";
      case CmpOp::kGe: return *s;
    }
  }
  // Booleans: equality is the only useful relation.
  if (const auto* b = std::get_if<bool>(&rhs)) {
    return op == CmpOp::kNe ? FactValue(!*b) : FactValue(*b);
  }
  return rhs;
}

std::vector<Fact> soup_for_rules(const std::vector<Rule>& rules,
                                 std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<Fact> soup;
  for (const auto& rule : rules) {
    // Simulate left-to-right matching so variable right-hand sides can be
    // given the value the variable would actually hold.
    std::map<std::string, FactValue> var_values;
    for (const auto& pat : rule.patterns) {
      Fact f(pat.fact_type);
      for (const auto& con : pat.constraints) {
        FactValue rhs;
        bool known = false;
        if (con.rhs.kind == Operand::Kind::kLiteral) {
          rhs = con.rhs.literal;
          known = true;
        } else if (con.rhs.kind == Operand::Kind::kVariable) {
          const auto it = var_values.find(con.rhs.variable);
          if (it != var_values.end()) {
            rhs = it->second;
            known = true;
          }
        }
        f.set(con.field, known ? satisfying_value(con.op, rhs)
                               : FactValue(1.0 + double(rng() % 4)));
      }
      for (const auto& b : pat.bindings) {
        if (!f.has(b.field)) f.set(b.field, pool_value(rng));
        var_values[b.variable] = f.get(b.field);
      }
      if (!pat.fact_variable.empty()) {
        for (const auto& [k, v] : f.fields()) {
          var_values[pat.fact_variable + "." + k] = v;
        }
      }
      // A perturbed near-miss sibling: one field nudged off-target so the
      // index must separate it from the satisfying fact.
      Fact miss = f;
      if (!f.fields().empty()) {
        const auto& first = f.fields().begin()->first;
        miss.set(first, FactValue(-123.25));
      }
      soup.push_back(std::move(f));
      soup.push_back(std::move(miss));
      // And a pure-noise fact of the same type.
      Fact noise(pat.fact_type);
      for (const auto& [k, v] : soup[soup.size() - 2].fields()) {
        (void)v;
        noise.set(k, pool_value(rng));
      }
      soup.push_back(std::move(noise));
    }
  }
  // Deterministic shuffle so assertion order differs from pattern order.
  std::shuffle(soup.begin(), soup.end(), rng);
  return soup;
}

std::vector<std::vector<Fact>> split_stages(std::vector<Fact> soup) {
  const std::size_t half = soup.size() / 2;
  std::vector<Fact> a(soup.begin(), soup.begin() + half);
  std::vector<Fact> b(soup.begin() + half, soup.end());
  return {std::move(a), std::move(b)};
}

std::size_t differential_rulebase(std::string_view source,
                                  const std::string& label) {
  std::size_t total = 0;
  for (std::uint32_t seed = 1; seed <= 3; ++seed) {
    const auto rules = pk::rules::parse_rules(std::string(source));
    auto soup = soup_for_rules(rules, seed);
    total += expect_identical(rules, split_stages(std::move(soup)),
                              label + " seed " + std::to_string(seed));
  }
  return total;
}

}  // namespace

TEST(IndexedDifferential, StallsPerCycle) {
  differential_rulebase(pk::rules::builtin::stalls_per_cycle(), "stalls");
}

TEST(IndexedDifferential, LoadImbalance) {
  differential_rulebase(pk::rules::builtin::load_imbalance(), "imbalance");
}

TEST(IndexedDifferential, Inefficiency) {
  differential_rulebase(pk::rules::builtin::inefficiency(), "inefficiency");
}

TEST(IndexedDifferential, StallCoverage) {
  differential_rulebase(pk::rules::builtin::stall_coverage(), "coverage");
}

TEST(IndexedDifferential, MemoryLocality) {
  differential_rulebase(pk::rules::builtin::memory_locality(), "locality");
}

TEST(IndexedDifferential, Power) {
  differential_rulebase(pk::rules::builtin::power(), "power");
}

TEST(IndexedDifferential, Instrumentation) {
  differential_rulebase(pk::rules::builtin::instrumentation(),
                        "instrumentation");
}

TEST(IndexedDifferential, OpenMP) {
  differential_rulebase(pk::rules::builtin::openmp(), "openmp");
}

TEST(IndexedDifferential, Communication) {
  differential_rulebase(pk::rules::builtin::communication(), "comm");
}

TEST(IndexedDifferential, FullOpenUHRulebaseFires) {
  // The union rulebase must not only agree — the generated soups must
  // actually trigger firings, or the differential proves nothing.
  const std::string all = pk::rules::builtin::openuh_rules();
  std::size_t total = 0;
  for (std::uint32_t seed = 10; seed <= 12; ++seed) {
    const auto rules = pk::rules::parse_rules(all);
    auto soup = soup_for_rules(rules, seed);
    total += expect_identical(rules, split_stages(std::move(soup)),
                              "openuh seed " + std::to_string(seed));
  }
  EXPECT_GT(total, 0u) << "fact soups never fired a rule — vacuous test";
}

// ---- randomized rulebases --------------------------------------------

namespace {

/// Builds a random but well-formed rulebase: variable right-hand sides
/// only reference variables bound by an earlier pattern of the same rule
/// (so neither strategy can hit an unbound-variable error), and derived
/// fact types form a DAG (rule i may consume D0..D(i-1), asserts Di), so
/// chains always terminate.
std::vector<Rule> random_rules(std::mt19937& rng, std::size_t count) {
  const std::vector<std::string> base_types = {"T0", "T1", "T2"};
  const std::vector<std::string> fields = {"f0", "f1", "f2"};
  std::vector<Rule> rules;
  for (std::size_t ri = 0; ri < count; ++ri) {
    Rule rule;
    rule.name = "rand" + std::to_string(ri);
    rule.salience = static_cast<int>(rng() % 3) - 1;
    std::vector<std::string> bound;
    const std::size_t npat = 1 + rng() % 2;
    for (std::size_t pi = 0; pi < npat; ++pi) {
      Pattern pat;
      const bool derived = ri > 0 && rng() % 3 == 0;
      pat.fact_type = derived ? "D" + std::to_string(rng() % ri)
                              : base_types[rng() % base_types.size()];
      const std::size_t ncon = rng() % 3;
      for (std::size_t ci = 0; ci < ncon; ++ci) {
        Constraint con;
        con.field = fields[rng() % fields.size()];
        con.op = static_cast<CmpOp>(rng() % 6);
        if (!bound.empty() && rng() % 3 == 0) {
          con.rhs = Operand::var(bound[rng() % bound.size()]);
        } else {
          con.rhs = Operand::lit(FactValue(double(rng() % 4)));
        }
        pat.constraints.push_back(std::move(con));
      }
      if (rng() % 2 == 0) {
        FieldBinding b;
        b.variable = "v" + std::to_string(ri) + "_" + std::to_string(pi);
        b.field = fields[rng() % fields.size()];
        bound.push_back(b.variable);
        pat.bindings.push_back(std::move(b));
      }
      rule.patterns.push_back(std::move(pat));
    }
    const bool asserts = rng() % 3 == 0;
    const std::string derived_type = "D" + std::to_string(ri);
    rule.action = [name = rule.name, asserts,
                   derived_type](RuleContext& ctx) {
      std::string line = name + " fired on";
      for (const auto id : ctx.matched_facts()) {
        line += " #" + std::to_string(id);
      }
      for (const auto& [k, v] : ctx.bindings()) {
        line += " " + k + "=" + pk::rules::to_display(v);
      }
      ctx.print(line);
      if (asserts) {
        ctx.assert_fact(Fact(derived_type).set("f0", 1.0).set("f1", 2.0));
      }
    };
    rules.push_back(std::move(rule));
  }
  return rules;
}

std::vector<Fact> random_soup(std::mt19937& rng, std::size_t count) {
  const std::vector<std::string> base_types = {"T0", "T1", "T2"};
  const std::vector<std::string> fields = {"f0", "f1", "f2"};
  std::vector<Fact> soup;
  for (std::size_t i = 0; i < count; ++i) {
    Fact f(base_types[rng() % base_types.size()]);
    for (const auto& fld : fields) {
      if (rng() % 4 != 0) f.set(fld, FactValue(double(rng() % 4)));
    }
    soup.push_back(std::move(f));
  }
  return soup;
}

}  // namespace

TEST(IndexedDifferential, RandomizedRulebasesAndSoups) {
  std::size_t total = 0;
  for (std::uint32_t seed = 100; seed < 140; ++seed) {
    std::mt19937 rng(seed);
    const auto rules = random_rules(rng, 2 + rng() % 6);
    const auto soup = random_soup(rng, 8 + rng() % 20);
    total += expect_identical(rules, split_stages(soup),
                              "random seed " + std::to_string(seed));
  }
  EXPECT_GT(total, 100u) << "random soups barely fired — weak test";
}

TEST(IndexedDifferential, StrategyAccessorsAndDefault) {
  RuleHarness h;
  EXPECT_EQ(h.match_strategy(), MatchStrategy::kBeta);
  h.set_match_strategy(MatchStrategy::kNaive);
  EXPECT_EQ(h.match_strategy(), MatchStrategy::kNaive);
}

TEST(IndexedDifferential, IncrementalRerunOnlyFiresNewFacts) {
  // Watermarks (and, for kBeta, memoized tokens) must survive across
  // process_rules calls: re-running after new asserts fires only
  // activations involving the new facts.
  for (const auto strategy : {MatchStrategy::kIndexed, MatchStrategy::kBeta}) {
    RuleHarness h;
    h.set_match_strategy(strategy);
    Rule r;
    r.name = "seen";
    Pattern p;
    p.fact_type = "Obs";
    p.bindings.push_back(FieldBinding{"x", "val"});
    r.patterns.push_back(std::move(p));
    r.action = [](RuleContext& ctx) {
      ctx.print("saw " + pk::rules::to_display(ctx.binding("x")));
    };
    h.add_rule(std::move(r));
    h.assert_fact(Fact("Obs").set("val", 1.0));
    h.assert_fact(Fact("Obs").set("val", 2.0));
    EXPECT_EQ(h.process_rules(), 2u);
    EXPECT_EQ(h.process_rules(), 0u);
    h.assert_fact(Fact("Obs").set("val", 3.0));
    EXPECT_EQ(h.process_rules(), 1u);
    EXPECT_EQ(h.output(),
              (std::vector<std::string>{"saw 1", "saw 2", "saw 3"}));
  }
}

TEST(IndexedDifferential, IndexProbeRespectsValueEquivalence) {
  // values_equal treats true == "true" and 2 == 2.0; the alpha index
  // must bucket them identically or the indexed engine would miss
  // activations the naive engine finds.
  Rule r;
  r.name = "boolish";
  Pattern p;
  p.fact_type = "Flag";
  p.constraints.push_back(
      Constraint{"on", CmpOp::kEq, Operand::lit(FactValue(true))});
  r.patterns.push_back(std::move(p));
  r.action = [](RuleContext& ctx) { ctx.print("hit"); };

  std::vector<Fact> soup;
  soup.push_back(Fact("Flag").set("on", true));
  soup.push_back(Fact("Flag").set("on", "true"));
  soup.push_back(Fact("Flag").set("on", "false"));
  soup.push_back(Fact("Flag").set("on", false));
  soup.push_back(Fact("Flag").set("on", 1.0));
  expect_identical({r}, {soup}, "bool equivalence");

  Rule neg;
  neg.name = "negzero";
  Pattern q;
  q.fact_type = "Num";
  q.constraints.push_back(
      Constraint{"x", CmpOp::kEq, Operand::lit(FactValue(0.0))});
  neg.patterns.push_back(std::move(q));
  neg.action = [](RuleContext& ctx) { ctx.print("zero"); };
  std::vector<Fact> nums;
  nums.push_back(Fact("Num").set("x", 0.0));
  nums.push_back(Fact("Num").set("x", -0.0));
  nums.push_back(Fact("Num").set("x", 1.0));
  expect_identical({neg}, {nums}, "negative zero");
}

TEST(IndexedDifferential, JoinOnBoundVariableUsesIndex) {
  // The classic beta join: the second pattern's equality against a
  // variable bound by the first pattern. Both strategies must agree on
  // every pairing, across incremental stages.
  Rule r;
  r.name = "nest";
  Pattern outer;
  outer.fact_type = "Parent";
  outer.bindings.push_back(FieldBinding{"pid", "id"});
  Pattern inner;
  inner.fact_type = "Child";
  inner.constraints.push_back(
      Constraint{"parent", CmpOp::kEq, Operand::var("pid")});
  inner.bindings.push_back(FieldBinding{"cid", "id"});
  r.patterns.push_back(std::move(outer));
  r.patterns.push_back(std::move(inner));
  r.action = [](RuleContext& ctx) {
    ctx.print(pk::rules::to_display(ctx.binding("pid")) + "->" +
              pk::rules::to_display(ctx.binding("cid")));
  };

  std::vector<std::vector<Fact>> stages(2);
  for (int i = 0; i < 6; ++i) {
    stages[0].push_back(
        Fact("Parent").set("id", double(i)));
    stages[0].push_back(
        Fact("Child").set("parent", double(i % 3)).set("id", double(10 + i)));
  }
  // Second stage: new children joining OLD parents, and vice versa.
  stages[1].push_back(Fact("Child").set("parent", 1.0).set("id", 99.0));
  stages[1].push_back(Fact("Parent").set("id", 2.0));
  const auto fired = expect_identical({r}, stages, "join");
  EXPECT_GT(fired, 0u);
}

// ---- retraction, modification, and memoized-join invalidation --------

namespace {

/// Parent(id -> pid) joined with Child(parent == pid), printing the pair.
Rule parent_child_rule() {
  Rule r;
  r.name = "nest";
  Pattern outer;
  outer.fact_type = "Parent";
  outer.bindings.push_back(FieldBinding{"pid", "id"});
  Pattern inner;
  inner.fact_type = "Child";
  inner.constraints.push_back(
      Constraint{"parent", CmpOp::kEq, Operand::var("pid")});
  inner.bindings.push_back(FieldBinding{"cid", "id"});
  r.patterns.push_back(std::move(outer));
  r.patterns.push_back(std::move(inner));
  r.action = [](RuleContext& ctx) {
    ctx.print(pk::rules::to_display(ctx.binding("pid")) + "->" +
              pk::rules::to_display(ctx.binding("cid")));
  };
  return r;
}

}  // namespace

TEST(IndexedDifferential, RetractedJoinPartnerNeverResurfaces) {
  // Regression pin for watermark handling when, after a retract, every
  // pattern of a rule matches only pre-watermark facts: the next process
  // call must fire nothing, and a later assert must fire exactly once —
  // no firing dropped (a memoized token outliving its retracted support)
  // and none duplicated (stale watermarks re-enumerating old tuples).
  const std::vector<Op> ops = {
      op_assert(Fact("Parent").set("id", 1.0)),              // log 0
      op_assert(Fact("Child").set("parent", 1.0).set("id", 10.0)),  // log 1
      op_process(),  // fires (parent, child10)
      op_retract(1),
      op_process(),  // all patterns pre-watermark: must fire nothing
      op_assert(Fact("Child").set("parent", 1.0).set("id", 11.0)),  // log 2
      op_process(),  // exactly one firing: (parent, child11)
  };
  const RunResult oracle =
      run_ops(MatchStrategy::kNaive, {parent_child_rule()}, ops);
  ASSERT_EQ(oracle.firings_per_stage,
            (std::vector<std::size_t>{1, 0, 1}));
  EXPECT_EQ(oracle.output, (std::vector<std::string>{"1->10", "1->11"}));
  expect_identical_ops({parent_child_rule()}, ops, "retract partner");
}

TEST(IndexedDifferential, ModifyRejoinsUnderFreshId) {
  // modify = retract + re-assert under a fresh id: the join must fire
  // again for the new id (it is a different tuple) and the stale tuple
  // must not fire after its support died.
  const std::vector<Op> ops = {
      op_assert(Fact("Parent").set("id", 1.0)),                     // log 0
      op_assert(Fact("Child").set("parent", 2.0).set("id", 10.0)),  // log 1
      op_process(),  // no match: parent 2 does not exist
      op_modify(1, Fact("Child").set("parent", 1.0).set("id", 10.0)),  // log 2
      op_process(),  // fires on the re-pointed child
      op_modify(2, Fact("Child").set("parent", 3.0).set("id", 10.0)),  // log 3
      op_process(),  // re-pointed away again: nothing
  };
  const RunResult oracle =
      run_ops(MatchStrategy::kNaive, {parent_child_rule()}, ops);
  ASSERT_EQ(oracle.firings_per_stage,
            (std::vector<std::size_t>{0, 1, 0}));
  expect_identical_ops({parent_child_rule()}, ops, "modify rejoin");
}

TEST(IndexedDifferential, RuleAddedAfterFactsSeesOldFacts) {
  // A rule registered after facts were asserted (and processed) must
  // still match them: the beta network backfills its alpha memories from
  // facts below the type watermark.
  for (const auto strategy : {MatchStrategy::kNaive, MatchStrategy::kIndexed,
                              MatchStrategy::kBeta}) {
    RuleHarness h;
    h.set_match_strategy(strategy);
    h.add_rule(parent_child_rule());
    h.assert_fact(Fact("Parent").set("id", 1.0));
    h.assert_fact(Fact("Child").set("parent", 1.0).set("id", 10.0));
    EXPECT_EQ(h.process_rules(), 1u);
    Rule late = parent_child_rule();
    late.name = "late";
    h.add_rule(std::move(late));
    EXPECT_EQ(h.process_rules(), 1u) << "late rule must see old facts";
    EXPECT_EQ(h.output(),
              (std::vector<std::string>{"1->10", "1->10"}));
  }
}

TEST(IndexedDifferential, TripleJoinWithChurn) {
  // Three-pattern rule: an equality chain (hash-joinable) plus an
  // inequality join (forces the non-probe token-extension path), run
  // through interleaved assert/retract/modify cycles.
  Rule r;
  r.name = "triple";
  Pattern a;
  a.fact_type = "G";
  a.bindings.push_back(FieldBinding{"g", "grp"});
  a.bindings.push_back(FieldBinding{"lo", "floor"});
  Pattern b;
  b.fact_type = "E";
  b.constraints.push_back(Constraint{"grp", CmpOp::kEq, Operand::var("g")});
  b.bindings.push_back(FieldBinding{"ev", "name"});
  Pattern c;
  c.fact_type = "S";
  c.constraints.push_back(Constraint{"event", CmpOp::kEq, Operand::var("ev")});
  c.constraints.push_back(Constraint{"sev", CmpOp::kGt, Operand::var("lo")});
  r.patterns.push_back(std::move(a));
  r.patterns.push_back(std::move(b));
  r.patterns.push_back(std::move(c));
  r.action = [](RuleContext& ctx) {
    std::string line = "triple";
    for (const auto id : ctx.matched_facts()) {
      line += " #" + std::to_string(id);
    }
    ctx.print(line);
  };

  std::vector<Op> ops;
  ops.push_back(op_assert(Fact("G").set("grp", 1.0).set("floor", 0.5)));  // 0
  ops.push_back(op_assert(Fact("E").set("grp", 1.0).set("name", "L1")));  // 1
  ops.push_back(op_assert(Fact("S").set("event", "L1").set("sev", 0.9)));  // 2
  ops.push_back(op_process());  // one triple
  ops.push_back(op_assert(Fact("S").set("event", "L1").set("sev", 0.2)));  // 3
  ops.push_back(op_process());  // below floor: nothing
  ops.push_back(op_retract(1));  // kill the middle of the memoized chain
  ops.push_back(op_process());   // nothing may fire or crash
  ops.push_back(op_assert(Fact("E").set("grp", 1.0).set("name", "L1")));  // 4
  ops.push_back(op_process());  // rebuilt chain: one new triple
  ops.push_back(op_modify(0, Fact("G").set("grp", 1.0).set("floor", 0.0)));
  ops.push_back(op_process());  // fresh G id: both S facts now qualify
  const RunResult oracle = run_ops(MatchStrategy::kNaive, {r}, ops);
  ASSERT_EQ(oracle.firings_per_stage,
            (std::vector<std::size_t>{1, 0, 0, 1, 2}));
  expect_identical_ops({r}, ops, "triple churn");
}

TEST(IndexedDifferential, RetractHeavyRandomizedDifferential) {
  // Randomized soups with interleaved retract/modify/process cycles: the
  // harshest exercise of watermark bookkeeping and token invalidation.
  std::size_t total = 0;
  for (std::uint32_t seed = 500; seed < 540; ++seed) {
    std::mt19937 rng(seed);
    const auto rules = random_rules(rng, 2 + rng() % 6);
    std::vector<Op> ops;
    std::vector<std::size_t> live;  // indexes into the op id log
    std::size_t logged = 0;
    const std::size_t cycles = 3 + rng() % 3;
    for (std::size_t cyc = 0; cyc < cycles; ++cyc) {
      for (const auto& f : random_soup(rng, 4 + rng() % 8)) {
        ops.push_back(op_assert(f));
        live.push_back(logged++);
      }
      // Retract or modify a few random still-live facts.
      const std::size_t churn = rng() % 4;
      for (std::size_t i = 0; i < churn && !live.empty(); ++i) {
        const std::size_t pick = rng() % live.size();
        const std::size_t target = live[pick];
        live.erase(live.begin() + pick);
        if (rng() % 2 == 0) {
          ops.push_back(op_retract(target));
        } else {
          auto replacement = random_soup(rng, 1);
          ops.push_back(op_modify(target, replacement[0]));
          live.push_back(logged++);
        }
      }
      ops.push_back(op_process());
    }
    total += expect_identical_ops(rules, ops,
                                  "churn seed " + std::to_string(seed));
  }
  EXPECT_GT(total, 100u) << "churn soups barely fired — weak test";
}
