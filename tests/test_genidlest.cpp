// Tests for the GenIDLEST case study: the real numerical solver and the
// performance-simulation driver.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/operations.hpp"
#include "apps/genidlest/genidlest.hpp"
#include "apps/genidlest/solver.hpp"
#include "common/error.hpp"
#include "hwcounters/counters.hpp"
#include "machine/machine.hpp"

namespace pk = perfknow;
using namespace pk::apps::genidlest;
using pk::hwcounters::Counter;
using pk::machine::Machine;
using pk::machine::MachineConfig;

// ---------------------------------------------------------------------
// Real numerics
// ---------------------------------------------------------------------

namespace {

MultiblockDomain small_domain() {
  MultiblockDomain dom;
  dom.nx = 12;
  dom.ny = 10;
  dom.nz_total = 16;
  dom.num_blocks = 4;
  return dom;
}

}  // namespace

TEST(Solver, LaplacianOfConstantInInteriorIsZero) {
  const GridBlock g(8, 8, 4);
  auto x = g.make_field();
  auto y = g.make_field();
  for (auto& v : x) v = 5.0;  // includes ghosts
  apply_laplacian(g, x, y, 1.0);
  // Interior cells away from x/y boundaries see all-equal neighbours.
  EXPECT_DOUBLE_EQ(g.at(y, 4, 4, 2), 0.0);
  // Cells on the x boundary lose a neighbour (Dirichlet zero).
  EXPECT_DOUBLE_EQ(g.at(y, 0, 4, 2), 5.0);
}

TEST(Solver, GhostExchangeIsPeriodic) {
  const auto dom = small_domain();
  const GridBlock g(dom.nx, dom.ny, dom.nz_per_block());
  std::vector<std::vector<double>> f(dom.num_blocks);
  for (std::size_t b = 0; b < dom.num_blocks; ++b) {
    f[b] = g.make_field();
    for (std::ptrdiff_t k = 0; k < static_cast<std::ptrdiff_t>(g.nz());
         ++k) {
      for (std::size_t j = 0; j < g.ny(); ++j) {
        for (std::size_t i = 0; i < g.nx(); ++i) {
          g.at(f[b], i, j, k) = static_cast<double>(b * 100 + k);
        }
      }
    }
  }
  exchange_ghosts(dom, f, g);
  // Block 1's bottom ghost = block 0's top plane (k = nz-1 = 3).
  EXPECT_DOUBLE_EQ(g.at(f[1], 3, 3, -1), 3.0);
  // Block 1's top ghost = block 2's bottom plane.
  EXPECT_DOUBLE_EQ(g.at(f[1], 3, 3, 4), 200.0);
  // Periodic wrap: block 0's bottom ghost = block 3's top plane.
  EXPECT_DOUBLE_EQ(g.at(f[0], 3, 3, -1), 303.0);
  EXPECT_DOUBLE_EQ(g.at(f[3], 3, 3, 4), 0.0);
}

TEST(Solver, BicgstabSolvesPoissonToTolerance) {
  const auto dom = small_domain();
  const GridBlock g(dom.nx, dom.ny, dom.nz_per_block());
  std::vector<std::vector<double>> u(dom.num_blocks);
  std::vector<std::vector<double>> rhs(dom.num_blocks);
  for (std::size_t b = 0; b < dom.num_blocks; ++b) {
    u[b] = g.make_field();
    rhs[b] = g.make_field();
    for (std::ptrdiff_t k = 0; k < static_cast<std::ptrdiff_t>(g.nz());
         ++k) {
      for (std::size_t j = 0; j < g.ny(); ++j) {
        for (std::size_t i = 0; i < g.nx(); ++i) {
          g.at(rhs[b], i, j, k) =
              std::sin(0.5 * static_cast<double>(i)) +
              std::cos(0.3 * static_cast<double>(j + b));
        }
      }
    }
  }
  const auto res = bicgstab_solve(dom, u, rhs, 1.0, 1e-8, 500);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.iterations, 500u);
  EXPECT_LT(residual_norm(dom, u, rhs, 1.0), 1e-6);
}

TEST(Solver, SolutionIsNonTrivial) {
  const auto dom = small_domain();
  const GridBlock g(dom.nx, dom.ny, dom.nz_per_block());
  std::vector<std::vector<double>> u(dom.num_blocks);
  std::vector<std::vector<double>> rhs(dom.num_blocks);
  for (std::size_t b = 0; b < dom.num_blocks; ++b) {
    u[b] = g.make_field();
    rhs[b] = g.make_field();
    g.at(rhs[b], 5, 5, 1) = 1.0;  // point source per block
  }
  const auto res = bicgstab_solve(dom, u, rhs, 1.0, 1e-9, 500);
  ASSERT_TRUE(res.converged);
  double max_u = 0.0;
  for (const auto& f : u) {
    for (double v : f) max_u = std::max(max_u, std::abs(v));
  }
  EXPECT_GT(max_u, 1e-3);
}

TEST(Solver, RejectsMismatchedBlocks) {
  const auto dom = small_domain();
  std::vector<std::vector<double>> u(2), rhs(2);
  EXPECT_THROW((void)bicgstab_solve(dom, u, rhs, 1.0, 1e-8, 10),
               pk::InvalidArgumentError);
}

// ---------------------------------------------------------------------
// Performance simulation
// ---------------------------------------------------------------------

namespace {

GenResult run90(unsigned procs, Model model, bool optimized,
                pk::openuh::OptLevel opt = pk::openuh::OptLevel::kO2) {
  Machine machine(MachineConfig::altix3600());
  auto cfg = GenConfig::rib90();
  cfg.nprocs = procs;
  cfg.model = model;
  cfg.optimized = optimized;
  cfg.opt = opt;
  return run_genidlest(machine, cfg);
}

}  // namespace

TEST(Genidlest, ConfigPresets) {
  const auto c45 = GenConfig::rib45();
  EXPECT_EQ(c45.num_blocks, 8u);
  EXPECT_EQ(c45.cells_per_block(), 128u * 80 * 8);
  const auto c90 = GenConfig::rib90();
  EXPECT_EQ(c90.num_blocks, 32u);
  EXPECT_EQ(c90.cells_per_block(), 128u * 128 * 4);
  EXPECT_EQ(c90.face_bytes(), 128u * 128 * 8);
}

TEST(Genidlest, RejectsBadConfigs) {
  Machine m(MachineConfig::altix300());
  auto cfg = GenConfig::rib45();
  cfg.nprocs = 0;
  EXPECT_THROW(run_genidlest(m, cfg), pk::InvalidArgumentError);
  cfg.nprocs = 16;  // > 8 blocks
  EXPECT_THROW(run_genidlest(m, cfg), pk::InvalidArgumentError);
  cfg = GenConfig::rib45();
  cfg.num_blocks = 7;  // 64 % 7 != 0
  cfg.nprocs = 4;
  EXPECT_THROW(run_genidlest(m, cfg), pk::InvalidArgumentError);
}

TEST(Genidlest, ProfileStructureMatchesPaperEvents) {
  const auto r = run90(8, Model::kOpenMP, false);
  const auto& t = r.trial;
  for (const char* name :
       {"main", "initialization", "diff_coeff", "bicgstab",
        "exchange_var__", "mpi_send_recv_ko", "matxvec", "pc",
        "pc_jac_glb"}) {
    EXPECT_TRUE(t.find_event(name).has_value()) << name;
  }
  EXPECT_EQ(t.event(t.event_id("mpi_send_recv_ko")).parent,
            t.event_id("exchange_var__"));
  EXPECT_EQ(t.event(t.event_id("pc_jac_glb")).parent, t.event_id("pc"));
  EXPECT_TRUE(t.is_nested_under(t.event_id("exchange_var__"),
                                t.event_id("bicgstab")));
}

TEST(Genidlest, TimeAccountingConsistentAcrossThreads) {
  for (const auto model : {Model::kOpenMP, Model::kMpi}) {
    const auto r = run90(8, model, true);
    const auto& t = r.trial;
    const auto time = t.metric_id("TIME");
    const auto incl = t.inclusive_across_threads(t.event_id("main"), time);
    for (double v : incl) {
      EXPECT_NEAR(v, incl[0], incl[0] * 1e-6)
          << to_string(model);
    }
    // main inclusive equals elapsed.
    Machine m(MachineConfig::altix3600());
    EXPECT_NEAR(incl[0], m.usec(r.elapsed_cycles), incl[0] * 1e-6);
  }
}

TEST(Genidlest, UnoptimizedOpenMPLagsMpiByOrderTen) {
  // Paper: "The OpenMP version lagged by a factor of 11.16 behind its MPI
  // counterpart for the case of 90rib" (16 procs).
  const auto omp = run90(16, Model::kOpenMP, false);
  const auto mpi = run90(16, Model::kMpi, true);
  const double ratio = omp.elapsed_seconds / mpi.elapsed_seconds;
  EXPECT_GT(ratio, 8.0);
  EXPECT_LT(ratio, 15.0);
}

TEST(Genidlest, ExchangeVarIsAboutThirtyPercentOfUnoptimizedRuntime) {
  // Paper: exchange_var__ "represented 31% of the runtime".
  const auto r = run90(16, Model::kOpenMP, false);
  const auto& t = r.trial;
  const double frac =
      pk::analysis::runtime_fraction(t, t.event_id("exchange_var__")) +
      pk::analysis::runtime_fraction(t, t.event_id("mpi_send_recv_ko"));
  EXPECT_GT(frac, 0.22);
  EXPECT_LT(frac, 0.42);
}

TEST(Genidlest, OptimizedOpenMPWithinTwentyPercentOfMpi) {
  // Paper: the optimized difference is "minimal, in the range of 15%".
  const auto omp = run90(16, Model::kOpenMP, true);
  const auto mpi = run90(16, Model::kMpi, true);
  const double ratio = omp.elapsed_seconds / mpi.elapsed_seconds;
  EXPECT_GT(ratio, 1.0);
  EXPECT_LT(ratio, 1.25);
}

TEST(Genidlest, UnoptimizedOpenMPDoesNotScale) {
  const auto t1 = run90(1, Model::kOpenMP, false);
  const auto t16 = run90(16, Model::kOpenMP, false);
  const double speedup = t1.elapsed_seconds / t16.elapsed_seconds;
  EXPECT_LT(speedup, 2.5);  // "does not scale at all"
}

TEST(Genidlest, OptimizedVariantsScale) {
  const auto o1 = run90(1, Model::kOpenMP, true);
  const auto o16 = run90(16, Model::kOpenMP, true);
  EXPECT_GT(o1.elapsed_seconds / o16.elapsed_seconds, 10.0);
  const auto m1 = run90(1, Model::kMpi, true);
  const auto m16 = run90(16, Model::kMpi, true);
  EXPECT_GT(m1.elapsed_seconds / m16.elapsed_seconds, 10.0);
}

TEST(Genidlest, UnoptimizedHasRemoteAccessesOptimizedDoesNot) {
  const auto unopt = run90(16, Model::kOpenMP, false);
  const auto opt = run90(16, Model::kOpenMP, true);
  const double remote_unopt = unopt.aggregate_counters.get(
      Counter::kRemoteMemoryAccesses);
  const double remote_opt =
      opt.aggregate_counters.get(Counter::kRemoteMemoryAccesses);
  EXPECT_GT(remote_unopt, 10.0 * std::max(remote_opt, 1.0));
  // In the trial, matxvec shows the locality difference too.
  const auto& t = unopt.trial;
  const auto m = t.metric_id("REMOTE_MEMORY_ACCESSES");
  // Thread 0 (node 0, where the data landed) is local; thread 15 remote.
  const auto mx = t.event_id("matxvec");
  EXPECT_GT(t.exclusive(15, mx, m), t.exclusive(0, mx, m));
}

TEST(Genidlest, MpiInitializationPlacesDataLocally) {
  const auto r = run90(16, Model::kMpi, true);
  EXPECT_LT(r.aggregate_counters.get(Counter::kRemoteMemoryAccesses),
            0.01 * r.aggregate_counters.get(Counter::kL3Misses) + 1.0);
}

TEST(Genidlest, HigherOptLevelRunsFaster) {
  const auto o0 = run90(16, Model::kMpi, true, pk::openuh::OptLevel::kO0);
  const auto o2 = run90(16, Model::kMpi, true, pk::openuh::OptLevel::kO2);
  const auto o3 = run90(16, Model::kMpi, true, pk::openuh::OptLevel::kO3);
  EXPECT_GT(o0.elapsed_seconds, 3.0 * o2.elapsed_seconds);
  EXPECT_GT(o2.elapsed_seconds, o3.elapsed_seconds);
  // FLOPs are semantic work: identical across levels.
  EXPECT_NEAR(o0.aggregate_counters.get(Counter::kFpOps),
              o3.aggregate_counters.get(Counter::kFpOps),
              o0.aggregate_counters.get(Counter::kFpOps) * 1e-9);
  // Instruction count shrinks monotonically with optimization.
  EXPECT_GT(o0.aggregate_counters.get(Counter::kInstructionsCompleted),
            o2.aggregate_counters.get(Counter::kInstructionsCompleted));
}

TEST(Genidlest, DeterministicAcrossRuns) {
  const auto a = run90(8, Model::kOpenMP, false);
  const auto b = run90(8, Model::kOpenMP, false);
  EXPECT_EQ(a.elapsed_cycles, b.elapsed_cycles);
  EXPECT_DOUBLE_EQ(
      a.aggregate_counters.get(Counter::kCpuCycles),
      b.aggregate_counters.get(Counter::kCpuCycles));
}

TEST(Genidlest, MetadataDescribesTheRun) {
  const auto r = run90(4, Model::kOpenMP, true,
                       pk::openuh::OptLevel::kO3);
  EXPECT_EQ(*r.trial.metadata("model"), "OpenMP");
  EXPECT_EQ(*r.trial.metadata("optimized"), "true");
  EXPECT_EQ(*r.trial.metadata("opt_level"), "O3");
  EXPECT_EQ(*r.trial.metadata("nprocs"), "4");
  EXPECT_EQ(*r.trial.metadata("problem"), "128x128x128/32blocks");
}

TEST(Solver, SchwarzPreconditionerConvergesInFewerIterations) {
  const auto dom = small_domain();
  const GridBlock g(dom.nx, dom.ny, dom.nz_per_block());
  auto make_problem = [&](std::vector<std::vector<double>>& u,
                          std::vector<std::vector<double>>& rhs) {
    u.assign(dom.num_blocks, g.make_field());
    rhs.assign(dom.num_blocks, g.make_field());
    for (std::size_t b = 0; b < dom.num_blocks; ++b) {
      for (std::ptrdiff_t k = 0; k < static_cast<std::ptrdiff_t>(g.nz());
           ++k) {
        for (std::size_t j = 0; j < g.ny(); ++j) {
          for (std::size_t i = 0; i < g.nx(); ++i) {
            g.at(rhs[b], i, j, k) =
                std::sin(0.4 * static_cast<double>(i + j)) +
                0.2 * static_cast<double>(k);
          }
        }
      }
    }
  };

  std::vector<std::vector<double>> u_j, rhs_j;
  make_problem(u_j, rhs_j);
  SolverOptions jacobi;
  jacobi.tolerance = 1e-8;
  const auto rj = bicgstab_solve(dom, u_j, rhs_j, 1.0, jacobi);
  ASSERT_TRUE(rj.converged);

  std::vector<std::vector<double>> u_s, rhs_s;
  make_problem(u_s, rhs_s);
  SolverOptions schwarz;
  schwarz.preconditioner = PreconditionerKind::kAdditiveSchwarz;
  schwarz.cache_block_nz = 2;
  schwarz.schwarz_sweeps = 3;
  schwarz.tolerance = 1e-8;
  const auto rs = bicgstab_solve(dom, u_s, rhs_s, 1.0, schwarz);
  ASSERT_TRUE(rs.converged);

  // The Schwarz subdomain solves are a strictly stronger preconditioner
  // than pointwise Jacobi: fewer BiCGSTAB iterations.
  EXPECT_LT(rs.iterations, rj.iterations);
  // Both genuinely solve the system.
  EXPECT_LT(residual_norm(dom, u_s, rhs_s, 1.0), 1e-5);
  EXPECT_LT(residual_norm(dom, u_j, rhs_j, 1.0), 1e-5);
}

TEST(Solver, SchwarzOptionsValidated) {
  const auto dom = small_domain();
  const GridBlock g(dom.nx, dom.ny, dom.nz_per_block());
  std::vector<std::vector<double>> u(dom.num_blocks, g.make_field());
  std::vector<std::vector<double>> rhs(dom.num_blocks, g.make_field());
  SolverOptions bad;
  bad.cache_block_nz = 0;
  EXPECT_THROW((void)bicgstab_solve(dom, u, rhs, 1.0, bad),
               pk::InvalidArgumentError);
}
