// Rule-engine cost attribution (rules/profiler.hpp): the gate, the
// per-rule / per-level counters under all three matchers, the PKB
// export + fact-assertion round trip, and the shipped rule_tuning
// rulebase diagnosing planted pathologies end to end.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "io/format.hpp"
#include "provenance/explanation.hpp"
#include "profile/profile.hpp"
#include "profile/trial_view.hpp"
#include "rules/engine.hpp"
#include "rules/fact.hpp"
#include "rules/parser.hpp"
#include "rules/profiler.hpp"
#include "rules/rulebases.hpp"

namespace pk = perfknow;
namespace fs = std::filesystem;
using pk::rules::Fact;
using pk::rules::MatchStrategy;
using pk::rules::RuleHarness;
using pk::rules::RuleProfile;

namespace {

/// Restores the process-wide gate on scope exit so tests cannot leak
/// profiling state into each other.
struct GateGuard {
  bool prev = pk::rules::profiling_enabled();
  ~GateGuard() { pk::rules::set_profiling_enabled(prev); }
};

/// A two-pattern join that fires once per (hot, cold) pair sharing a
/// group, over a handful of facts.
constexpr const char* kJoinRules = R"(
rule "Hot And Cold"
when
    h : Sample( kind == "hot", g : group, hv : v )
    c : Sample( kind == "cold", group == g, v < hv )
then
    print("pair " + g)
end
)";

void assert_samples(RuleHarness& h, std::size_t groups) {
  for (std::size_t g = 0; g < groups; ++g) {
    const std::string name = "g" + std::to_string(g);
    h.assert_fact(Fact("Sample")
                      .set("kind", "hot")
                      .set("group", name)
                      .set("v", 10.0 + static_cast<double>(g)));
    h.assert_fact(Fact("Sample")
                      .set("kind", "cold")
                      .set("group", name)
                      .set("v", 1.0));
  }
}

const RuleProfile::PerRule* find_rule(const RuleProfile& p,
                                      const std::string& name) {
  for (const auto& r : p.rules) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

/// The CI planted pathology: a three-pattern cross product whose final
/// residual can never hold, so the join probes every token x candidate
/// pair for zero matches.
constexpr const char* kPlantedRules = R"(
rule "Planted Cross Product"
when
    a : Sample( x1 : v )
    b : Sample( )
    c : Sample( v > x1 + 1000000.0 )
then
end
)";

}  // namespace

TEST(RulesProfilerGate, DefaultsOffAndToggles) {
  GateGuard guard;
  pk::rules::set_profiling_enabled(false);
  EXPECT_FALSE(pk::rules::profiling_enabled());
  pk::rules::set_profiling_enabled(true);
  EXPECT_TRUE(pk::rules::profiling_enabled());
  pk::rules::set_profiling_enabled(false);
  EXPECT_FALSE(pk::rules::profiling_enabled());
}

TEST(RulesProfiler, CountsNothingWhileDisabled) {
  GateGuard guard;
  pk::rules::set_profiling_enabled(false);
  RuleHarness h;
  pk::rules::add_rules(h, kJoinRules, "test");
  assert_samples(h, 4);
  EXPECT_EQ(h.process_rules(), 4u);

  const auto profile = h.rule_profile();
  EXPECT_EQ(profile.cycles, 0u);
  const auto* r = find_rule(profile, "Hot And Cold");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->firings, 0u);
  EXPECT_EQ(r->activations, 0u);
  EXPECT_EQ(r->match_ns, 0u);
  for (const auto& lvl : r->levels) {
    EXPECT_EQ(lvl.probes, 0u);
    EXPECT_EQ(lvl.admissions, 0u);
  }
}

TEST(RulesProfiler, AttributesFiringsActivationsAndBindings) {
  GateGuard guard;
  pk::rules::set_profiling_enabled(true);
  RuleHarness h;
  pk::rules::add_rules(h, kJoinRules, "test");
  assert_samples(h, 4);
  EXPECT_EQ(h.process_rules(), 4u);

  const auto profile = h.rule_profile();
  EXPECT_EQ(profile.strategy, "beta");
  EXPECT_GE(profile.cycles, 1u);
  EXPECT_EQ(profile.wm_size, 8u);
  const auto* r = find_rule(profile, "Hot And Cold");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->firings, 4u);
  // Beta's delta join yields each tuple exactly once.
  EXPECT_EQ(r->activations, 4u);
  // Every activation materializes the same binding set, so the total
  // divides evenly and is nonzero.
  EXPECT_GT(r->bindings, 0u);
  EXPECT_EQ(r->bindings % r->activations, 0u);
  ASSERT_EQ(r->levels.size(), 2u);
  // Every hot fact passes level 0's alpha tests; every (hot, cold)
  // group pair survives the join.
  EXPECT_EQ(r->levels[0].admissions, 4u);
  EXPECT_GE(r->levels[1].probes, 4u);
  EXPECT_EQ(r->levels[1].hits, 4u);
  EXPECT_GT(r->match_ns, 0u);
}

TEST(RulesProfiler, FiringsAreByteIdenticalAcrossStrategiesWhileProfiling) {
  GateGuard guard;
  pk::rules::set_profiling_enabled(true);
  std::vector<std::string> outputs;
  std::vector<std::uint64_t> firings;
  for (const auto strategy : {MatchStrategy::kNaive, MatchStrategy::kIndexed,
                              MatchStrategy::kBeta}) {
    RuleHarness h;
    h.set_match_strategy(strategy);
    pk::rules::add_rules(h, kJoinRules, "test");
    assert_samples(h, 5);
    h.process_rules();
    std::string joined;
    for (const auto& line : h.output()) joined += line + "\n";
    outputs.push_back(joined);
    const auto* r = find_rule(h.rule_profile(), "Hot And Cold");
    ASSERT_NE(r, nullptr);
    firings.push_back(r->firings);
    // Probe/activation counts are strategy-local evidence (a
    // re-enumerating matcher re-enqueues deduped tuples), but no
    // strategy can enqueue fewer activations than it fires.
    EXPECT_GE(r->activations, r->firings);
  }
  EXPECT_EQ(outputs[0], outputs[1]);
  EXPECT_EQ(outputs[0], outputs[2]);
  EXPECT_EQ(firings[0], 5u);
  EXPECT_EQ(firings[1], 5u);
  EXPECT_EQ(firings[2], 5u);
}

TEST(RulesProfiler, ProfileToTrialRoundTripsAndAssertsFacts) {
  GateGuard guard;
  pk::rules::set_profiling_enabled(true);
  RuleHarness h;
  pk::rules::add_rules(h, kJoinRules, "test");
  assert_samples(h, 3);
  h.process_rules();

  const auto trial = pk::rules::profile_to_trial(h.rule_profile(), "prof");
  EXPECT_EQ(trial.metadata("perfknow.rules_profile"), "1");
  EXPECT_EQ(trial.metadata("rules.strategy"), "beta");

  // Round trip through PKB on disk, like the repository stores it.
  const fs::path file =
      fs::temp_directory_path() /
      ("perfknow_ruleprof_" + std::to_string(::getpid()) + ".pkb");
  pk::io::save_trial(trial, file, "pkb");
  const auto reloaded = pk::io::open_trial(file);
  fs::remove(file);

  RuleHarness tuning;
  const auto asserted = pk::rules::assert_profile_facts(tuning, reloaded);
  // One RuleProfileFact plus two JoinLevelFacts for the join rule.
  EXPECT_GE(asserted, 3u);
}

TEST(RulesProfiler, AssertProfileFactsRejectsNonProfileTrials) {
  pk::profile::Trial plain("not-a-profile");
  RuleHarness h;
  EXPECT_THROW(pk::rules::assert_profile_facts(h, plain),
               pk::InvalidArgumentError);
}

TEST(RuleTuning, PlantedCrossProductDiagnosedEndToEnd) {
  GateGuard guard;
  pk::rules::set_profiling_enabled(true);
  RuleHarness h;
  pk::rules::add_rules(h, kPlantedRules, "planted");
  for (std::size_t i = 0; i < 10; ++i) {
    h.assert_fact(Fact("Sample").set("v", static_cast<double>(i)));
  }
  h.process_rules();

  const auto profile = h.rule_profile();
  const auto* r = find_rule(profile, "Planted Cross Product");
  ASSERT_NE(r, nullptr);
  ASSERT_EQ(r->levels.size(), 3u);
  EXPECT_GE(r->levels[2].probes, 500u);
  EXPECT_EQ(r->levels[2].hits, 0u);
  EXPECT_EQ(r->firings, 0u);

  RuleHarness tuning;
  tuning.set_provenance(pk::provenance::ProvenanceMode::kFull);
  pk::rules::builtin::use(tuning, pk::rules::builtin::rule_tuning());
  pk::rules::assert_profile_facts(
      tuning, pk::rules::profile_to_trial(profile, "planted-profile"));
  tuning.process_rules();

  bool explosion = false;
  for (const auto& d : tuning.diagnoses()) {
    if (d.problem == "CombinatorialJoinExplosion" &&
        d.event == "Planted Cross Product") {
      explosion = true;
      ASSERT_TRUE(d.provenance);
      const auto text = pk::provenance::to_text(*d.provenance);
      EXPECT_NE(text.find("JoinLevelFact"), std::string::npos);
      EXPECT_NE(text.find("assert_profile_facts"), std::string::npos);
    }
  }
  EXPECT_TRUE(explosion);
}

TEST(RuleTuning, SyntheticFactsDriveEveryDiagnosis) {
  RuleHarness h;
  pk::rules::builtin::use(h, pk::rules::builtin::rule_tuning());
  // DeadRule: admitted facts across >= 2 cycles, zero firings.
  h.assert_fact(Fact("RuleProfileFact")
                    .set("ruleName", "sleeper")
                    .set("strategy", "beta")
                    .set("matchUsec", 12.5)
                    .set("firings", 0.0)
                    .set("activations", 0.0)
                    .set("bindings", 0.0)
                    .set("admissions", 5.0)
                    .set("cycles", 3.0)
                    .set("wmSize", 40.0));
  // LowSelectivityAnchor: a level-0 pattern admitting over half of
  // working memory.
  h.assert_fact(Fact("JoinLevelFact")
                    .set("ruleName", "broad")
                    .set("level", 0.0)
                    .set("admissions", 30.0)
                    .set("probes", 0.0)
                    .set("hits", 0.0)
                    .set("liveTokens", 30.0)
                    .set("deadTokens", 0.0)
                    .set("tokenBytes", 300.0)
                    .set("wmSize", 40.0));
  // DeadTokenBloat: more invalidated tokens than live ones.
  h.assert_fact(Fact("JoinLevelFact")
                    .set("ruleName", "churny")
                    .set("level", 1.0)
                    .set("admissions", 10.0)
                    .set("probes", 50.0)
                    .set("hits", 10.0)
                    .set("liveTokens", 10.0)
                    .set("deadTokens", 100.0)
                    .set("tokenBytes", 990.0)
                    .set("wmSize", 40.0));
  // CombinatorialJoinExplosion: many probes, almost no hits.
  h.assert_fact(Fact("JoinLevelFact")
                    .set("ruleName", "crossy")
                    .set("level", 2.0)
                    .set("admissions", 9.0)
                    .set("probes", 700.0)
                    .set("hits", 2.0)
                    .set("liveTokens", 2.0)
                    .set("deadTokens", 0.0)
                    .set("tokenBytes", 50.0)
                    .set("wmSize", 40.0));
  h.process_rules();

  const auto has = [&](const std::string& problem,
                       const std::string& event) {
    for (const auto& d : h.diagnoses()) {
      if (d.problem == problem && d.event == event) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("DeadRule", "sleeper"));
  EXPECT_TRUE(has("LowSelectivityAnchor", "broad"));
  EXPECT_TRUE(has("DeadTokenBloat", "churny"));
  EXPECT_TRUE(has("CombinatorialJoinExplosion", "crossy"));
  // The well-behaved fact shapes must not misfire: no diagnosis names a
  // rule that is not one of the planted pathologies.
  for (const auto& d : h.diagnoses()) {
    EXPECT_TRUE(d.event == "sleeper" || d.event == "broad" ||
                d.event == "churny" || d.event == "crossy")
        << d.to_string();
  }
}
