// Tests for the provenance subsystem: capture in the rule engine, the
// structural guarantee that every explanation bottoms out in raw trial
// facts, renderer round trips, and the differential guarantee that
// capture never changes what is diagnosed.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/facts.hpp"
#include "analysis/mpi_analysis.hpp"
#include "analysis/operations.hpp"
#include "apps/genidlest/genidlest.hpp"
#include "apps/msap/msap.hpp"
#include "common/error.hpp"
#include "hwcounters/counters.hpp"
#include "instrument/overhead.hpp"
#include "machine/machine.hpp"
#include "perfdmf/repository.hpp"
#include "power/power_model.hpp"
#include "provenance/explanation.hpp"
#include "provenance/lineage.hpp"
#include "rules/engine.hpp"
#include "rules/parser.hpp"
#include "rules/rulebases.hpp"
#include "runtime/mpi.hpp"
#include "runtime/omp.hpp"
#include "runtime/omp_collector.hpp"
#include "script/bindings.hpp"
#include "telemetry/export.hpp"
#include "telemetry/self_analysis.hpp"
#include "telemetry/telemetry.hpp"

namespace pk = perfknow;
namespace prov = pk::provenance;
namespace gen = pk::apps::genidlest;
namespace msap = pk::apps::msap;
using pk::machine::Machine;
using pk::machine::MachineConfig;
using pk::provenance::ProvenanceMode;
using pk::rules::Fact;
using pk::rules::RuleHarness;

namespace {

pk::profile::Trial run_gen_trial(unsigned procs, bool optimized) {
  Machine machine(MachineConfig::altix3600());
  auto cfg = gen::GenConfig::rib90();
  cfg.nprocs = procs;
  cfg.model = gen::Model::kOpenMP;
  cfg.optimized = optimized;
  return gen::run_genidlest(machine, cfg).trial;
}

pk::profile::Trial run_msap_trial() {
  Machine machine(MachineConfig::altix300());
  msap::MsapConfig cfg;
  cfg.threads = 16;
  cfg.schedule = pk::runtime::Schedule::static_even();
  return msap::run_msap(machine, cfg).trial;
}

// The full OpenUH pipeline of the integration tests, with derived
// metrics so HighInefficiency rules have something to match.
void assert_openuh_facts(RuleHarness& harness, pk::profile::Trial& trial) {
  pk::analysis::derive_metric(trial, "BACK_END_BUBBLE_ALL", "CPU_CYCLES",
                              pk::analysis::DeriveOp::kDivide);
  pk::analysis::derive_metric(trial, "FP_OPS",
                              "(BACK_END_BUBBLE_ALL / CPU_CYCLES)",
                              pk::analysis::DeriveOp::kMultiply);
  pk::analysis::assert_compare_to_average_facts(
      harness, trial, "(FP_OPS * (BACK_END_BUBBLE_ALL / CPU_CYCLES))");
  pk::analysis::assert_load_balance_facts(harness, trial);
  pk::analysis::assert_stall_facts(harness, trial);
  pk::analysis::assert_memory_locality_facts(harness, trial);
}

// Walks one firing's proof tree: every bound fact either chains to the
// firing that asserted it (recurse) or carries an analysis-layer origin
// label — exactly one of the two, so the tree bottoms out only in facts
// asserted from raw trial data.
void expect_grounded(const prov::FiringNode& firing) {
  EXPECT_FALSE(firing.rule.empty());
  EXPECT_GE(firing.generation, 1u);
  for (const auto& bound : firing.facts) {
    if (bound.derived_from) {
      EXPECT_TRUE(bound.origin.empty())
          << "fact #" << bound.id << " has both a lineage edge and an "
          << "origin label";
      expect_grounded(*bound.derived_from);
    } else {
      EXPECT_EQ(bound.origin.rfind("assert_", 0), 0u)
          << "fact " << bound.type << " #" << bound.id << " of rule \""
          << firing.rule << "\" is not grounded in an analysis-layer "
          << "assert: origin = \"" << bound.origin << "\"";
    }
  }
}

void expect_all_grounded(const RuleHarness& harness) {
  ASSERT_FALSE(harness.diagnoses().empty());
  for (const auto& d : harness.diagnoses()) {
    ASSERT_NE(d.provenance, nullptr)
        << "diagnosis \"" << d.to_string() << "\" has no explanation";
    EXPECT_FALSE(d.explain().empty());
    ASSERT_NE(d.provenance->root, nullptr);
    EXPECT_EQ(d.provenance->rule, d.rule);
    expect_grounded(*d.provenance->root);
  }
}

}  // namespace

TEST(Provenance, OffByDefaultAndRecordsNothing) {
  RuleHarness harness;
  EXPECT_EQ(harness.provenance_mode(), ProvenanceMode::kOff);
  pk::rules::add_rules(harness, R"RULES(
    rule "flag it"
    when f : S( v > 1 )
    then diagnose(problem = "P", event = "e", severity = f.v) end
  )RULES");
  harness.assert_fact(Fact("S").set("v", 2.0));
  EXPECT_EQ(harness.process_rules(), 1u);
  ASSERT_EQ(harness.diagnoses().size(), 1u);
  EXPECT_EQ(harness.diagnoses()[0].provenance, nullptr);
  EXPECT_EQ(harness.diagnoses()[0].explain(), "");
}

TEST(Provenance, ChainedAssertionsLinkFirings) {
  const std::string src = R"RULES(
    rule "seed to derived"
    when s : Seed( v > 1, n : name )
    then
      print("deriving from " + n)
      assert(Derived(name = n, doubled = s.v * 2))
    end
    rule "derived to diagnosis"
    when d : Derived( doubled > 3, n : name )
    then diagnose(problem = "Chained", event = n, severity = d.doubled) end
  )RULES";

  for (const auto mode : {ProvenanceMode::kRules, ProvenanceMode::kFull}) {
    RuleHarness harness;
    harness.set_provenance(mode);
    pk::rules::add_rules(harness, src, "chain.rules");
    {
      const pk::rules::ProvenanceSource source(harness,
                                               "assert_test_facts()");
      harness.assert_fact(Fact("Seed").set("v", 2.0).set("name", "n1"));
    }
    EXPECT_EQ(harness.process_rules(), 2u);
    ASSERT_EQ(harness.diagnoses().size(), 1u);
    const auto& e = *harness.diagnoses()[0].provenance;
    EXPECT_EQ(e.problem, "Chained");
    ASSERT_NE(e.root, nullptr);

    // Root firing: the diagnosing rule, matching the Derived fact.
    EXPECT_EQ(e.root->rule, "derived to diagnosis");
    EXPECT_EQ(e.root->rule_loc.file, "chain.rules");
    ASSERT_EQ(e.root->facts.size(), 1u);
    const auto& derived = e.root->facts[0];
    EXPECT_EQ(derived.type, "Derived");
    EXPECT_TRUE(derived.origin.empty());

    // ...which chains to the firing that asserted it...
    ASSERT_NE(derived.derived_from, nullptr);
    const auto& first = *derived.derived_from;
    EXPECT_EQ(first.rule, "seed to derived");
    EXPECT_EQ(first.prints,
              (std::vector<std::string>{"deriving from n1"}));
    EXPECT_LT(first.id, e.root->id);

    // ...whose Seed fact bottoms out in the labelled source.
    ASSERT_EQ(first.facts.size(), 1u);
    EXPECT_EQ(first.facts[0].type, "Seed");
    EXPECT_EQ(first.facts[0].origin, "assert_test_facts()");
    EXPECT_EQ(first.facts[0].derived_from, nullptr);

    // Field snapshots are a kFull-only feature.
    if (mode == ProvenanceMode::kFull) {
      EXPECT_EQ(first.facts[0].fields.size(), 2u);
    } else {
      EXPECT_TRUE(first.facts[0].fields.empty());
    }

    const std::string text = harness.diagnoses()[0].explain();
    EXPECT_NE(text.find("because rule \"derived to diagnosis\" fired"),
              std::string::npos);
    EXPECT_NE(text.find("because rule \"seed to derived\" fired"),
              std::string::npos);
    EXPECT_NE(text.find("from assert_test_facts()"), std::string::npos);
  }
}

TEST(Provenance, DiagnosesByteIdenticalOffVsFull) {
  const auto baseline = run_gen_trial(16, false);
  std::vector<std::string> reference_diags;
  std::vector<std::string> reference_output;
  for (const auto mode : {ProvenanceMode::kOff, ProvenanceMode::kRules,
                          ProvenanceMode::kFull}) {
    auto trial = baseline;
    RuleHarness harness;
    harness.set_provenance(mode);
    pk::rules::builtin::use(harness, pk::rules::builtin::openuh_rules());
    assert_openuh_facts(harness, trial);
    harness.process_rules();

    std::vector<std::string> diags;
    for (const auto& d : harness.diagnoses()) diags.push_back(d.to_string());
    ASSERT_FALSE(diags.empty());
    if (mode == ProvenanceMode::kOff) {
      reference_diags = diags;
      reference_output = harness.output();
    } else {
      EXPECT_EQ(diags, reference_diags)
          << "provenance mode " << prov::to_string(mode)
          << " changed the diagnoses";
      EXPECT_EQ(harness.output(), reference_output);
    }
  }
}

TEST(Provenance, OpenuhExplanationsGroundInRawTrialFacts) {
  auto trial = run_gen_trial(16, false);
  RuleHarness harness;
  harness.set_provenance(ProvenanceMode::kFull);
  pk::rules::builtin::use(harness, pk::rules::builtin::openuh_rules());
  assert_openuh_facts(harness, trial);

  auto base = std::make_shared<pk::profile::Trial>(run_gen_trial(1, false));
  auto at16 = std::make_shared<pk::profile::Trial>(trial);
  pk::analysis::ScalabilityAnalysis scaling({base, at16});
  pk::analysis::assert_scaling_facts(harness, scaling);

  harness.process_rules();
  expect_all_grounded(harness);

  // Facts built from derived metrics carry lineage back to raw columns.
  bool saw_derived_lineage = false;
  for (const auto& d : harness.diagnoses()) {
    for (const auto& bound : d.provenance->root->facts) {
      for (const auto& line : bound.lineage) {
        if (line.find("raw column") != std::string::npos) {
          saw_derived_lineage = true;
        }
      }
    }
  }
  EXPECT_TRUE(saw_derived_lineage);
}

TEST(Provenance, LoadImbalanceExplanationsGroundInRawTrialFacts) {
  const auto trial = run_msap_trial();
  RuleHarness harness;
  harness.set_provenance(ProvenanceMode::kFull);
  pk::rules::builtin::use(harness, pk::rules::builtin::load_imbalance());
  pk::analysis::assert_load_balance_facts(harness, trial);
  harness.process_rules();
  ASSERT_FALSE(harness.diagnoses_for("LoadImbalance").empty());
  expect_all_grounded(harness);
}

// The remaining shipped rulebases — power, openmp, communication, and
// instrumentation — draw their facts from dedicated collectors rather
// than trial columns; their diagnoses must ground the same way.
TEST(Provenance, PowerExplanationsGroundInStudyFacts) {
  pk::power::PowerStudy study(pk::power::PowerModel::itanium2());
  const double flops = 1e12;
  auto add = [&](pk::openuh::OptLevel lvl, double seconds, double instr) {
    pk::hwcounters::CounterVector agg;
    const double cycles = seconds * 1.5e9 * 16;
    agg.set(pk::hwcounters::Counter::kCpuCycles, cycles);
    agg.set(pk::hwcounters::Counter::kInstructionsCompleted, instr);
    agg.set(pk::hwcounters::Counter::kInstructionsIssued, instr * 1.05);
    agg.set(pk::hwcounters::Counter::kFpOps, flops);
    agg.set(pk::hwcounters::Counter::kLoads, instr * 0.3);
    agg.set(pk::hwcounters::Counter::kL2References, instr * 0.05);
    agg.set(pk::hwcounters::Counter::kL3References, instr * 0.01);
    agg.set(pk::hwcounters::Counter::kL3Misses, cycles * 0.001);
    study.add(lvl, agg, seconds, 16);
  };
  add(pk::openuh::OptLevel::kO0, 100.0, 1.0e13);
  add(pk::openuh::OptLevel::kO1, 34.0, 4.7e12);
  add(pk::openuh::OptLevel::kO2, 7.1, 5.9e11);
  add(pk::openuh::OptLevel::kO3, 4.9, 5.6e11);

  RuleHarness harness;
  harness.set_provenance(ProvenanceMode::kFull);
  pk::rules::builtin::use(harness, pk::rules::builtin::power());
  study.assert_facts(harness);
  harness.process_rules();
  ASSERT_FALSE(harness.diagnoses_for("LowPowerSetting").empty());
  expect_all_grounded(harness);
}

TEST(Provenance, OpenmpExplanationsGroundInCollectorFacts) {
  Machine m(MachineConfig::altix300());
  pk::runtime::OmpTeam team(m, 8);
  pk::runtime::OmpCollector collector(8);
  const auto hook = collector.hook();
  for (int i = 0; i < 100; ++i) {
    const auto r = team.parallel_for(
        8, pk::runtime::Schedule::static_even(),
        [](std::uint64_t, unsigned) { return 50; });
    pk::runtime::emit_collector_events(team, "tiny_region", r, hook);
  }
  RuleHarness harness;
  harness.set_provenance(ProvenanceMode::kFull);
  pk::rules::builtin::use(harness, pk::rules::builtin::openmp());
  collector.assert_facts(harness);
  harness.process_rules();
  ASSERT_FALSE(harness.diagnoses_for("ForkJoinOverhead").empty());
  expect_all_grounded(harness);
}

TEST(Provenance, CommunicationExplanationsGroundInRecorderFacts) {
  Machine m(MachineConfig::altix300());
  pk::runtime::MpiWorld w(m, 2);
  pk::analysis::CommRecorder rec(2);
  w.set_hook(rec.hook());
  w.compute(0, 10'000'000);
  const auto s = w.isend(0, 1, 1024);
  const auto r = w.irecv(1, 0, 1024);
  w.wait(1, r);
  w.wait(0, s);

  RuleHarness harness;
  harness.set_provenance(ProvenanceMode::kFull);
  pk::rules::builtin::use(harness, pk::rules::builtin::communication());
  pk::analysis::assert_communication_facts(harness, rec, w.elapsed());
  pk::analysis::assert_late_sender_facts(harness, rec, w.elapsed());
  harness.process_rules();
  ASSERT_FALSE(harness.diagnoses_for("LateSender").empty());
  expect_all_grounded(harness);
}

TEST(Provenance, InstrumentationExplanationsGroundInOverheadFacts) {
  pk::profile::Trial t("oh");
  t.set_thread_count(2);
  const auto cyc = t.add_metric("CPU_CYCLES");
  const auto main_e = t.add_event("main");
  const auto fat = t.add_event("fat_kernel", main_e);
  const auto tiny = t.add_event("tiny_hot", main_e);
  for (std::size_t th = 0; th < 2; ++th) {
    t.set_inclusive(th, main_e, cyc, 1e9);
    t.set_calls(th, main_e, 1, 2);
    t.set_inclusive(th, fat, cyc, 9e8);
    t.set_calls(th, fat, 10, 0);
    t.set_inclusive(th, tiny, cyc, 1e6);
    t.set_calls(th, tiny, 1e6, 0);
  }
  const auto report = pk::instrument::estimate_overhead(t);

  RuleHarness harness;
  harness.set_provenance(ProvenanceMode::kFull);
  pk::rules::builtin::use(harness, pk::rules::builtin::instrumentation());
  pk::instrument::assert_overhead_facts(harness, report);
  harness.process_rules();
  ASSERT_FALSE(harness.diagnoses_for("InstrumentationOverhead").empty());
  expect_all_grounded(harness);
}

TEST(Provenance, SelfDiagnosisExplanationsGroundInTelemetryFacts) {
  pk::telemetry::reset();
  pk::telemetry::set_enabled(true);
  {
    pk::telemetry::ScopedSpan span(std::string_view("test.provenance"));
    auto trial = run_msap_trial();
    (void)trial;
  }
  pk::telemetry::set_enabled(false);
  const auto snap = pk::telemetry::snapshot();
  const auto self_trial = pk::telemetry::to_trial(snap, "self");

  RuleHarness harness;
  harness.set_provenance(ProvenanceMode::kFull);
  pk::rules::builtin::use(harness, pk::rules::builtin::self_diagnosis());
  pk::telemetry::assert_self_facts(harness, self_trial);
  harness.process_rules();
  // Whether anything fires depends on the captured workload; whatever
  // did fire must be grounded in assert_self_facts.
  for (const auto& d : harness.diagnoses()) {
    ASSERT_NE(d.provenance, nullptr);
    expect_grounded(*d.provenance->root);
  }
}

TEST(Provenance, JsonRoundTripPreservesRenderedText) {
  auto trial = run_gen_trial(16, false);
  RuleHarness harness;
  harness.set_provenance(ProvenanceMode::kFull);
  pk::rules::builtin::use(harness, pk::rules::builtin::openuh_rules());
  assert_openuh_facts(harness, trial);
  harness.process_rules();

  std::vector<prov::Explanation> explanations;
  for (const auto& d : harness.diagnoses()) {
    if (d.provenance) explanations.push_back(*d.provenance);
  }
  ASSERT_FALSE(explanations.empty());

  const std::string json = prov::to_json(explanations);
  const auto parsed = prov::explanations_from_json(json);
  ASSERT_EQ(parsed.size(), explanations.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(prov::to_text(parsed[i]), prov::to_text(explanations[i]))
        << "explanation " << i << " changed across the JSON round trip";
    EXPECT_DOUBLE_EQ(parsed[i].severity, explanations[i].severity);
  }
  // A second encode of the parsed form is byte-identical (stable order).
  EXPECT_EQ(prov::to_json(parsed), json);

  // The single-object form round-trips too.
  const auto one = prov::explanations_from_json(to_json(explanations[0]));
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(prov::to_text(one[0]), prov::to_text(explanations[0]));
}

TEST(Provenance, JsonParserRejectsMalformedInput) {
  EXPECT_THROW((void)prov::explanations_from_json(""), pk::ParseError);
  EXPECT_THROW((void)prov::explanations_from_json("42"), pk::ParseError);
  EXPECT_THROW((void)prov::explanations_from_json("[{]"), pk::ParseError);
  EXPECT_THROW((void)prov::explanations_from_json("{\"a\":"),
               pk::ParseError);
  EXPECT_THROW((void)prov::explanations_from_json("\"just a string\""),
               pk::ParseError);
  // Deep nesting hits the depth limit instead of the stack guard page.
  const std::string deep(200, '[');
  EXPECT_THROW((void)prov::explanations_from_json(deep), pk::ParseError);
  // Tolerant on content: an explanation-shaped object with junk keys.
  const auto parsed = prov::explanations_from_json(
      R"({"schema":"perfknow.explanation/1","junk":[1,2,{}],)"
      R"("diagnosis":{"rule":"r","problem":"p","severity":"not a number"}})");
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].problem, "p");
  EXPECT_EQ(parsed[0].severity, 0.0);
}

TEST(Provenance, DotRendersDedupedDag) {
  RuleHarness harness;
  harness.set_provenance(ProvenanceMode::kFull);
  pk::rules::add_rules(harness, R"RULES(
    rule "pair"
    when a : S( v > 0 ) b : S( v > 1 )
    then diagnose(problem = "P", event = a.name, severity = b.v) end
  )RULES");
  {
    const pk::rules::ProvenanceSource source(harness, "assert_pairs()");
    harness.assert_fact(Fact("S").set("v", 1.0).set("name", "x"));
    harness.assert_fact(Fact("S").set("v", 2.0).set("name", "y"));
  }
  harness.process_rules();
  ASSERT_FALSE(harness.diagnoses().empty());

  std::vector<prov::Explanation> explanations;
  for (const auto& d : harness.diagnoses()) {
    explanations.push_back(*d.provenance);
  }
  const std::string dot = prov::to_dot(explanations);
  EXPECT_EQ(dot.rfind("digraph provenance {", 0), 0u);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("shape=ellipse"), std::string::npos);
  EXPECT_NE(dot.find("shape=doubleoctagon"), std::string::npos);
  EXPECT_NE(dot.find("assert_pairs()"), std::string::npos);
  // Fact #2 ("y", v=2) is bound by both firings but declared once.
  std::size_t count = 0;
  for (std::size_t pos = dot.find("f2 [shape="); pos != std::string::npos;
       pos = dot.find("f2 [shape=", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST(Provenance, MetricLineageChainsToRawColumns) {
  auto trial = run_gen_trial(16, false);
  pk::analysis::derive_metric(trial, "BACK_END_BUBBLE_ALL", "CPU_CYCLES",
                              pk::analysis::DeriveOp::kDivide);
  const std::string derived = "(BACK_END_BUBBLE_ALL / CPU_CYCLES)";

  const auto lineage = prov::lineage_of(trial, derived);
  ASSERT_TRUE(lineage.has_value());
  EXPECT_EQ(lineage->operation, "derive(/)");
  EXPECT_EQ(lineage->operands,
            (std::vector<std::string>{"BACK_END_BUBBLE_ALL", "CPU_CYCLES"}));

  const auto chain = prov::lineage_chain(trial, derived);
  ASSERT_GE(chain.size(), 3u);
  EXPECT_NE(chain[0].find("derive(/)"), std::string::npos);
  EXPECT_NE(chain[1].find("\"BACK_END_BUBBLE_ALL\": raw column"),
            std::string::npos);
  EXPECT_NE(chain[2].find("\"CPU_CYCLES\": raw column"), std::string::npos);

  // Raw metrics have no stamped lineage.
  EXPECT_FALSE(prov::lineage_of(trial, "CPU_CYCLES").has_value());
  const auto raw_chain = prov::lineage_chain(trial, "CPU_CYCLES");
  ASSERT_EQ(raw_chain.size(), 1u);
  EXPECT_NE(raw_chain[0].find("raw column"), std::string::npos);
}

TEST(Provenance, ScriptBindingsExposeExplanations) {
  pk::perfdmf::Repository repo;
  auto trial = std::make_shared<pk::profile::Trial>(run_msap_trial());
  const std::string trial_name = trial->name();
  repo.put("app", "exp", trial);
  pk::script::SessionOptions options{&repo};
  options.provenance = ProvenanceMode::kFull;
  pk::script::AnalysisSession session(options);
  EXPECT_EQ(session.harness().provenance_mode(), ProvenanceMode::kFull);

  session.run(
      "ruleHarness = RuleHarness.useGlobalRules(\"openuh/OpenUHRules.drl\")\n"
      "trial = Utilities.getTrial(\"app\", \"exp\", \"" +
      trial_name +
      "\")\n"
      "assertLoadBalanceFacts(trial)\n"
      "ruleHarness.processRules()\n"
      "print(Session.provenanceMode())\n"
      "diags = ruleHarness.getDiagnoses()\n"
      "print(diags.get(0).explain())\n");
  // The rulebase's own print() lines precede the script's two prints.
  const auto& out = session.output();
  ASSERT_GE(out.size(), 2u);
  EXPECT_EQ(out[out.size() - 2], "full");
  const std::string& text = out.back();
  EXPECT_NE(text.find("because rule"), std::string::npos);
  EXPECT_NE(text.find("from assert_load_balance_facts"),
            std::string::npos);

  session.run("print(Session.explainAll())");
  EXPECT_NE(session.output().back().find("because rule"),
            std::string::npos);
}

// Writes the rendered reports the CI workflow uploads as artifacts; the
// checks above already validated their content.
TEST(Provenance, WritesExplanationReportsForCI) {
  auto trial = run_gen_trial(16, false);
  RuleHarness harness;
  harness.set_provenance(ProvenanceMode::kFull);
  pk::rules::builtin::use(harness, pk::rules::builtin::openuh_rules());
  assert_openuh_facts(harness, trial);
  harness.process_rules();

  std::vector<prov::Explanation> explanations;
  for (const auto& d : harness.diagnoses()) {
    if (d.provenance) explanations.push_back(*d.provenance);
  }
  ASSERT_FALSE(explanations.empty());

  namespace fs = std::filesystem;
  const fs::path dir = fs::path("explanations");
  fs::create_directories(dir);
  {
    std::ofstream os(dir / "genidlest_unopt.txt");
    for (const auto& e : explanations) os << prov::to_text(e) << "\n";
  }
  {
    std::ofstream os(dir / "genidlest_unopt.dot");
    os << prov::to_dot(explanations);
  }
  {
    std::ofstream os(dir / "genidlest_unopt.json");
    os << prov::to_json(explanations);
  }
  EXPECT_GT(fs::file_size(dir / "genidlest_unopt.txt"), 0u);
  EXPECT_GT(fs::file_size(dir / "genidlest_unopt.dot"), 0u);
  EXPECT_GT(fs::file_size(dir / "genidlest_unopt.json"), 0u);
}
