// Tests for the MSAP case-study application (paper §III-A).
#include <gtest/gtest.h>

#include "apps/msap/msap.hpp"
#include "common/error.hpp"
#include "machine/machine.hpp"

namespace pk = perfknow;
using namespace pk::apps::msap;
using pk::machine::Machine;
using pk::machine::MachineConfig;
using pk::runtime::Schedule;

TEST(SmithWaterman, KnownAlignments) {
  // Identical sequences: every position matches.
  EXPECT_EQ(smith_waterman_score("ACGT", "ACGT"), 12);  // 4 * match(3)
  // Disjoint alphabets: best local alignment is empty.
  EXPECT_EQ(smith_waterman_score("AAAA", "CCCC"), 0);
  // Local alignment finds the common substring.
  EXPECT_EQ(smith_waterman_score("XXXACGTXXX", "YYACGTYY"), 12);
  // One gap: match(3)*4 + gap(-2) for TTTT vs TT-TT style.
  EXPECT_EQ(smith_waterman_score("TTAATT", "TTATT"),
            smith_waterman_score("TTATT", "TTAATT"));
  EXPECT_EQ(smith_waterman_score("", "ACGT"), 0);
}

TEST(SmithWaterman, ScoreIsSymmetric) {
  const auto seqs = generate_sequences(6, 20, 60, 1.1, 42);
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    for (std::size_t j = i + 1; j < seqs.size(); ++j) {
      EXPECT_EQ(smith_waterman_score(seqs[i], seqs[j]),
                smith_waterman_score(seqs[j], seqs[i]));
    }
  }
}

TEST(Sequences, GeneratorRespectsBoundsAndSeed) {
  const auto a = generate_sequences(50, 100, 1200, 1.05, 7);
  const auto b = generate_sequences(50, 100, 1200, 1.05, 7);
  const auto c = generate_sequences(50, 100, 1200, 1.05, 8);
  EXPECT_EQ(a.size(), 50u);
  ASSERT_EQ(a, b);  // deterministic
  EXPECT_NE(a, c);
  for (const auto& s : a) {
    EXPECT_GE(s.size(), 100u);
    EXPECT_LE(s.size(), 1200u);
    for (char ch : s) {
      EXPECT_NE(std::string("ACDEFGHIKLMNPQRSTVWY").find(ch),
                std::string::npos);
    }
  }
  EXPECT_THROW(generate_sequences(5, 0, 10, 1.0, 1),
               pk::InvalidArgumentError);
}

TEST(Msap, RealAlignmentPathMatchesModelStructure) {
  Machine m(MachineConfig::altix300());
  MsapConfig cfg;
  cfg.num_sequences = 12;
  cfg.min_len = 20;
  cfg.max_len = 80;
  cfg.threads = 4;
  cfg.compute_alignments = true;
  const auto r = run_msap(m, cfg);
  ASSERT_EQ(r.scores.size(), 144u);
  // Scores computed for all pairs, symmetric, zero diagonal.
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(r.scores[i * 12 + i], 0);
    for (std::size_t j = i + 1; j < 12; ++j) {
      EXPECT_EQ(r.scores[i * 12 + j], r.scores[j * 12 + i]);
      EXPECT_GT(r.scores[i * 12 + j], 0);  // 20-letter overlap exists
    }
  }
}

TEST(Msap, StaticEvenIsImbalancedDynamicIsNot) {
  Machine m1(MachineConfig::altix300());
  MsapConfig cfg;
  cfg.threads = 16;
  cfg.schedule = Schedule::static_even();
  const auto st = run_msap(m1, cfg);
  Machine m2(MachineConfig::altix300());
  cfg.schedule = Schedule::dynamic(1);
  const auto dy = run_msap(m2, cfg);

  // The paper's rule thresholds: CV > 0.25 for the imbalanced case.
  EXPECT_GT(st.stage1_loop.imbalance(), 0.25);
  EXPECT_LT(dy.stage1_loop.imbalance(), 0.10);
  EXPECT_LT(dy.elapsed_cycles, st.elapsed_cycles);
}

TEST(Msap, Dynamic1IsNear93PercentEfficientAt16Threads) {
  // Fig. 4(b): "A dynamic schedule with a chunk size of 1 is nearly 93%
  // efficient using 16 processors" (400-sequence set).
  MsapConfig base;
  base.schedule = Schedule::dynamic(1);
  base.threads = 1;
  Machine m1(MachineConfig::altix300());
  const auto t1 = run_msap(m1, base);
  base.threads = 16;
  Machine m16(MachineConfig::altix300());
  const auto t16 = run_msap(m16, base);
  const double speedup = static_cast<double>(t1.elapsed_cycles) /
                         static_cast<double>(t16.elapsed_cycles);
  const double efficiency = speedup / 16.0;
  EXPECT_GT(efficiency, 0.88);
  EXPECT_LT(efficiency, 0.97);
}

TEST(Msap, ProfileAccountingIsConsistent) {
  Machine m(MachineConfig::altix300());
  MsapConfig cfg;
  cfg.threads = 8;
  const auto r = run_msap(m, cfg);
  const auto& t = r.trial;
  const auto time = t.metric_id("TIME");
  const auto main = t.event_id("main");
  // Every thread spans the whole run: identical main inclusive time.
  const auto incl = t.inclusive_across_threads(main, time);
  for (double v : incl) EXPECT_NEAR(v, incl[0], incl[0] * 1e-9);
  // Callgraph: inner_loop nested under outer_loop under distance_matrix.
  EXPECT_TRUE(t.is_nested_under(t.event_id("inner_loop"),
                                t.event_id("distance_matrix")));
  EXPECT_EQ(t.event(t.event_id("inner_loop")).parent,
            t.event_id("outer_loop"));
  // Inclusive main equals elapsed cycles (in usec).
  EXPECT_NEAR(incl[0], m.usec(r.elapsed_cycles), 1.0);
  // Metadata captured for rules.
  EXPECT_EQ(*t.metadata("schedule"), "static");
  EXPECT_EQ(*t.metadata("threads"), "8");
}

TEST(Msap, Stage1Dominates) {
  Machine m(MachineConfig::altix300());
  MsapConfig cfg;
  cfg.threads = 1;
  const auto r = run_msap(m, cfg);
  const double frac = static_cast<double>(r.stage1_cycles) /
                      static_cast<double>(r.elapsed_cycles);
  EXPECT_GT(frac, 0.90);  // "almost 90% of the time in the first stage"
}

TEST(Msap, TotalCellsMatchesPairSum) {
  const std::vector<std::string> seqs = {"AAA", "CCCCC", "GG"};
  // pairs: 3*5 + 3*2 + 5*2 = 31
  EXPECT_DOUBLE_EQ(total_cells(seqs), 31.0);
}

TEST(Msap, RejectsDegenerateConfigs) {
  Machine m(MachineConfig::altix300());
  MsapConfig cfg;
  cfg.num_sequences = 1;
  EXPECT_THROW(run_msap(m, cfg), pk::InvalidArgumentError);
  cfg.num_sequences = 10;
  cfg.threads = 64;  // more than the Altix 300 has
  EXPECT_THROW(run_msap(m, cfg), pk::InvalidArgumentError);
}
