// Unit tests for the common utilities: stats, strings, rng, table.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace pk = perfknow;
using pk::stats::LinearFit;

TEST(Stats, MeanAndVariance) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(pk::stats::mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(pk::stats::variance(xs), 2.0);
  EXPECT_DOUBLE_EQ(pk::stats::stddev(xs), std::sqrt(2.0));
}

TEST(Stats, SampleStddevUsesNMinusOne) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(pk::stats::sample_stddev(xs), std::sqrt(10.0 / 4.0));
}

TEST(Stats, EmptyInputThrows) {
  const std::vector<double> empty;
  EXPECT_THROW((void)pk::stats::mean(empty), pk::InvalidArgumentError);
  EXPECT_THROW((void)pk::stats::variance(empty), pk::InvalidArgumentError);
  EXPECT_THROW((void)pk::stats::min(empty), pk::InvalidArgumentError);
  EXPECT_THROW((void)pk::stats::max(empty), pk::InvalidArgumentError);
  EXPECT_THROW((void)pk::stats::percentile(empty, 50), pk::InvalidArgumentError);
  EXPECT_DOUBLE_EQ(pk::stats::sum(empty), 0.0);
}

TEST(Stats, KahanSumIsAccurate) {
  // 1e16 + many tiny values: naive summation loses them entirely.
  std::vector<double> xs = {1e16};
  for (int i = 0; i < 10000; ++i) xs.push_back(1.0);
  EXPECT_DOUBLE_EQ(pk::stats::sum(xs), 1e16 + 10000.0);
}

TEST(Stats, CoefficientOfVariation) {
  const std::vector<double> balanced = {10, 10, 10, 10};
  EXPECT_DOUBLE_EQ(pk::stats::coefficient_of_variation(balanced), 0.0);
  const std::vector<double> imbalanced = {0, 0, 0, 40};
  EXPECT_GT(pk::stats::coefficient_of_variation(imbalanced), 1.0);
  const std::vector<double> zeros = {0, 0};
  EXPECT_DOUBLE_EQ(pk::stats::coefficient_of_variation(zeros), 0.0);
}

TEST(Stats, PearsonCorrelationPerfectSeries) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {2, 4, 6, 8};
  const std::vector<double> zs = {8, 6, 4, 2};
  EXPECT_NEAR(pk::stats::pearson_correlation(xs, ys), 1.0, 1e-12);
  EXPECT_NEAR(pk::stats::pearson_correlation(xs, zs), -1.0, 1e-12);
}

TEST(Stats, PearsonCorrelationConstantSeriesIsZero) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(pk::stats::pearson_correlation(xs, ys), 0.0);
}

TEST(Stats, PearsonCorrelationLengthMismatchThrows) {
  const std::vector<double> xs = {1, 2, 3};
  const std::vector<double> ys = {1, 2};
  EXPECT_THROW((void)pk::stats::pearson_correlation(xs, ys),
               pk::InvalidArgumentError);
}

TEST(Stats, Percentile) {
  const std::vector<double> xs = {4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(pk::stats::percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(pk::stats::percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(pk::stats::percentile(xs, 50), 2.5);
  EXPECT_THROW((void)pk::stats::percentile(xs, 101), pk::InvalidArgumentError);
}

TEST(Stats, LinearFitRecoversLine) {
  const std::vector<double> xs = {0, 1, 2, 3, 4};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(3.0 * x + 1.0);
  const LinearFit fit = pk::stats::linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Stats, RelativeToFirst) {
  const std::vector<double> xs = {2, 1, 4};
  const auto rel = pk::stats::relative_to_first(xs);
  EXPECT_DOUBLE_EQ(rel[0], 1.0);
  EXPECT_DOUBLE_EQ(rel[1], 0.5);
  EXPECT_DOUBLE_EQ(rel[2], 2.0);
  const std::vector<double> zero_base = {0, 1};
  EXPECT_THROW(pk::stats::relative_to_first(zero_base),
               pk::InvalidArgumentError);
}

TEST(Stats, ZscoresOfConstantSeriesAreZero) {
  const std::vector<double> xs = {7, 7, 7};
  for (double z : pk::stats::zscores(xs)) EXPECT_DOUBLE_EQ(z, 0.0);
}

TEST(Strings, SplitAndTrim) {
  const auto parts = pk::strings::split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(pk::strings::trim("  hi \t\n"), "hi");
  EXPECT_EQ(pk::strings::trim(""), "");
  EXPECT_EQ(pk::strings::trim("   "), "");
}

TEST(Strings, SplitWhitespaceSkipsRuns) {
  const auto parts = pk::strings::split_whitespace("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
  EXPECT_TRUE(pk::strings::split_whitespace("   ").empty());
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(pk::strings::replace_all("aXbXc", "X", "yy"), "ayybyyc");
  EXPECT_EQ(pk::strings::replace_all("abc", "", "x"), "abc");
  EXPECT_EQ(pk::strings::replace_all("aaa", "aa", "b"), "ba");
}

TEST(Strings, ParseNumbers) {
  EXPECT_DOUBLE_EQ(pk::strings::parse_double(" 3.5 "), 3.5);
  EXPECT_EQ(pk::strings::parse_int("42"), 42);
  EXPECT_EQ(pk::strings::parse_int("-7"), -7);
  EXPECT_THROW((void)pk::strings::parse_double("abc"), pk::ParseError);
  EXPECT_THROW((void)pk::strings::parse_int("1.5"), pk::ParseError);
  EXPECT_THROW((void)pk::strings::parse_double(""), pk::ParseError);
}

TEST(Rng, DeterministicForSameSeed) {
  pk::Rng a(123);
  pk::Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  pk::Rng a(1);
  pk::Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInRange) {
  pk::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const auto n = rng.uniform_int(10, 20);
    EXPECT_GE(n, 10u);
    EXPECT_LE(n, 20u);
  }
}

TEST(Rng, NormalMeanAndSpread) {
  pk::Rng rng(99);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.normal(5.0, 2.0));
  EXPECT_NEAR(pk::stats::mean(xs), 5.0, 0.1);
  EXPECT_NEAR(pk::stats::stddev(xs), 2.0, 0.1);
}

TEST(Rng, BoundedParetoStaysInRange) {
  pk::Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.pareto_bounded(100.0, 1000.0, 1.2);
    EXPECT_GE(x, 100.0 * (1 - 1e-9));
    EXPECT_LE(x, 1000.0 * (1 + 1e-9));
  }
}

TEST(Rng, BoundedParetoIsSkewedLow) {
  pk::Rng rng(12);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) {
    xs.push_back(rng.pareto_bounded(100.0, 1000.0, 1.5));
  }
  // Heavy-tailed toward the low end: median far below the midpoint.
  EXPECT_LT(pk::stats::percentile(xs, 50), 350.0);
}

TEST(Table, AlignsAndRendersRows) {
  pk::TextTable t({"metric", "O0", "O1"});
  t.add_row({"Time", "1.000", "0.338"});
  t.begin_row().add("Watts").add(1.0, 3).add(1.025, 3);
  const std::string s = t.str();
  EXPECT_NE(s.find("metric"), std::string::npos);
  EXPECT_NE(s.find("0.338"), std::string::npos);
  EXPECT_NE(s.find("1.025"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvOutput) {
  pk::TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(pk::TextTable({}), pk::InvalidArgumentError);
}
