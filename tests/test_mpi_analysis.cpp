// Tests for the PMPI communication analysis and its rulebase.
#include <gtest/gtest.h>

#include "analysis/mpi_analysis.hpp"
#include "apps/genidlest/genidlest.hpp"
#include "common/error.hpp"
#include "machine/machine.hpp"
#include "rules/rulebases.hpp"
#include "runtime/mpi.hpp"

namespace pk = perfknow;
using pk::analysis::CommRecorder;
using pk::machine::Machine;
using pk::machine::MachineConfig;
using pk::runtime::MpiWorld;

TEST(CommRecorder, CategorizesEventKinds) {
  Machine m(MachineConfig::altix300());
  MpiWorld w(m, 2);
  CommRecorder rec(2);
  w.set_hook(rec.hook());

  const auto s = w.isend(0, 1, 4096);
  const auto r = w.irecv(1, 0, 4096);
  w.wait(1, r);
  w.wait(0, s);
  w.local_copy(0, 8192);
  w.barrier();
  w.allreduce(8);

  const auto& r0 = rec.rank(0);
  const auto& r1 = rec.rank(1);
  EXPECT_EQ(r0.messages_sent, 1u);
  EXPECT_EQ(r0.bytes_sent, 4096u);
  EXPECT_EQ(r1.messages_received, 1u);
  EXPECT_EQ(r1.bytes_received, 4096u);
  EXPECT_GT(r1.wait_cycles, 0u);
  EXPECT_GT(r0.copy_cycles, 0u);
  EXPECT_GT(r0.collective_cycles, 0u);
  EXPECT_GT(r0.post_cycles, 0u);
  EXPECT_GT(rec.total_cycles(), 0u);
  // Receiver's wait is attributed to the sender.
  EXPECT_GT(rec.wait_from(1, 0), 0u);
  EXPECT_EQ(rec.wait_from(0, 1), 0u);  // send-side waits carry no bytes...
  EXPECT_THROW((void)rec.rank(5), pk::InvalidArgumentError);
}

TEST(CommRecorder, LateSenderShowsInWaitMatrix) {
  Machine m(MachineConfig::altix300());
  MpiWorld w(m, 2);
  CommRecorder rec(2);
  w.set_hook(rec.hook());

  w.compute(0, 5'000'000);  // rank 0 is late
  const auto s = w.isend(0, 1, 1024);
  const auto r = w.irecv(1, 0, 1024);
  w.wait(1, r);
  w.wait(0, s);
  EXPECT_GT(rec.wait_from(1, 0), 4'000'000u);
}

TEST(CommRecorder, ClearResets) {
  Machine m(MachineConfig::altix300());
  MpiWorld w(m, 2);
  CommRecorder rec(2);
  w.set_hook(rec.hook());
  w.local_copy(0, 4096);
  EXPECT_GT(rec.rank(0).copy_cycles, 0u);
  rec.clear();
  EXPECT_EQ(rec.rank(0).copy_cycles, 0u);
  EXPECT_EQ(rec.total_cycles(), 0u);
}

TEST(CommFacts, AssertedWithFractions) {
  Machine m(MachineConfig::altix300());
  MpiWorld w(m, 4);
  CommRecorder rec(4);
  w.set_hook(rec.hook());
  w.compute(1, 8'000'000);  // rank 1 late to the barrier
  w.barrier();

  pk::rules::RuleHarness h;
  EXPECT_EQ(pk::analysis::assert_communication_facts(h, rec, w.elapsed()),
            4u);
  const auto ids = h.memory().ids_of_type("CommunicationFact");
  ASSERT_EQ(ids.size(), 4u);
  // Rank 0 waited at the barrier nearly the whole run; rank 1 did not.
  double frac0 = 0.0;
  double frac1 = 0.0;
  for (const auto id : ids) {
    const auto f = h.memory().find(id);
    if (f.number("rank") == 0.0) frac0 = f.number("collectiveFraction");
    if (f.number("rank") == 1.0) frac1 = f.number("collectiveFraction");
  }
  EXPECT_GT(frac0, 0.9);
  EXPECT_LT(frac1, 0.1);
  EXPECT_THROW(pk::analysis::assert_communication_facts(h, rec, 0),
               pk::InvalidArgumentError);
}

TEST(CommRules, LateSenderRuleFires) {
  Machine m(MachineConfig::altix300());
  MpiWorld w(m, 2);
  CommRecorder rec(2);
  w.set_hook(rec.hook());
  w.compute(0, 10'000'000);
  const auto s = w.isend(0, 1, 1024);
  const auto r = w.irecv(1, 0, 1024);
  w.wait(1, r);
  w.wait(0, s);

  pk::rules::RuleHarness h;
  pk::rules::builtin::use(h, pk::rules::builtin::communication());
  pk::analysis::assert_communication_facts(h, rec, w.elapsed());
  pk::analysis::assert_late_sender_facts(h, rec, w.elapsed());
  h.process_rules();
  const auto late = h.diagnoses_for("LateSender");
  ASSERT_EQ(late.size(), 1u);
  EXPECT_EQ(late[0].event, "rank 0");
  // Receiver rank 1 is wait-dominated too.
  EXPECT_GE(h.diagnoses_for("WaitDominated").size(), 1u);
}

TEST(CommRules, BalancedExchangeIsQuiet) {
  Machine m(MachineConfig::altix300());
  MpiWorld w(m, 4);
  CommRecorder rec(4);
  w.set_hook(rec.hook());
  // Everyone computes the same amount, then a symmetric ring exchange.
  for (unsigned r = 0; r < 4; ++r) w.compute(r, 50'000'000);
  std::vector<pk::runtime::MpiRequest> reqs;
  for (unsigned r = 0; r < 4; ++r) {
    reqs.push_back(w.irecv(r, (r + 3) % 4, 1024));
    reqs.push_back(w.isend(r, (r + 1) % 4, 1024));
  }
  for (unsigned r = 0; r < 4; ++r) {
    w.wait(r, reqs[2 * r]);
    w.wait(r, reqs[2 * r + 1]);
  }

  pk::rules::RuleHarness h;
  pk::rules::builtin::use(h, pk::rules::builtin::communication());
  pk::analysis::assert_communication_facts(h, rec, w.elapsed());
  pk::analysis::assert_late_sender_facts(h, rec, w.elapsed());
  h.process_rules();
  EXPECT_TRUE(h.diagnoses().empty());
}

TEST(CommIntegration, GenidlestMpiRunCarriesCommStats) {
  Machine machine(MachineConfig::altix3600());
  auto cfg = pk::apps::genidlest::GenConfig::rib90();
  cfg.model = pk::apps::genidlest::Model::kMpi;
  cfg.optimized = true;
  const auto r = pk::apps::genidlest::run_genidlest(machine, cfg);
  ASSERT_NE(r.comm, nullptr);
  EXPECT_EQ(r.comm->ranks(), 16u);
  // Every rank sent 2 messages per solver iteration.
  const auto expected =
      2ull * cfg.timesteps * cfg.solver_iters;
  EXPECT_EQ(r.comm->rank(0).messages_sent, expected);
  EXPECT_GT(r.comm->rank(0).copy_cycles, 0u);
  EXPECT_GT(r.comm->rank(0).collective_cycles, 0u);

  // The optimized MPI run is not communication-bound.
  pk::rules::RuleHarness h;
  pk::rules::builtin::use(h, pk::rules::builtin::communication());
  pk::analysis::assert_communication_facts(h, *r.comm, r.elapsed_cycles);
  h.process_rules();
  EXPECT_TRUE(h.diagnoses_for("CommunicationBound").empty());

  // OpenMP runs have no PMPI stream.
  Machine m2(MachineConfig::altix3600());
  cfg.model = pk::apps::genidlest::Model::kOpenMP;
  EXPECT_EQ(pk::apps::genidlest::run_genidlest(m2, cfg).comm, nullptr);
}
