// Tests for the inference engine and the .rules DSL front end.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "rules/engine.hpp"
#include "rules/fact.hpp"
#include "rules/parser.hpp"
#include "rules/rulebases.hpp"

namespace pk = perfknow;
using pk::rules::Bindings;
using pk::rules::CmpOp;
using pk::rules::Constraint;
using pk::rules::Fact;
using pk::rules::FactValue;
using pk::rules::FieldBinding;
using pk::rules::Operand;
using pk::rules::Pattern;
using pk::rules::Rule;
using pk::rules::RuleContext;
using pk::rules::RuleHarness;
using pk::rules::WorkingMemory;

TEST(FactValues, EqualityAndOrdering) {
  EXPECT_TRUE(pk::rules::values_equal(FactValue(1.0), FactValue(1.0)));
  EXPECT_FALSE(pk::rules::values_equal(FactValue(1.0), FactValue("1")));
  EXPECT_TRUE(pk::rules::values_equal(FactValue(true), FactValue("true")));
  EXPECT_TRUE(pk::rules::values_equal(FactValue("false"), FactValue(false)));
  EXPECT_TRUE(pk::rules::values_less(FactValue(1.0), FactValue(2.0)));
  EXPECT_TRUE(pk::rules::values_less(FactValue("a"), FactValue("b")));
  EXPECT_FALSE(pk::rules::values_less(FactValue(1.0), FactValue("b")));
}

TEST(FactValues, Display) {
  EXPECT_EQ(pk::rules::to_display(FactValue(3.0)), "3");
  EXPECT_EQ(pk::rules::to_display(FactValue(0.3140)), "0.3140");
  EXPECT_EQ(pk::rules::to_display(FactValue("hi")), "hi");
  EXPECT_EQ(pk::rules::to_display(FactValue(true)), "true");
}

TEST(Fact, FieldAccess) {
  Fact f("T");
  f.set("x", 2.5).set("name", "loop").set("flag", true);
  EXPECT_DOUBLE_EQ(f.number("x"), 2.5);
  EXPECT_EQ(f.text("name"), "loop");
  EXPECT_TRUE(f.boolean("flag"));
  EXPECT_THROW((void)f.get("absent"), pk::NotFoundError);
  EXPECT_THROW((void)f.number("name"), pk::EvalError);
  EXPECT_NE(f.str().find("name=loop"), std::string::npos);
}

TEST(WorkingMemoryTest, AssertRetractQuery) {
  WorkingMemory wm;
  const auto a = wm.assert_fact(Fact("A"));
  const auto b = wm.assert_fact(Fact("B"));
  const auto a2 = wm.assert_fact(Fact("A"));
  EXPECT_EQ(wm.size(), 3u);
  EXPECT_EQ(wm.ids_of_type("A"), (std::vector<pk::rules::FactId>{a, a2}));
  EXPECT_TRUE(wm.retract(b));
  EXPECT_FALSE(wm.retract(b));
  EXPECT_FALSE(wm.find(b));
  EXPECT_TRUE(wm.find(a));
}

namespace {

Rule simple_rule(const std::string& name, const std::string& type,
                 double threshold, int salience,
                 std::vector<std::string>* fired) {
  Rule r;
  r.name = name;
  r.salience = salience;
  Pattern p;
  p.fact_type = type;
  p.constraints.push_back(
      Constraint{"value", CmpOp::kGt, Operand::lit(threshold)});
  p.bindings.push_back(FieldBinding{"v", "value"});
  r.patterns.push_back(std::move(p));
  r.action = [name, fired](RuleContext& ctx) {
    fired->push_back(name + ":" +
                     pk::rules::to_display(ctx.binding("v")));
  };
  return r;
}

}  // namespace

TEST(Engine, SinglePatternFiresPerMatchingFact) {
  RuleHarness h;
  std::vector<std::string> fired;
  h.add_rule(simple_rule("big", "Sample", 10.0, 0, &fired));
  h.assert_fact(Fact("Sample").set("value", 5.0));
  h.assert_fact(Fact("Sample").set("value", 15.0));
  h.assert_fact(Fact("Sample").set("value", 25.0));
  h.assert_fact(Fact("Other").set("value", 100.0));
  EXPECT_EQ(h.process_rules(), 2u);
  EXPECT_EQ(fired, (std::vector<std::string>{"big:15", "big:25"}));
}

TEST(Engine, SalienceOrdersFirings) {
  RuleHarness h;
  std::vector<std::string> fired;
  h.add_rule(simple_rule("low", "S", 0.0, 1, &fired));
  h.add_rule(simple_rule("high", "S", 0.0, 9, &fired));
  h.assert_fact(Fact("S").set("value", 1.0));
  h.process_rules();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], "high:1");
  EXPECT_EQ(fired[1], "low:1");
}

TEST(Engine, FiresOncePerActivation) {
  RuleHarness h;
  std::vector<std::string> fired;
  h.add_rule(simple_rule("r", "S", 0.0, 0, &fired));
  h.assert_fact(Fact("S").set("value", 1.0));
  EXPECT_EQ(h.process_rules(), 1u);
  EXPECT_EQ(h.process_rules(), 0u);  // second call: nothing new
  h.assert_fact(Fact("S").set("value", 2.0));
  EXPECT_EQ(h.process_rules(), 1u);  // only the new fact fires
}

TEST(Engine, ChainingThroughAssertedFacts) {
  RuleHarness h;
  std::vector<std::string> fired;
  // Rule 1: A(value > 0) => assert B(value = 2*value)
  Rule r1;
  r1.name = "a_to_b";
  Pattern p1;
  p1.fact_type = "A";
  p1.bindings.push_back(FieldBinding{"v", "value"});
  r1.patterns.push_back(std::move(p1));
  r1.action = [](RuleContext& ctx) {
    const double v = std::get<double>(ctx.binding("v"));
    ctx.assert_fact(Fact("B").set("value", 2.0 * v));
  };
  h.add_rule(std::move(r1));
  h.add_rule(simple_rule("b", "B", 5.0, 0, &fired));
  h.assert_fact(Fact("A").set("value", 4.0));
  h.process_rules();
  EXPECT_EQ(fired, (std::vector<std::string>{"b:8"}));
}

TEST(Engine, JoinOverTwoPatternsWithVariableEquality) {
  RuleHarness h;
  std::vector<std::string> fired;
  Rule r;
  r.name = "join";
  Pattern p1;
  p1.fact_type = "Parent";
  p1.bindings.push_back(FieldBinding{"pe", "name"});
  r.patterns.push_back(std::move(p1));
  Pattern p2;
  p2.fact_type = "Child";
  p2.constraints.push_back(
      Constraint{"parent", CmpOp::kEq, Operand::var("pe")});
  p2.bindings.push_back(FieldBinding{"ce", "name"});
  r.patterns.push_back(std::move(p2));
  r.action = [&fired](RuleContext& ctx) {
    fired.push_back(pk::rules::to_display(ctx.binding("pe")) + "->" +
                    pk::rules::to_display(ctx.binding("ce")));
  };
  h.add_rule(std::move(r));
  h.assert_fact(Fact("Parent").set("name", "outer"));
  h.assert_fact(Fact("Parent").set("name", "other"));
  h.assert_fact(Fact("Child").set("name", "inner").set("parent", "outer"));
  h.assert_fact(Fact("Child").set("name", "stray").set("parent", "none"));
  EXPECT_EQ(h.process_rules(), 1u);
  EXPECT_EQ(fired, (std::vector<std::string>{"outer->inner"}));
}

TEST(Engine, MissingFieldFailsPatternSilently) {
  RuleHarness h;
  std::vector<std::string> fired;
  h.add_rule(simple_rule("r", "S", 0.0, 0, &fired));
  h.assert_fact(Fact("S"));  // no 'value' field
  EXPECT_EQ(h.process_rules(), 0u);
}

TEST(Engine, RunawayChainGuard) {
  RuleHarness h;
  Rule r;
  r.name = "loop";
  Pattern p;
  p.fact_type = "X";
  r.patterns.push_back(std::move(p));
  r.action = [](RuleContext& ctx) { ctx.assert_fact(Fact("X")); };
  h.add_rule(std::move(r));
  h.assert_fact(Fact("X"));
  EXPECT_THROW(h.process_rules(100), pk::EvalError);
}

TEST(Engine, RejectsMalformedRules) {
  RuleHarness h;
  Rule no_patterns;
  no_patterns.name = "bad";
  no_patterns.action = [](RuleContext&) {};
  EXPECT_THROW(h.add_rule(std::move(no_patterns)),
               pk::InvalidArgumentError);
  Rule no_action;
  no_action.name = "bad2";
  Pattern p;
  p.fact_type = "X";
  no_action.patterns.push_back(std::move(p));
  EXPECT_THROW(h.add_rule(std::move(no_action)), pk::InvalidArgumentError);
}

// ---------------------------------------------------------------------
// DSL parser
// ---------------------------------------------------------------------

TEST(Parser, ParsesFig2StyleRule) {
  const std::string src = R"RULES(
    // the paper's example rule
    rule "Stalls per Cycle"
    when
      f : MeanEventFact( metric == "(BACK_END_BUBBLE_ALL / CPU_CYCLES)",
                         higherLower == "higher",
                         severity > 0.10,
                         e : eventName,
                         a : mainValue,
                         v : eventValue,
                         factType == "Compared to Main" )
    then
      print("Event " + e + " has a higher than average stall / cycle rate")
      print("\tAverage stall / cycle: " + a)
      print("\tEvent stall / cycle: " + v)
      print("\tPercentage of total runtime: " + f.severity)
    end
  )RULES";
  const auto rules = pk::rules::parse_rules(src);
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].name, "Stalls per Cycle");
  ASSERT_EQ(rules[0].patterns.size(), 1u);
  EXPECT_EQ(rules[0].patterns[0].fact_type, "MeanEventFact");
  EXPECT_EQ(rules[0].patterns[0].constraints.size(), 4u);
  EXPECT_EQ(rules[0].patterns[0].bindings.size(), 3u);

  RuleHarness h;
  pk::rules::add_rules(h, src);
  h.assert_fact(Fact("MeanEventFact")
                    .set("metric", "(BACK_END_BUBBLE_ALL / CPU_CYCLES)")
                    .set("higherLower", "higher")
                    .set("severity", 0.31)
                    .set("eventName", "exchange_var__")
                    .set("mainValue", 0.25)
                    .set("eventValue", 0.55)
                    .set("factType", "Compared to Main"));
  h.assert_fact(Fact("MeanEventFact")
                    .set("metric", "(BACK_END_BUBBLE_ALL / CPU_CYCLES)")
                    .set("higherLower", "lower")
                    .set("severity", 0.31)
                    .set("eventName", "quiet")
                    .set("mainValue", 0.25)
                    .set("eventValue", 0.05)
                    .set("factType", "Compared to Main"));
  EXPECT_EQ(h.process_rules(), 1u);
  ASSERT_EQ(h.output().size(), 4u);
  EXPECT_EQ(h.output()[0],
            "Event exchange_var__ has a higher than average stall / cycle "
            "rate");
  EXPECT_EQ(h.output()[3], "\tPercentage of total runtime: 0.3100");
}

TEST(Parser, SalienceAndMultipleRules) {
  const std::string src = R"RULES(
    rule "a" salience 5
    when X( v > 1 ) then print("a") end
    rule "b" salience -2
    when X( v > 1 ) then print("b") end
  )RULES";
  const auto rules = pk::rules::parse_rules(src);
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].salience, 5);
  EXPECT_EQ(rules[1].salience, -2);
}

TEST(Parser, RetainsRuleAndPatternSourceLocations) {
  const std::string src =
      "rule \"first\"\n"              // line 1
      "when\n"                        // line 2
      "  A( x > 0 )\n"                // line 3
      "then print(\"a\") end\n"       // line 4
      "rule \"second\" salience 3\n"  // line 5
      "when\n"                        // line 6
      "  f : B( y > 1 )\n"            // line 7
      "  C( z == 2 )\n"               // line 8
      "then print(\"b\") end\n";      // line 9
  const auto rules = pk::rules::parse_rules(src, "pins.rules");
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].loc.file, "pins.rules");
  EXPECT_EQ(rules[0].loc.line, 1);
  EXPECT_EQ(rules[0].loc.column, 1);
  ASSERT_EQ(rules[0].patterns.size(), 1u);
  EXPECT_EQ(rules[0].patterns[0].loc.file, "pins.rules");
  EXPECT_EQ(rules[0].patterns[0].loc.line, 3);
  EXPECT_EQ(rules[0].patterns[0].loc.column, 3);
  EXPECT_EQ(rules[1].loc.line, 5);
  EXPECT_EQ(rules[1].loc.column, 1);
  ASSERT_EQ(rules[1].patterns.size(), 2u);
  // The pattern location points at the first token, including the
  // fact-variable binding when one is present (f : B(...)).
  EXPECT_EQ(rules[1].patterns[0].loc.line, 7);
  EXPECT_EQ(rules[1].patterns[0].loc.column, 3);
  EXPECT_EQ(rules[1].patterns[1].loc.line, 8);
  EXPECT_EQ(rules[1].loc.str(), "pins.rules:5:1");

  // Without an origin the file is empty but lines still resolve.
  const auto anon = pk::rules::parse_rules(src);
  ASSERT_EQ(anon.size(), 2u);
  EXPECT_TRUE(anon[0].loc.file.empty());
  EXPECT_EQ(anon[0].loc.line, 1);
  EXPECT_TRUE(anon[0].loc.known());
}

TEST(Parser, DiagnoseAndAssertActions) {
  const std::string src = R"RULES(
    rule "chain start"
    when S( x > 0, n : name )
    then
      assert(Derived(label = n + "!", doubled = s.missing + 0))
    end
  )RULES";
  // s.missing is unbound -> parse ok, eval error at fire time.
  RuleHarness h;
  pk::rules::add_rules(h, src);
  h.assert_fact(Fact("S").set("x", 1.0).set("name", "n1"));
  EXPECT_THROW(h.process_rules(), pk::EvalError);

  const std::string good = R"RULES(
    rule "diagnose it"
    when f : S( x > 0, n : name )
    then
      diagnose(problem = "TooSlow", event = n, severity = f.x * 2,
               recommendation = "speed " + n + " up")
      assert(Derived(label = n))
    end
    rule "follow up"
    when Derived( label == "n1" )
    then print("chained") end
  )RULES";
  RuleHarness h2;
  pk::rules::add_rules(h2, good);
  h2.assert_fact(Fact("S").set("x", 0.25).set("name", "n1"));
  EXPECT_EQ(h2.process_rules(), 2u);
  ASSERT_EQ(h2.diagnoses().size(), 1u);
  EXPECT_EQ(h2.diagnoses()[0].problem, "TooSlow");
  EXPECT_EQ(h2.diagnoses()[0].event, "n1");
  EXPECT_DOUBLE_EQ(h2.diagnoses()[0].severity, 0.5);
  EXPECT_EQ(h2.diagnoses()[0].recommendation, "speed n1 up");
  EXPECT_EQ(h2.diagnoses()[0].rule, "diagnose it");
  EXPECT_EQ(h2.output(), (std::vector<std::string>{"chained"}));
  EXPECT_EQ(h2.diagnoses_for("TooSlow").size(), 1u);
  EXPECT_TRUE(h2.diagnoses_for("Other").empty());
}

TEST(Parser, ArithmeticInConstraints) {
  const std::string src = R"RULES(
    rule "ratio"
    when
      a : A( t : threshold )
      B( value > t * 2 + 1 )
    then print("fired") end
  )RULES";
  RuleHarness h;
  pk::rules::add_rules(h, src);
  h.assert_fact(Fact("A").set("threshold", 10.0));
  h.assert_fact(Fact("B").set("value", 22.0));  // > 21 -> fires
  h.assert_fact(Fact("B").set("value", 20.0));  // not
  EXPECT_EQ(h.process_rules(), 1u);
}

TEST(Parser, SyntaxErrorsCarryLineNumbers) {
  try {
    (void)pk::rules::parse_rules("rule \"x\"\nwhen\nF( a ==\n");
    FAIL() << "expected ParseError";
  } catch (const pk::ParseError& e) {
    EXPECT_GE(e.line(), 3);
  }
  EXPECT_THROW(pk::rules::parse_rules("rule \"x\" when F(a == 1) then end x"),
               pk::ParseError);
  EXPECT_THROW(pk::rules::parse_rules("rule x"), pk::ParseError);
  EXPECT_THROW(pk::rules::parse_rules("rule \"x\" when then print(\"\") end"),
               pk::ParseError);
  EXPECT_THROW(pk::rules::parse_rules("rule \"x\"\nwhen F(a == \"unclosed"),
               pk::ParseError);
}

TEST(Parser, LoadRulesPrefixesDiagnosticsWithFileAndLine) {
  namespace fs = std::filesystem;
  const fs::path file =
      fs::temp_directory_path() /
      ("perfknow_rules_err_" + std::to_string(::getpid()) + ".rules");
  {
    std::ofstream os(file);
    os << "rule \"x\"\nwhen\nF( a ==\n";
  }
  try {
    (void)pk::rules::load_rules(file);
    FAIL() << "expected ParseError";
  } catch (const pk::ParseError& e) {
    EXPECT_EQ(e.file(), file.string());
    EXPECT_GE(e.line(), 3);
    const std::string what = e.what();
    EXPECT_EQ(what.rfind(file.string() + ":", 0), 0u)
        << "diagnostic should read file:line: message, got: " << what;
  }
  fs::remove(file);
}

TEST(Builtin, AllRulebasesParse) {
  for (const auto src :
       {pk::rules::builtin::stalls_per_cycle(),
        pk::rules::builtin::load_imbalance(),
        pk::rules::builtin::inefficiency(),
        pk::rules::builtin::stall_coverage(),
        pk::rules::builtin::memory_locality(), pk::rules::builtin::power()}) {
    EXPECT_GE(pk::rules::parse_rules(std::string(src)).size(), 1u);
  }
  RuleHarness h;
  pk::rules::add_rules(h, pk::rules::builtin::openuh_rules());
  EXPECT_GE(h.rule_count(), 10u);
}

TEST(Builtin, LoadImbalanceRuleJoins) {
  RuleHarness h;
  pk::rules::builtin::use(h, pk::rules::builtin::load_imbalance());
  h.assert_fact(Fact("LoadBalanceFact")
                    .set("eventName", "outer_loop")
                    .set("cv", 0.4)
                    .set("runtimeFraction", 0.3));
  h.assert_fact(Fact("LoadBalanceFact")
                    .set("eventName", "inner_loop")
                    .set("cv", 0.35)
                    .set("runtimeFraction", 0.6));
  h.assert_fact(Fact("NestingFact")
                    .set("parentEvent", "outer_loop")
                    .set("childEvent", "inner_loop"));
  h.assert_fact(Fact("CorrelationFact")
                    .set("eventA", "outer_loop")
                    .set("eventB", "inner_loop")
                    .set("metric", "TIME")
                    .set("correlation", -0.95));
  EXPECT_EQ(h.process_rules(), 1u);
  const auto diags = h.diagnoses_for("LoadImbalance");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].event, "inner_loop");
  EXPECT_NE(diags[0].recommendation.find("dynamic,1"), std::string::npos);
}

TEST(Builtin, LoadImbalanceNeedsAllFourConditions) {
  // Without the negative correlation the rule must stay silent.
  RuleHarness h;
  pk::rules::builtin::use(h, pk::rules::builtin::load_imbalance());
  h.assert_fact(Fact("LoadBalanceFact")
                    .set("eventName", "outer_loop")
                    .set("cv", 0.4)
                    .set("runtimeFraction", 0.3));
  h.assert_fact(Fact("LoadBalanceFact")
                    .set("eventName", "inner_loop")
                    .set("cv", 0.35)
                    .set("runtimeFraction", 0.6));
  h.assert_fact(Fact("NestingFact")
                    .set("parentEvent", "outer_loop")
                    .set("childEvent", "inner_loop"));
  h.assert_fact(Fact("CorrelationFact")
                    .set("eventA", "outer_loop")
                    .set("eventB", "inner_loop")
                    .set("metric", "TIME")
                    .set("correlation", 0.2));
  EXPECT_EQ(h.process_rules(), 0u);
}
