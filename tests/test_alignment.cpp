// Tests for MSAP stages 2 and 3: UPGMA guide trees and progressive
// profile alignment.
#include <gtest/gtest.h>

#include "apps/msap/alignment.hpp"
#include "common/error.hpp"

namespace pk = perfknow;
using namespace pk::apps::msap;

TEST(DistanceMatrix, IdenticalSequencesAreDistanceZero) {
  const std::vector<std::string> seqs = {"ACDEF", "ACDEF", "WWWWW"};
  const auto d = distance_matrix(seqs);
  EXPECT_DOUBLE_EQ(d[0][1], 0.0);
  EXPECT_DOUBLE_EQ(d[0][0], 0.0);
  // Disjoint-alphabet sequences are maximally distant.
  EXPECT_DOUBLE_EQ(d[0][2], 1.0);
  // Symmetry.
  EXPECT_DOUBLE_EQ(d[2][0], d[0][2]);
  EXPECT_DOUBLE_EQ(d[1][2], d[2][1]);
}

TEST(Upgma, MergesClosestPairFirst) {
  // 0 and 1 are near, 2 is far from both.
  const std::vector<std::vector<double>> d = {
      {0.0, 0.1, 0.8}, {0.1, 0.0, 0.9}, {0.8, 0.9, 0.0}};
  const auto tree = upgma(d);
  ASSERT_EQ(tree.nodes.size(), 5u);
  // First internal node (index 3) joins leaves 0 and 1.
  const auto& first = tree.nodes[3];
  EXPECT_TRUE((first.left == 0 && first.right == 1) ||
              (first.left == 1 && first.right == 0));
  EXPECT_DOUBLE_EQ(first.height, 0.05);
  // Root joins that cluster with leaf 2 at the average distance.
  const auto& root = tree.nodes[static_cast<std::size_t>(tree.root())];
  EXPECT_DOUBLE_EQ(root.height, (0.8 + 0.9) / 2.0 / 2.0);
  EXPECT_EQ(root.size, 3);
  const auto leaves = tree.leaves_under(tree.root());
  EXPECT_EQ(leaves.size(), 3u);
  EXPECT_EQ(to_newick(tree), "((0,1):0.05,2):0.43");
}

TEST(Upgma, AverageLinkageWeightsClusterSizes) {
  // Clusters {0,1} then {0,1,2}: distance to 3 must be the mean of the
  // three leaf distances, not the pair means of means.
  const std::vector<std::vector<double>> d = {
      {0.0, 0.1, 0.2, 0.6},
      {0.1, 0.0, 0.2, 0.9},
      {0.2, 0.2, 0.0, 0.9},
      {0.6, 0.9, 0.9, 0.0}};
  const auto tree = upgma(d);
  const auto& root = tree.nodes[static_cast<std::size_t>(tree.root())];
  EXPECT_NEAR(root.height, (0.6 + 0.9 + 0.9) / 3.0 / 2.0, 1e-12);
}

TEST(Upgma, RejectsBadInput) {
  EXPECT_THROW(upgma({}), pk::InvalidArgumentError);
  EXPECT_THROW(upgma({{0.0}}), pk::InvalidArgumentError);
  EXPECT_THROW(upgma({{0.0, 1.0}, {1.0}}), pk::InvalidArgumentError);
}

TEST(Progressive, IdenticalSequencesAlignWithoutGaps) {
  const std::vector<std::string> seqs = {"ACDEFG", "ACDEFG", "ACDEFG"};
  const auto r = align_sequences(seqs);
  for (const auto& row : r.alignment) {
    EXPECT_EQ(row, "ACDEFG");
  }
}

TEST(Progressive, InsertionsProduceGapColumns) {
  // The middle sequence misses two residues; alignment must gap them.
  const std::vector<std::string> seqs = {"ACDEFGHIKL", "ACDEHIKL",
                                         "ACDEFGHIKL"};
  const auto r = align_sequences(seqs);
  ASSERT_EQ(r.alignment.size(), 3u);
  const std::size_t len = r.alignment[0].size();
  EXPECT_EQ(r.alignment[1].size(), len);
  EXPECT_EQ(r.alignment[2].size(), len);
  EXPECT_EQ(len, 10u);  // no extra columns needed
  // Row 1 contains exactly two gaps; others none.
  EXPECT_EQ(std::count(r.alignment[1].begin(), r.alignment[1].end(), '-'),
            2);
  EXPECT_EQ(std::count(r.alignment[0].begin(), r.alignment[0].end(), '-'),
            0);
  // Removing gaps recovers the input sequences.
  std::string degapped;
  for (char c : r.alignment[1]) {
    if (c != '-') degapped += c;
  }
  EXPECT_EQ(degapped, "ACDEHIKL");
}

TEST(Progressive, AlignmentPreservesOrderAndResidues) {
  const auto seqs =
      generate_sequences(6, 15, 40, 1.2, 77);
  const auto r = align_sequences(seqs);
  ASSERT_EQ(r.alignment.size(), seqs.size());
  const std::size_t len = r.alignment[0].size();
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(r.alignment[i].size(), len);
    std::string degapped;
    for (char c : r.alignment[i]) {
      if (c != '-') degapped += c;
    }
    EXPECT_EQ(degapped, seqs[i]) << "row " << i;
  }
}

TEST(Progressive, TreeOrderBeatsArbitraryOrderOnAverage) {
  // Aligning along the UPGMA tree should produce a sum-of-pairs score at
  // least as good as aligning along a deliberately bad (identity) chain.
  const std::vector<std::string> seqs = {
      "MKTAYIAKQR", "MKTAYIAKQR", "MKTAYIDKQR",
      "GGGSSSPPPL", "GGGSSSAPPL"};
  const auto good = align_sequences(seqs);

  // Bad tree: ((((0,3),1),4),2) — interleaves the two families.
  GuideTree bad;
  for (int i = 0; i < 5; ++i) {
    GuideTree::Node leaf;
    leaf.sequence = i;
    bad.nodes.push_back(leaf);
  }
  int prev = 0;
  for (const int next : {3, 1, 4, 2}) {
    GuideTree::Node merge;
    merge.left = prev;
    merge.right = next;
    merge.size = bad.nodes[static_cast<std::size_t>(prev)].size + 1;
    bad.nodes.push_back(merge);
    prev = static_cast<int>(bad.nodes.size()) - 1;
  }
  const auto bad_alignment = progressive_alignment(seqs, bad);
  EXPECT_GE(sum_of_pairs_score(good.alignment),
            sum_of_pairs_score(bad_alignment));
}

TEST(Progressive, MismatchedTreeRejected) {
  const std::vector<std::string> seqs = {"ACD", "ACD"};
  const auto tree = upgma(distance_matrix({"AC", "CD", "DA"}));
  EXPECT_THROW(progressive_alignment(seqs, tree),
               pk::InvalidArgumentError);
}

TEST(SumOfPairs, KnownValues) {
  // Two identical rows of length 3: 3 matches.
  EXPECT_DOUBLE_EQ(sum_of_pairs_score({"ACD", "ACD"}), 9.0);  // 3 x match(3)
  // One gap column: half gap penalty.
  EXPECT_DOUBLE_EQ(sum_of_pairs_score({"A-C", "AAC"}),
                   3.0 + (-2.0 * 0.5) + 3.0);
  // Both-gap columns are free.
  EXPECT_DOUBLE_EQ(sum_of_pairs_score({"A-", "A-"}), 3.0);
  EXPECT_THROW((void)sum_of_pairs_score({"AC", "A"}), pk::InvalidArgumentError);
}
