// The analysis service end to end: perfknow.api/1 envelope round-trips,
// the daemon under >= 8 concurrent clients, byte-identical streamed
// diagnoses vs in-process runs, budget/backpressure admission, and the
// closed loop where a saturated server diagnoses itself
// (ServerQueueSaturated) with a grounded proof tree.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "io/bench_json.hpp"
#include "perfknow.hpp"

namespace pk = perfknow;
namespace fs = std::filesystem;
namespace wire = pk::server::wire;
using pk::server::Client;
using pk::server::Server;
using pk::server::ServerOptions;

namespace {

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() /
           ("perfknow_server_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    fs::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return dir_; }

 private:
  fs::path dir_;
  static inline int counter_ = 0;
};

/// Short socket path (sun_path caps at ~107 bytes; the test tempdir can
/// be deep, so sockets go directly under /tmp).
fs::path socket_path() {
  static std::atomic<int> n{0};
  return fs::temp_directory_path() /
         ("pkx_test_" + std::to_string(::getpid()) + "_" +
          std::to_string(n.fetch_add(1)) + ".sock");
}

fs::path write_bench_json(
    const fs::path& file,
    const std::vector<std::pair<std::string, double>>& benchmarks) {
  std::ofstream os(file);
  os << "{\n  \"context\": {\"host_name\": \"ci\"},\n"
     << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < benchmarks.size(); ++i) {
    os << "    {\"name\": \"" << benchmarks[i].first
       << "\", \"run_type\": \"iteration\", \"iterations\": 100,"
       << " \"real_time\": " << benchmarks[i].second
       << ", \"cpu_time\": " << benchmarks[i].second
       << ", \"time_unit\": \"us\"}";
    os << (i + 1 < benchmarks.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
  return file;
}

/// base + 2x-slowed current pair under `scratch`.
std::pair<fs::path, fs::path> regression_pair(const fs::path& scratch) {
  const auto base = write_bench_json(
      scratch / "base.json",
      {{"BM_Parse", 120.0}, {"BM_Match", 45.0}, {"BM_Assert", 8.0}});
  const auto cur = write_bench_json(
      scratch / "cur.json",
      {{"BM_Parse", 240.0}, {"BM_Match", 45.0}, {"BM_Assert", 8.0}});
  return {base, cur};
}

std::string diff_params(const std::string& app) {
  return "{\"application\":" + pk::json::quote(app) +
         ",\"experiment\":\"bench\",\"base\":\"v1\",\"current\":\"v2\"}";
}

}  // namespace

// ---- wire envelope -----------------------------------------------------

TEST(Wire, ParsesWellFormedRequestAndNormalizesNumericId) {
  const auto req = wire::parse_request(
      R"({"api":"perfknow.api/1","id":7,"method":"analyze",)"
      R"("params":{"trial":"t"}})");
  EXPECT_EQ(req.id, "7");
  EXPECT_EQ(req.method, "analyze");
  ASSERT_NE(req.params.find("trial"), nullptr);
  EXPECT_EQ(req.params.find("trial")->text, "t");
}

TEST(Wire, RejectsMalformedEnvelopes) {
  const auto code_of = [](const std::string& line) {
    try {
      (void)wire::parse_request(line);
    } catch (const wire::WireError& e) {
      return e.code();
    }
    return wire::ErrorCode::kInternal;
  };
  EXPECT_EQ(code_of("not json"), wire::ErrorCode::kBadRequest);
  EXPECT_EQ(code_of("[1,2]"), wire::ErrorCode::kBadRequest);
  EXPECT_EQ(code_of(R"({"id":"1","method":"x"})"),
            wire::ErrorCode::kBadRequest);
  EXPECT_EQ(code_of(R"({"api":"perfknow.api/2","id":"1","method":"x"})"),
            wire::ErrorCode::kUnsupportedVersion);
  EXPECT_EQ(code_of(R"({"api":"perfknow.api/1","id":"1"})"),
            wire::ErrorCode::kBadRequest);
  EXPECT_EQ(code_of(R"({"api":"perfknow.api/1","id":"1","method":"x",)"
                    R"("params":[1]})"),
            wire::ErrorCode::kBadRequest);
}

TEST(Wire, ErrorTaxonomyRoundTripsAndMapsExceptions) {
  for (const auto code :
       {wire::ErrorCode::kBadRequest, wire::ErrorCode::kUnsupportedVersion,
        wire::ErrorCode::kUnknownMethod, wire::ErrorCode::kInvalidArgument,
        wire::ErrorCode::kNotFound, wire::ErrorCode::kParse,
        wire::ErrorCode::kEval, wire::ErrorCode::kIo,
        wire::ErrorCode::kOverloaded, wire::ErrorCode::kBudgetExceeded,
        wire::ErrorCode::kShuttingDown, wire::ErrorCode::kInternal}) {
    EXPECT_EQ(wire::error_code(wire::to_string(code)), code);
  }
  EXPECT_EQ(wire::error_code(pk::InvalidArgumentError("x")),
            wire::ErrorCode::kInvalidArgument);
  EXPECT_EQ(wire::error_code(pk::NotFoundError("x")),
            wire::ErrorCode::kNotFound);
  EXPECT_EQ(wire::error_code(pk::ParseError("x")),
            wire::ErrorCode::kParse);
  EXPECT_EQ(wire::error_code(std::runtime_error("x")),
            wire::ErrorCode::kInternal);
  // The pkx exit-code contract: usage errors are 2, the rest 1.
  EXPECT_EQ(wire::exit_code(wire::ErrorCode::kInvalidArgument), 2);
  EXPECT_EQ(wire::exit_code(wire::ErrorCode::kNotFound), 1);
  EXPECT_EQ(wire::exit_code(wire::ErrorCode::kOverloaded), 1);
}

TEST(Wire, Base64RoundTripsAndRejectsGarbage) {
  for (const std::string& s :
       {std::string(), std::string("a"), std::string("ab"),
        std::string("abc"), std::string("hello world"),
        std::string("\x00\xff\x7f\x01", 4)}) {
    EXPECT_EQ(wire::base64_decode(wire::base64_encode(s)), s);
  }
  EXPECT_THROW((void)wire::base64_decode("not base64!"), wire::WireError);
  EXPECT_THROW((void)wire::base64_decode("QQ=="
                                         "QQ=="),
               wire::WireError);
  // A dangling 6-bit group (non-padding length of 1 mod 4) is truncated
  // input even when its leftover bits happen to be zero ('A' == 0).
  EXPECT_THROW((void)wire::base64_decode("A"), wire::WireError);
  EXPECT_THROW((void)wire::base64_decode("QQQQA"), wire::WireError);
}

TEST(Wire, ResponseLinesCarryEnvelopeAndEscapeStrings) {
  const std::string line = wire::error_line("7", wire::ErrorCode::kNotFound,
                                            "no \"such\" trial");
  EXPECT_NE(line.find("\"api\":\"perfknow.api/1\""), std::string::npos);
  EXPECT_NE(line.find("\"code\":\"not_found\""), std::string::npos);
  EXPECT_NE(line.find("no \\\"such\\\" trial"), std::string::npos);
  // And it parses back as JSON.
  const auto doc = pk::json::parse(line);
  EXPECT_EQ(doc.find("id")->text, "7");
}

// ---- options validation ------------------------------------------------

TEST(ServerOptionsValidate, NamesTheOffendingField) {
  ServerOptions opt;
  try {
    opt.validate();
    FAIL() << "empty socket_path must throw";
  } catch (const pk::InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("ServerOptions.socket_path"),
              std::string::npos);
  }
  opt.socket_path = socket_path();
  opt.workers = 0;
  EXPECT_THROW(opt.validate(), pk::InvalidArgumentError);
  opt.workers = 2;
  opt.repository_dir = "/definitely/not/a/dir";
  EXPECT_THROW(opt.validate(), pk::InvalidArgumentError);
}

TEST(SessionOptionsValidate, NamesTheOffendingField) {
  pk::script::SessionOptions opt;  // repository null
  try {
    opt.validate();
    FAIL() << "null repository must throw";
  } catch (const pk::InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("SessionOptions.repository"),
              std::string::npos);
  }
  pk::perfdmf::Repository repo;
  opt.repository = &repo;
  opt.threads = static_cast<std::size_t>(-1);  // "negative" count
  EXPECT_THROW(opt.validate(), pk::InvalidArgumentError);
  opt.threads = 0;
  opt.rules_path = "/definitely/not/a/dir";
  EXPECT_THROW(opt.validate(), pk::InvalidArgumentError);
  opt.rules_path.clear();
  EXPECT_NO_THROW(opt.validate());
}

TEST(DiffOptionsValidate, RejectsNonPositiveBand) {
  pk::analysis::DiffOptions opt;
  EXPECT_NO_THROW(opt.validate());
  opt.noise_band = 0.0;
  EXPECT_THROW(opt.validate(), pk::InvalidArgumentError);
  opt.noise_band = -0.5;
  EXPECT_THROW(opt.validate(), pk::InvalidArgumentError);
  opt.noise_band = 0.25;
  opt.min_fraction = 1.5;
  EXPECT_THROW(opt.validate(), pk::InvalidArgumentError);
}

// ---- the daemon --------------------------------------------------------

TEST(ServerDaemon, PingStatsUploadAnalyzeDiffOverTheSocket) {
  TempDir scratch;
  ServerOptions opt;
  opt.socket_path = socket_path();
  opt.workers = 2;
  Server server(opt);

  Client client(opt.socket_path);
  auto pong = client.call("ping");
  ASSERT_TRUE(pong.ok()) << pong.error_message;
  EXPECT_EQ(pong.result, "{\"pong\":true}");

  // Upload a two-version history with a planted 2x regression.
  const auto [base, cur] = regression_pair(scratch.path());
  auto up1 = client.upload_file("perfknow", "bench", base, "v1");
  ASSERT_TRUE(up1.ok()) << up1.error_message;
  EXPECT_NE(up1.result.find("\"trial\":\"v1\""), std::string::npos);
  auto up2 = client.upload_file("perfknow", "bench", cur, "v2");
  ASSERT_TRUE(up2.ok()) << up2.error_message;

  // diff streams a MetricRegression diagnosis plus its proof tree.
  auto diff = client.call("diff", diff_params("perfknow"));
  ASSERT_TRUE(diff.ok()) << diff.error_message;
  EXPECT_NE(diff.result.find("\"regression\":true"), std::string::npos);
  bool saw_regression = false;
  bool saw_explanation = false;
  for (const auto& ev : diff.events) {
    if (ev.event == "diagnosis" &&
        ev.data.find("MetricRegression") != std::string::npos) {
      saw_regression = true;
    }
    if (ev.event == "explanation" &&
        ev.data.find("perfknow.explanation/1") != std::string::npos) {
      saw_explanation = true;
    }
  }
  EXPECT_TRUE(saw_regression);
  EXPECT_TRUE(saw_explanation);

  // analyze over the uploaded trial: runs the openuh rulebase (no
  // diagnoses for a 1-thread bench trial, but the full pipeline runs).
  auto analyzed = client.call(
      "analyze",
      "{\"application\":\"perfknow\",\"experiment\":\"bench\","
      "\"trial\":\"v2\"}");
  ASSERT_TRUE(analyzed.ok()) << analyzed.error_message;
  EXPECT_NE(analyzed.result.find("\"diagnoses\":"), std::string::npos);

  // Unknown trial -> not_found; unknown method -> unknown_method;
  // missing param -> invalid_argument.
  auto missing = client.call(
      "analyze",
      "{\"application\":\"nope\",\"experiment\":\"x\",\"trial\":\"y\"}");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.error, wire::ErrorCode::kNotFound);
  auto unknown = client.call("frobnicate");
  EXPECT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.error, wire::ErrorCode::kUnknownMethod);
  auto invalid = client.call("analyze", "{\"application\":\"a\"}");
  EXPECT_FALSE(invalid.ok());
  EXPECT_EQ(invalid.error, wire::ErrorCode::kInvalidArgument);

  const auto stats = server.stats();
  EXPECT_GE(stats.requests, 7u);
  EXPECT_EQ(stats.uploads, 2u);
  server.stop();
}

TEST(ServerDaemon, StreamedDiagnosesAreByteIdenticalToInProcess) {
  TempDir scratch;
  ServerOptions opt;
  opt.socket_path = socket_path();
  Server server(opt);

  Client client(opt.socket_path);
  const auto [base, cur] = regression_pair(scratch.path());
  ASSERT_TRUE(client.upload_file("perfknow", "bench", base, "v1").ok());
  ASSERT_TRUE(client.upload_file("perfknow", "bench", cur, "v2").ok());

  // The client assigns ids sequentially; this will be request "3".
  const std::string id = client.send("diff", diff_params("perfknow"));
  auto streamed = client.collect(id);
  ASSERT_TRUE(streamed.ok()) << streamed.error_message;
  ASSERT_FALSE(streamed.events.empty());

  // The same work in-process, against the same repository, rendered
  // through the same wire serializers with the same id.
  pk::server::DiffParams params;
  params.application = "perfknow";
  params.experiment = "bench";
  params.base = "v1";
  params.current = "v2";
  pk::rules::RuleHarness harness;
  pk::server::DiffOutcome outcome;
  {
    std::shared_lock<std::shared_mutex> lock(server.repository_mutex());
    outcome = pk::server::run_diff(server.repository(), params, harness);
  }
  EXPECT_TRUE(outcome.regression);
  std::vector<std::string> expected;
  for (const auto& d : outcome.diagnoses) {
    expected.push_back(wire::diagnosis_line(id, d));
    if (d.provenance) {
      expected.push_back(wire::explanation_line(id, *d.provenance));
    }
  }
  ASSERT_EQ(streamed.events.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(streamed.events[i].line, expected[i]) << "line " << i;
  }
  server.stop();
}

TEST(ServerDaemon, EightConcurrentClientsGetIsolatedCorrectResults) {
  TempDir scratch;
  ServerOptions opt;
  opt.socket_path = socket_path();
  opt.workers = 4;
  Server server(opt);

  const auto [base, cur] = regression_pair(scratch.path());
  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        // Each client gets its own application namespace.
        const std::string app = "client" + std::to_string(c);
        Client client(opt.socket_path);
        if (!client.upload_file(app, "bench", base, "v1").ok() ||
            !client.upload_file(app, "bench", cur, "v2").ok()) {
          failures[c] = "upload failed";
          return;
        }
        auto diff = client.call("diff", diff_params(app));
        if (!diff.ok()) {
          failures[c] = "diff: " + diff.error_message;
          return;
        }
        if (diff.result.find("\"regression\":true") == std::string::npos) {
          failures[c] = "no regression verdict: " + diff.result;
          return;
        }
        bool explained = false;
        for (const auto& ev : diff.events) {
          if (ev.event == "explanation") explained = true;
          // Streamed lines must echo this client's own request id.
          if (ev.line.find("\"id\":\"") == std::string::npos) {
            failures[c] = "unlabelled line: " + ev.line;
            return;
          }
        }
        if (!explained) failures[c] = "no explanation streamed";
      } catch (const std::exception& e) {
        failures[c] = e.what();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(failures[c].empty()) << "client " << c << ": "
                                     << failures[c];
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.uploads, 2u * kClients);
  EXPECT_EQ(stats.connections, static_cast<std::uint64_t>(kClients));
  server.stop();
}

TEST(ServerDaemon, UploadBudgetIsEnforcedPerConnection) {
  TempDir scratch;
  ServerOptions opt;
  opt.socket_path = socket_path();
  opt.client_byte_budget = 256;  // smaller than one bench json
  Server server(opt);

  const auto [base, cur] = regression_pair(scratch.path());
  Client client(opt.socket_path);
  auto up = client.upload_file("perfknow", "bench", base, "v1");
  EXPECT_FALSE(up.ok());
  EXPECT_EQ(up.error, wire::ErrorCode::kBudgetExceeded);
  EXPECT_EQ(server.stats().rejected_budget, 1u);
  EXPECT_EQ(server.stats().uploads, 0u);

  // A fresh connection gets a fresh budget (and still enforces it).
  Client again(opt.socket_path);
  EXPECT_EQ(again.call("ping").ok(), true);
  EXPECT_FALSE(again.upload_file("perfknow", "bench", cur, "v2").ok());
  server.stop();
}

namespace {
/// Open descriptors of this process (Linux procfs).
std::size_t open_fd_count() {
  std::size_t n = 0;
  for ([[maybe_unused]] const auto& e :
       fs::directory_iterator("/proc/self/fd")) {
    ++n;
  }
  return n;
}
}  // namespace

TEST(ServerDaemon, DisconnectedClientsDoNotLeakFdsOrStallAccept) {
  if (!fs::exists("/proc/self/fd")) GTEST_SKIP() << "no procfs";
  ServerOptions opt;
  opt.socket_path = socket_path();
  Server server(opt);

  {
    Client warm(opt.socket_path);
    ASSERT_TRUE(warm.call("ping").ok());
  }
  const std::size_t baseline = open_fd_count();

  // Churn connections: each reader must close its fd and drop its
  // Connection when the peer disconnects, or a long-running daemon
  // leaks one fd + one thread per client until accept() hits EMFILE.
  constexpr int kChurn = 32;
  for (int i = 0; i < kChurn; ++i) {
    Client c(opt.socket_path);
    ASSERT_TRUE(c.call("ping").ok());
  }
  // Reader teardown is asynchronous; poll until the fd count returns
  // to (at most) the baseline, with slack for one mid-teardown reader.
  std::size_t fds = open_fd_count();
  for (int i = 0; i < 500 && fds > baseline + 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    fds = open_fd_count();
  }
  EXPECT_LE(fds, baseline + 1)
      << "reader teardown leaked fds across " << kChurn << " disconnects";

  // And the daemon still accepts (this also reaps parked reader threads).
  Client again(opt.socket_path);
  EXPECT_TRUE(again.call("ping").ok());
  EXPECT_GE(server.stats().connections, static_cast<std::uint64_t>(kChurn));
  server.stop();
}

TEST(ServerDaemon, UnframedFloodGetsBadRequestAndTheConnectionClosed) {
  ServerOptions opt;
  opt.socket_path = socket_path();
  opt.client_byte_budget = 1024;  // line cap ~= 64 KiB slack + 4/3 * this
  Server server(opt);

  Client flood(opt.socket_path);
  // Far past the per-line cap: the server must cut the connection off
  // instead of buffering an unframed stream without bound.
  const std::string big(200 * 1024, 'x');
  try {
    flood.send_line(big);
  } catch (const pk::IoError&) {
    // The server may close mid-send; the flood still has to be refused.
  }
  bool bad_request = false;
  bool closed = false;
  try {
    for (;;) {
      if (flood.read_line().find("\"code\":\"bad_request\"") !=
          std::string::npos) {
        bad_request = true;
      }
    }
  } catch (const pk::IoError&) {
    closed = true;  // EOF: the server hung up on the flooding client
  }
  EXPECT_TRUE(bad_request) << "no bad_request line before the close";
  EXPECT_TRUE(closed);

  // The daemon itself is unharmed.
  Client again(opt.socket_path);
  EXPECT_TRUE(again.call("ping").ok());
  server.stop();
}

TEST(ServerDaemon, OverloadRejectedUploadsDoNotConsumeBudget) {
  TempDir scratch;
  ServerOptions opt;
  opt.socket_path = socket_path();
  opt.workers = 1;
  opt.queue_limit = 1;
  opt.client_queue_limit = 16;

  const auto file = write_bench_json(scratch.path() / "t.json",
                                     {{"BM_Parse", 120.0}});
  std::string bytes;
  {
    std::ifstream is(file, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is), {});
  }
  const std::string body = wire::base64_encode(bytes);
  // The admission charge per upload, as the server estimates it.
  const std::size_t charge = body.size() / 4 * 3;
  opt.client_byte_budget = charge * 10;  // room for exactly 10 stored
  Server server(opt);

  Client client(opt.socket_path);
  int seq = 0;
  const auto upload_params = [&] {
    return "{\"application\":\"perfknow\",\"experiment\":\"bench\","
           "\"trial\":\"t" +
           std::to_string(seq++) + "\",\"body\":" + pk::json::quote(body) +
           "}";
  };

  // Stuff the single worker and depth-1 queue with selfdiagnose jobs,
  // then fire uploads at the full queue: the "overloaded" rejections
  // must refund the admission charge, or retrying clients burn their
  // budget without storing anything.
  int stored = 0;
  int overloaded = 0;
  int spurious_budget = 0;
  for (int round = 0; round < 60 && overloaded == 0 && stored <= 6;
       ++round) {
    std::vector<std::string> stuffers;
    std::vector<std::string> uploads;
    for (int i = 0; i < 4; ++i) stuffers.push_back(client.send("selfdiagnose"));
    for (int i = 0; i < 4; ++i) {
      uploads.push_back(client.send("upload", upload_params()));
    }
    for (const auto& id : stuffers) (void)client.collect(id);
    for (const auto& id : uploads) {
      const auto r = client.collect(id);
      if (r.ok()) {
        ++stored;
      } else if (r.error == wire::ErrorCode::kOverloaded) {
        ++overloaded;
      } else if (r.error == wire::ErrorCode::kBudgetExceeded) {
        ++spurious_budget;
      }
    }
  }
  EXPECT_GT(overloaded, 0) << "queue never saturated; nothing exercised";
  EXPECT_EQ(spurious_budget, 0)
      << "overload-rejected uploads consumed the byte budget";

  // The refunded budget is genuinely available: fill all 10 slots...
  for (; stored < 10; ++stored) {
    const auto r = client.call("upload", upload_params());
    ASSERT_TRUE(r.ok()) << r.error_message;
  }
  // ...and only the 11th hits the (still enforced) budget.
  const auto over = client.call("upload", upload_params());
  EXPECT_FALSE(over.ok());
  EXPECT_EQ(over.error, wire::ErrorCode::kBudgetExceeded);
  server.stop();
}

TEST(ServerDaemon, SaturatedQueueRejectsAndDiagnosesItself) {
  TempDir scratch;
  ServerOptions opt;
  opt.socket_path = socket_path();
  opt.workers = 1;
  opt.queue_limit = 2;
  opt.client_queue_limit = 2;
  opt.enable_telemetry = true;
  Server server(opt);

  const auto [base, cur] = regression_pair(scratch.path());
  {
    Client seed(opt.socket_path);
    ASSERT_TRUE(seed.upload_file("perfknow", "bench", base, "v1").ok());
    ASSERT_TRUE(seed.upload_file("perfknow", "bench", cur, "v2").ok());
  }

  // 8 clients each pipeline 4 diffs without reading: 32 near-
  // simultaneous jobs against 1 worker and a queue of 2 — admission
  // control must reject some with "overloaded".
  constexpr int kClients = 8;
  constexpr int kPerClient = 4;
  std::vector<std::thread> threads;
  std::atomic<int> rejected{0};
  std::atomic<int> completed{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      Client client(opt.socket_path);
      std::vector<std::string> ids;
      for (int i = 0; i < kPerClient; ++i) {
        ids.push_back(client.send("diff", diff_params("perfknow")));
      }
      for (const auto& id : ids) {
        const auto r = client.collect(id);
        if (r.ok()) {
          completed.fetch_add(1);
        } else if (r.error == wire::ErrorCode::kOverloaded) {
          rejected.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(rejected.load(), 0);
  EXPECT_GT(completed.load(), 0);
  EXPECT_EQ(server.stats().rejected_overload,
            static_cast<std::uint64_t>(rejected.load()));
  // Ping still answers inline while/after the queue was saturated.
  Client health(opt.socket_path);
  EXPECT_TRUE(health.call("ping").ok());

  // The closed loop: the server's own telemetry, fed through
  // rules/self_diagnosis.rules, diagnoses the saturation — with a
  // proof tree grounded in the rejection counter.
  auto self = health.call("selfdiagnose");
  ASSERT_TRUE(self.ok()) << self.error_message;
  bool diagnosed = false;
  bool grounded = false;
  for (const auto& ev : self.events) {
    if (ev.event == "diagnosis" &&
        ev.data.find("ServerQueueSaturated") != std::string::npos) {
      diagnosed = true;
    }
    if (ev.event == "explanation" &&
        ev.data.find("ServerQueueSaturated") != std::string::npos &&
        ev.data.find("server.rejected.overload") != std::string::npos) {
      grounded = true;
    }
  }
  EXPECT_TRUE(diagnosed) << "no ServerQueueSaturated diagnosis streamed";
  EXPECT_TRUE(grounded) << "proof tree not grounded in the counter";
  server.stop();
}

TEST(ServerDaemon, WatchStreamsFramedStatsDeltaEventsThenResult) {
  ServerOptions opt;
  opt.socket_path = socket_path();
  Server server(opt);

  Client client(opt.socket_path);
  // Pipeline: start the watch, then keep pinging while it streams. The
  // ping responses interleave with watch events on the same socket, so
  // this also proves the per-id parking keeps the streams apart.
  const auto id = client.send("watch", "{\"interval\":0.05,\"count\":3}");
  ASSERT_TRUE(client.call("ping").ok());
  ASSERT_TRUE(client.call("ping").ok());
  const auto r = client.collect(id);
  ASSERT_TRUE(r.ok()) << r.error_message;
  ASSERT_EQ(r.events.size(), 3u);
  EXPECT_EQ(r.result, "{\"events\":3}");

  for (std::size_t i = 0; i < r.events.size(); ++i) {
    const auto& ev = r.events[i];
    EXPECT_EQ(ev.event, "stats");
    EXPECT_NE(ev.line.find("\"api\":\"perfknow.api/1\""),
              std::string::npos);
    const auto data = pk::json::parse(ev.data);
    ASSERT_NE(data.find("seq"), nullptr);
    EXPECT_EQ(data.find("seq")->number, static_cast<double>(i + 1));
    ASSERT_NE(data.find("interval"), nullptr);
    const auto* stats = data.find("stats");
    ASSERT_NE(stats, nullptr);
    for (const char* key :
         {"connections", "requests", "executed", "rejected_overload",
          "rejected_budget", "uploads", "queue_depth"}) {
      EXPECT_NE(stats->find(key), nullptr) << "stats missing " << key;
    }
    const auto* delta = data.find("delta");
    ASSERT_NE(delta, nullptr);
    for (const char* key : {"requests", "executed", "rejected_overload",
                            "rejected_budget", "uploads"}) {
      EXPECT_NE(delta->find(key), nullptr) << "delta missing " << key;
    }
  }
  // The cumulative counters never decrease across events, and the two
  // pings issued mid-stream show up in the totals by the last event.
  const auto first = pk::json::parse(r.events.front().data);
  const auto last = pk::json::parse(r.events.back().data);
  EXPECT_GE(last.find("stats")->find("requests")->number,
            first.find("stats")->find("requests")->number);
  EXPECT_GE(last.find("stats")->find("requests")->number, 3.0);
  server.stop();
}

TEST(ServerDaemon, WatchValidatesIntervalAndCount) {
  ServerOptions opt;
  opt.socket_path = socket_path();
  Server server(opt);
  Client client(opt.socket_path);

  auto too_fast = client.call("watch", "{\"interval\":0.01}");
  EXPECT_FALSE(too_fast.ok());
  EXPECT_EQ(too_fast.error, wire::ErrorCode::kBadRequest);
  EXPECT_NE(too_fast.error_message.find("interval"), std::string::npos);

  auto bad_type = client.call("watch", "{\"interval\":\"fast\"}");
  EXPECT_FALSE(bad_type.ok());
  EXPECT_EQ(bad_type.error, wire::ErrorCode::kBadRequest);

  auto bad_count =
      client.call("watch", "{\"interval\":1,\"count\":-1}");
  EXPECT_FALSE(bad_count.ok());
  EXPECT_EQ(bad_count.error, wire::ErrorCode::kBadRequest);
  EXPECT_NE(bad_count.error_message.find("count"), std::string::npos);

  // The connection survives rejected watches.
  EXPECT_TRUE(client.call("ping").ok());
  server.stop();
}

TEST(ServerDaemon, WatchStreamExhaustsTheConnectionByteBudget) {
  ServerOptions opt;
  opt.socket_path = socket_path();
  // Room for roughly two event lines (~230 bytes each): the stream must
  // then be cut off by the same admission control uploads face.
  opt.client_byte_budget = 512;
  Server server(opt);

  Client client(opt.socket_path);
  const auto r = client.call("watch", "{\"interval\":0.05,\"count\":0}");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error, wire::ErrorCode::kBudgetExceeded);
  EXPECT_GE(r.events.size(), 1u);
  EXPECT_LT(r.events.size(), 4u);
  EXPECT_EQ(server.stats().rejected_budget, 1u);
  server.stop();
}

TEST(ServerDaemon, ServesAnAttachedRepositoryDirectory) {
  TempDir repo_dir;
  TempDir scratch;
  {
    // Seed a repository on disk the daemon will attach lazily.
    pk::perfdmf::Repository repo;
    const auto [base, cur] = regression_pair(scratch.path());
    repo.put_version("perfknow", "bench",
                     std::make_shared<pk::profile::Trial>(
                         pk::io::trial_from_benchmark_files({base}, "v1")));
    repo.put_version("perfknow", "bench",
                     std::make_shared<pk::profile::Trial>(
                         pk::io::trial_from_benchmark_files({cur}, "v2")));
    repo.save(repo_dir.path());
  }
  ServerOptions opt;
  opt.socket_path = socket_path();
  opt.repository_dir = repo_dir.path();
  Server server(opt);
  Client client(opt.socket_path);
  auto diff = client.call("diff", diff_params("perfknow"));
  ASSERT_TRUE(diff.ok()) << diff.error_message;
  EXPECT_NE(diff.result.find("\"regression\":true"), std::string::npos);
  server.stop();
}
