// Tests for the columnar WorkingMemory: the symbol interner, arena
// lifecycle across clear(), FactRef handle semantics, lazy alpha-index
// catch-up under interleaved retracts, for_each_live, and the
// differential guarantee that the SoA read side (FactRef) renders
// byte-identically to the AoS write side (the Fact builder) — both as
// str() and through kFull provenance JSON across all three matchers.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "provenance/explanation.hpp"
#include "rules/engine.hpp"
#include "rules/fact.hpp"
#include "rules/parser.hpp"
#include "rules/symbol.hpp"

namespace pk = perfknow;
using pk::rules::Fact;
using pk::rules::FactId;
using pk::rules::FactRef;
using pk::rules::FactValue;
using pk::rules::kNoSymbol;
using pk::rules::MatchStrategy;
using pk::rules::RuleHarness;
using pk::rules::Symbol;
using pk::rules::SymbolTable;
using pk::rules::WorkingMemory;

// ---------------------------------------------------------------------------
// Symbol interner
// ---------------------------------------------------------------------------

TEST(SymbolTable, InternsDenseIdsAndRoundTrips) {
  SymbolTable t;
  const std::size_t builtins = t.size();
  ASSERT_GT(builtins, 0u);

  const Symbol a = t.intern("userField");
  const Symbol b = t.intern("anotherField");
  EXPECT_EQ(a, builtins);      // dense: first new name gets the next id
  EXPECT_EQ(b, builtins + 1);
  EXPECT_EQ(t.intern("userField"), a);  // idempotent
  EXPECT_EQ(t.name(a), "userField");
  EXPECT_EQ(t.lookup("userField"), a);
  EXPECT_EQ(t.lookup("neverInterned"), kNoSymbol);
  EXPECT_EQ(t.size(), builtins + 2);
}

TEST(SymbolTable, ShippedVocabularyIsPreInterned) {
  SymbolTable t;
  const std::size_t builtins = t.size();
  // Names the shipped rulebases match on must not grow the table.
  for (const char* name :
       {"MeanEventFact", "LoadBalanceFact", "CorrelationFact", "metric",
        "severity", "eventName", "factType"}) {
    EXPECT_LT(t.lookup(name), builtins) << name;
  }
  EXPECT_EQ(t.size(), builtins);
  // Every builtin round-trips and ids are dense [0, size).
  std::set<Symbol> seen;
  for (const std::string_view n : SymbolTable::builtin_names()) {
    const Symbol s = t.lookup(n);
    ASSERT_NE(s, kNoSymbol) << n;
    EXPECT_EQ(t.name(s), n);
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), builtins);
}

TEST(SymbolTable, UserNamesCollidingWithBuiltinsReuseTheBuiltinId) {
  SymbolTable t;
  const Symbol shipped = t.lookup("MeanEventFact");
  ASSERT_NE(shipped, kNoSymbol);
  EXPECT_EQ(t.intern("MeanEventFact"), shipped);
}

// ---------------------------------------------------------------------------
// Arena lifecycle and clear()
// ---------------------------------------------------------------------------

TEST(WorkingMemoryColumnar, ClearResetsArenaGenerationAndRecyclesChunks) {
  WorkingMemory wm;
  const auto gen0 = wm.arena_generation();
  for (int i = 0; i < 1000; ++i) {
    wm.assert_fact(Fact("MeanEventFact")
                       .set("metric", "TIME")
                       .set("severity", static_cast<double>(i)));
  }
  const auto reserved = wm.arena_bytes();
  ASSERT_GT(reserved, 0u);
  const FactId last = wm.last_id();

  wm.clear();
  EXPECT_EQ(wm.arena_generation(), gen0 + 1);
  EXPECT_EQ(wm.size(), 0u);
  EXPECT_FALSE(wm.find(last));  // handles must not straddle a reset
  EXPECT_TRUE(wm.ids_of_type("MeanEventFact").empty());

  // Chunks are recycled, not freed: refilling to the same volume must
  // not grow the reservation.
  for (int i = 0; i < 1000; ++i) {
    wm.assert_fact(Fact("MeanEventFact")
                       .set("metric", "TIME")
                       .set("severity", static_cast<double>(i)));
  }
  EXPECT_EQ(wm.arena_bytes(), reserved);
  // Ids stay monotonic across clear(): recency comparisons never lie.
  EXPECT_GT(wm.ids_of_type("MeanEventFact").front(), last);
}

TEST(WorkingMemoryColumnar, InternedSymbolsSurviveClear) {
  WorkingMemory wm;
  wm.assert_fact(Fact("CustomFact").set("customField", 1.0));
  const Symbol type = wm.symbols().lookup("CustomFact");
  const Symbol field = wm.symbols().lookup("customField");
  ASSERT_NE(type, kNoSymbol);
  wm.clear();
  EXPECT_EQ(wm.symbols().lookup("CustomFact"), type);
  EXPECT_EQ(wm.symbols().lookup("customField"), field);
}

// ---------------------------------------------------------------------------
// FactRef handles
// ---------------------------------------------------------------------------

TEST(WorkingMemoryColumnar, FactRefLifetimeAcrossAssertRetractModify) {
  WorkingMemory wm;
  const FactId a =
      wm.assert_fact(Fact("ScalingFact").set("event", "main").set("eff", 0.9));
  const FactRef ref = wm.find(a);
  ASSERT_TRUE(ref);
  EXPECT_EQ(ref.id(), a);
  EXPECT_EQ(ref.type(), "ScalingFact");
  EXPECT_EQ(ref.field_count(), 2u);
  EXPECT_DOUBLE_EQ(ref.number("eff"), 0.9);
  EXPECT_EQ(ref.text("event"), "main");
  EXPECT_EQ(ref.find_field("absent"), nullptr);
  EXPECT_THROW((void)ref.get("absent"), pk::NotFoundError);
  EXPECT_THROW((void)ref.number("event"), pk::EvalError);

  // Handles stay valid across unrelated asserts (columns are chunked,
  // addresses stable).
  for (int i = 0; i < 100; ++i) {
    wm.assert_fact(Fact("ScalingFact").set("event", "fill"));
  }
  EXPECT_EQ(ref.text("event"), "main");

  // Retract invalidates lookup; modify re-asserts under a fresh id.
  EXPECT_TRUE(wm.retract(a));
  EXPECT_FALSE(wm.find(a));
  EXPECT_FALSE(wm.retract(a));  // double retract is a no-op

  const FactId b = wm.assert_fact(ref.to_fact().set("eff", 0.5));
  EXPECT_GT(b, wm.last_id() - 1);
  const FactRef mod = wm.find(b);
  EXPECT_EQ(mod.text("event"), "main");  // carried over by to_fact()
  EXPECT_DOUBLE_EQ(mod.number("eff"), 0.5);
}

TEST(WorkingMemoryColumnar, ForEachLiveVisitsAscendingAndSkipsRetracted) {
  WorkingMemory wm;
  std::vector<FactId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(wm.assert_fact(
        Fact(i % 2 ? "A" : "B").set("i", static_cast<double>(i))));
  }
  wm.retract(ids[3]);
  wm.retract(ids[7]);

  std::vector<FactId> seen;
  wm.for_each_live([&](const FactRef& f) { seen.push_back(f.id()); });
  std::vector<FactId> expected;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i != 3 && i != 7) expected.push_back(ids[i]);
  }
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(wm.size(), expected.size());
}

// ---------------------------------------------------------------------------
// Lazy index catch-up under interleaved retracts
// ---------------------------------------------------------------------------

TEST(WorkingMemoryColumnar, IndexCatchesUpAfterInterleavedRetracts) {
  WorkingMemory wm;
  std::vector<FactId> time_ids;
  for (int i = 0; i < 50; ++i) {
    const FactId id = wm.assert_fact(
        Fact("MeanEventFact")
            .set("metric", i % 2 ? "TIME" : "CACHE")
            .set("severity", static_cast<double>(i % 5)));
    if (i % 2) time_ids.push_back(id);
  }
  // First probe builds the buckets.
  EXPECT_EQ(wm.ids_with_field_value("MeanEventFact", "metric",
                                    FactValue(std::string("TIME"))),
            time_ids);

  // Retract a prefix, assert more, retract from the middle — the next
  // probe must compact tombstones AND admit the late rows.
  wm.retract(time_ids[0]);
  wm.retract(time_ids[1]);
  const FactId late = wm.assert_fact(
      Fact("MeanEventFact").set("metric", "TIME").set("severity", 9.0));
  wm.retract(time_ids[10]);

  std::vector<FactId> expected(time_ids.begin() + 2, time_ids.end());
  expected.erase(expected.begin() + 8);  // time_ids[10]
  expected.push_back(late);
  EXPECT_EQ(wm.ids_with_field_value("MeanEventFact", "metric",
                                    FactValue(std::string("TIME"))),
            expected);

  // ids_of_type compacts on the same epoch scheme.
  const auto& all = wm.ids_of_type("MeanEventFact");
  EXPECT_EQ(all.size(), 48u);
  for (const FactId id : all) EXPECT_TRUE(wm.find(id)) << id;

  // Symbol-keyed overloads answer identically to the string overloads.
  const Symbol type = wm.symbols().lookup("MeanEventFact");
  const Symbol field = wm.symbols().lookup("metric");
  EXPECT_EQ(wm.ids_with_field_value(type, field, FactValue(std::string("TIME"))),
            expected);
  EXPECT_EQ(wm.ids_of_type(type), all);

  // NaN never equals anything (values_equal semantics).
  EXPECT_TRUE(wm.ids_with_field_value("MeanEventFact", "severity",
                                      FactValue(std::nan("")))
                  .empty());
  // -0.0 and 0.0 share an equivalence class.
  EXPECT_EQ(wm.ids_with_field_value("MeanEventFact", "severity",
                                    FactValue(-0.0)),
            wm.ids_with_field_value("MeanEventFact", "severity",
                                    FactValue(0.0)));
}

// ---------------------------------------------------------------------------
// AoS/SoA differential: builder vs FactRef rendering
// ---------------------------------------------------------------------------

TEST(WorkingMemoryColumnar, FactRefRendersByteIdenticalToBuilder) {
  const auto make = [] {
    return Fact("OverheadFact")
        .set("zeta", "last")
        .set("alpha", 1.25)
        .set("flag", true)
        .set("note", std::string("mixed"))
        .set("count", 42.0);
  };
  const Fact builder = make();
  WorkingMemory wm;
  const FactId id = wm.assert_fact(make());
  const FactRef ref = wm.find(id);
  ASSERT_TRUE(ref);

  EXPECT_EQ(ref.str(), builder.str());

  // Field iteration order and values match the builder exactly.
  std::vector<std::pair<std::string, FactValue>> cols;
  ref.for_each_field([&](const std::string& k, const FactValue& v) {
    cols.emplace_back(k, v);
  });
  ASSERT_EQ(cols.size(), builder.fields().size());
  for (std::size_t i = 0; i < cols.size(); ++i) {
    EXPECT_EQ(cols[i].first, builder.fields()[i].first);
    EXPECT_TRUE(pk::rules::values_equal(cols[i].second,
                                        builder.fields()[i].second));
  }
  // And to_fact() round-trips to the same rendering.
  EXPECT_EQ(ref.to_fact().str(), builder.str());
}

namespace {

// Runs the same two-pattern join under one strategy with kFull
// provenance and returns every diagnosis's explanation JSON.
std::string provenance_json_for(MatchStrategy strategy) {
  static const std::string kSrc = R"RULES(
    rule "High Stall"
      salience 10
      when
        m : MeanEventFact( e : eventName, severity > 0.2,
                           metric == "STALL", factType == "Compared to Main" )
        l : LoadBalanceFact( eventName == e, d : deviation )
      then
        assert(SummaryFact(eventName = e, deviation = d))
        diagnose(problem = "stall-imbalance", event = e,
                 severity = m.severity,
                 recommendation = "stalls and imbalance on " + e)
    end
  )RULES";
  RuleHarness h;
  h.set_provenance(pk::provenance::ProvenanceMode::kFull);
  h.set_match_strategy(strategy);
  pk::rules::add_rules(h, kSrc, "wm_diff.rules");
  for (const char* ev : {"jacobi", "exchange", "reduce"}) {
    h.assert_fact(Fact("MeanEventFact")
                      .set("eventName", ev)
                      .set("severity", ev[0] == 'r' ? 0.1 : 0.4)
                      .set("metric", "STALL")
                      .set("factType", "Compared to Main"));
    h.assert_fact(Fact("LoadBalanceFact")
                      .set("eventName", ev)
                      .set("deviation", 0.33));
  }
  h.process_rules();
  std::string json;
  for (const auto& d : h.diagnoses()) {
    if (d.provenance) json += pk::provenance::to_json(*d.provenance) + "\n";
  }
  EXPECT_FALSE(json.empty());
  return json;
}

}  // namespace

TEST(WorkingMemoryColumnar, ProvenanceJsonByteIdenticalAcrossStrategies) {
  const std::string naive = provenance_json_for(MatchStrategy::kNaive);
  EXPECT_EQ(provenance_json_for(MatchStrategy::kIndexed), naive);
  EXPECT_EQ(provenance_json_for(MatchStrategy::kBeta), naive);
  // kFull snapshots must carry the matched fields through FactRef.
  EXPECT_NE(naive.find("\"factType\""), std::string::npos);
  EXPECT_NE(naive.find("jacobi"), std::string::npos);
}
