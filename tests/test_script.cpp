// Tests for the PerfScript language: lexer, parser, interpreter.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "script/interpreter.hpp"
#include "script/lexer.hpp"

namespace pk = perfknow;
using pk::script::Interpreter;
using pk::script::Value;

namespace {

std::vector<std::string> run(const std::string& src) {
  Interpreter interp;
  interp.run(src);
  return interp.output();
}

Value eval(const std::string& expr) {
  Interpreter interp;
  return interp.eval_expression(expr);
}

}  // namespace

TEST(Lexer, TracksIndentation) {
  const auto toks = pk::script::tokenize("if x:\n    y = 1\nz = 2\n");
  int indents = 0;
  int dedents = 0;
  for (const auto& t : toks) {
    if (t.kind == pk::script::TokKind::kIndent) ++indents;
    if (t.kind == pk::script::TokKind::kDedent) ++dedents;
  }
  EXPECT_EQ(indents, 1);
  EXPECT_EQ(dedents, 1);
}

TEST(Lexer, RejectsTabsAndBadDedent) {
  EXPECT_THROW(pk::script::tokenize("if x:\n\ty = 1\n"), pk::ParseError);
  EXPECT_THROW(pk::script::tokenize("if x:\n    y = 1\n  z = 2\n"),
               pk::ParseError);
}

TEST(Lexer, NewlinesInsideBracketsAreSoft) {
  Interpreter interp;
  interp.run("x = [1,\n     2,\n     3]\nprint(len(x))\n");
  EXPECT_EQ(interp.output(), (std::vector<std::string>{"3"}));
}

TEST(Eval, ArithmeticAndPrecedence) {
  EXPECT_DOUBLE_EQ(eval("1 + 2 * 3").as_number(), 7.0);
  EXPECT_DOUBLE_EQ(eval("(1 + 2) * 3").as_number(), 9.0);
  EXPECT_DOUBLE_EQ(eval("2 ** 3 ** 2").as_number(), 512.0);  // right assoc
  EXPECT_DOUBLE_EQ(eval("7 // 2").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(eval("7 % 3").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(eval("-3 + 1").as_number(), -2.0);
}

TEST(Eval, DivisionByZeroThrows) {
  EXPECT_THROW(eval("1 / 0"), pk::EvalError);
  EXPECT_THROW(eval("1 % 0"), pk::EvalError);
}

TEST(Eval, StringsAndLists) {
  EXPECT_EQ(eval("'a' + 'b'").as_string(), "ab");
  EXPECT_EQ(eval("'ab' * 3").as_string(), "ababab");
  EXPECT_DOUBLE_EQ(eval("[1, 2, 3][1]").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(eval("[1, 2, 3][-1]").as_number(), 3.0);
  EXPECT_EQ(eval("'hello'[1]").as_string(), "e");
  EXPECT_THROW(eval("[1][5]"), pk::EvalError);
  EXPECT_THROW(eval("1 + 'a'"), pk::EvalError);
}

TEST(Eval, ComparisonAndMembership) {
  EXPECT_TRUE(eval("1 < 2").as_bool());
  EXPECT_TRUE(eval("'abc' < 'abd'").as_bool());
  EXPECT_TRUE(eval("2 in [1, 2]").as_bool());
  EXPECT_TRUE(eval("3 not in [1, 2]").as_bool());
  EXPECT_TRUE(eval("'ell' in 'hello'").as_bool());
  EXPECT_TRUE(eval("'k' in {'k': 1}").as_bool());
  EXPECT_TRUE(eval("[1, 2] == [1, 2]").as_bool());
  EXPECT_FALSE(eval("{'a': 1} == {'a': 2}").as_bool());
}

TEST(Eval, BoolOpsShortCircuit) {
  // "or" returns the first truthy operand, Python style.
  EXPECT_DOUBLE_EQ(eval("0 or 5").as_number(), 5.0);
  EXPECT_DOUBLE_EQ(eval("3 and 5").as_number(), 5.0);
  EXPECT_FALSE(eval("not 1").as_bool());
  // Division by zero on the unevaluated branch must not fire.
  EXPECT_DOUBLE_EQ(eval("1 or 1 / 0").as_number(), 1.0);
}

TEST(Exec, IfElifElse) {
  const auto out = run(R"(
x = 15
if x < 10:
    print("small")
elif x < 20:
    print("medium")
else:
    print("large")
)");
  EXPECT_EQ(out, (std::vector<std::string>{"medium"}));
}

TEST(Exec, WhileWithBreakContinue) {
  const auto out = run(R"(
i = 0
total = 0
while True:
    i = i + 1
    if i % 2 == 0:
        continue
    if i > 7:
        break
    total += i
print(total)
)");
  EXPECT_EQ(out, (std::vector<std::string>{"16"}));  // 1+3+5+7
}

TEST(Exec, ForOverRangeAndList) {
  const auto out = run(R"(
total = 0
for i in range(5):
    total += i
for x in [10, 20]:
    total += x
print(total)
for c in "ab":
    print(c)
)");
  EXPECT_EQ(out, (std::vector<std::string>{"40", "a", "b"}));
}

TEST(Exec, FunctionsWithReturnAndRecursion) {
  const auto out = run(R"(
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)
print(fib(10))
)");
  EXPECT_EQ(out, (std::vector<std::string>{"55"}));
}

TEST(Exec, FunctionArityChecked) {
  Interpreter interp;
  EXPECT_THROW(interp.run("def f(a, b):\n    return a\nf(1)\n"),
               pk::EvalError);
}

TEST(Exec, LocalScopeDoesNotLeak) {
  Interpreter interp;
  interp.run(R"(
x = 1
def f():
    y = 99
    return y
f()
)");
  EXPECT_THROW((void)interp.global("y"), pk::NotFoundError);
  EXPECT_DOUBLE_EQ(interp.global("x").as_number(), 1.0);
}

TEST(Exec, ListAndDictMutation) {
  const auto out = run(R"(
xs = []
xs.append(3)
xs.append(1)
xs.append(2)
xs.sort()
print(xs[0], xs[1], xs[2])
d = {"a": 1}
d["b"] = 2
d["a"] = 10
print(d["a"] + d["b"])
xs[0] = 100
print(xs[0])
)");
  EXPECT_EQ(out, (std::vector<std::string>{"1 2 3", "12", "100"}));
}

TEST(Exec, Builtins) {
  const auto out = run(R"(
print(len("abc"), len([1, 2]), len({"a": 1}))
print(min(3, 1, 2), max([4, 9, 2]))
print(sum([1, 2, 3.5]))
print(sorted([3, 1, 2]))
print(abs(-4), round(3.14159, 2))
print(str(42) + "!")
print(int("7") + float("0.5"))
print(type(1.0), type("s"), type([]))
)");
  EXPECT_EQ(out[0], "3 2 1");
  EXPECT_EQ(out[1], "1 9");
  EXPECT_EQ(out[2], "6.5");
  EXPECT_EQ(out[3], "[1, 2, 3]");
  EXPECT_EQ(out[4], "4 3.14");
  EXPECT_EQ(out[5], "42!");
  EXPECT_EQ(out[6], "7.5");
  EXPECT_EQ(out[7], "float str list");
}

TEST(Exec, StringMethods) {
  const auto out = run(R"(
s = "Hello World"
print(s.upper())
print(s.lower())
print(s.startswith("Hello"), s.endswith("World"))
print(s.split(" ")[1])
print(s.replace("World", "There"))
)");
  EXPECT_EQ(out[0], "HELLO WORLD");
  EXPECT_EQ(out[1], "hello world");
  EXPECT_EQ(out[2], "True True");
  EXPECT_EQ(out[3], "World");
  EXPECT_EQ(out[4], "Hello There");
}

TEST(Exec, ImportIsNoOp) {
  const auto out = run(R"(
import glue
from edu.uoregon.tau.perfexplorer.glue import Utilities
print("ok")
)");
  EXPECT_EQ(out, (std::vector<std::string>{"ok"}));
}

TEST(Exec, UndefinedNameReportsLine) {
  Interpreter interp;
  try {
    interp.run("x = 1\ny = nope\n");
    FAIL() << "expected EvalError";
  } catch (const pk::EvalError& e) {
    EXPECT_NE(std::string(e.what()).find("nope"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Exec, StatementLimitStopsInfiniteLoops) {
  Interpreter interp;
  interp.set_statement_limit(1000);
  EXPECT_THROW(interp.run("while True:\n    x = 1\n"), pk::EvalError);
}

TEST(Exec, AugAssignOperators) {
  const auto out = run(R"(
x = 10
x += 5
x -= 3
x *= 2
x /= 4
print(x)
)");
  EXPECT_EQ(out, (std::vector<std::string>{"6"}));
}

TEST(Exec, HostFunctionAndGlobals) {
  Interpreter interp;
  interp.set_global("double_it", pk::script::make_host_fn(
                                     [](Interpreter&,
                                        const std::vector<Value>& args) {
                                       return Value(args.at(0).as_number() *
                                                    2);
                                     }));
  interp.run("y = double_it(21)\n");
  EXPECT_DOUBLE_EQ(interp.global("y").as_number(), 42.0);
}

TEST(Exec, HostObjectMethods) {
  Interpreter interp;
  auto data = std::make_shared<int>(5);
  interp.set_global("counter",
                    pk::script::make_host_object("Counter", data));
  interp.register_method(
      "Counter", "increment",
      [](Interpreter&, const pk::script::HostObjPtr& obj,
         const std::vector<Value>& args) {
        auto p = std::static_pointer_cast<int>(obj->data);
        *p += args.empty() ? 1 : static_cast<int>(args[0].as_number());
        return Value(static_cast<double>(*p));
      });
  interp.run("a = counter.increment()\nb = counter.increment(10)\n");
  EXPECT_DOUBLE_EQ(interp.global("a").as_number(), 6.0);
  EXPECT_DOUBLE_EQ(interp.global("b").as_number(), 16.0);
  EXPECT_THROW(interp.run("counter.nope()\n"), pk::EvalError);
}

TEST(Exec, NamespaceDictsResolveAttributes) {
  Interpreter interp;
  interp.set_global(
      "Utilities",
      pk::script::make_dict(
          {{"answer", pk::script::make_host_fn(
                          [](Interpreter&, const std::vector<Value>&) {
                            return Value(42.0);
                          })}}));
  interp.run("x = Utilities.answer()\n");
  EXPECT_DOUBLE_EQ(interp.global("x").as_number(), 42.0);
}

TEST(Parser, SyntaxErrorsCarryLineAndColumn) {
  try {
    Interpreter().run("x = 1\ny = = 2\n");
    FAIL() << "expected ParseError";
  } catch (const pk::ParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_EQ(e.column(), 5);
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos);
    EXPECT_NE(what.find("column 5"), std::string::npos);
  }
  try {
    (void)pk::script::tokenize("x = 1 $\n");
    FAIL() << "expected ParseError";
  } catch (const pk::ParseError& e) {
    EXPECT_EQ(e.line(), 1);
    EXPECT_EQ(e.column(), 7);
    EXPECT_FALSE(e.excerpt().empty());
  }
}

TEST(Parser, SyntaxErrors) {
  Interpreter interp;
  EXPECT_THROW(interp.run("if x\n    y = 1\n"), pk::ParseError);
  EXPECT_THROW(interp.run("1 +\n"), pk::ParseError);
  EXPECT_THROW(interp.run("def f(:\n    pass\n"), pk::ParseError);
  EXPECT_THROW(interp.run("x = = 1\n"), pk::ParseError);
  EXPECT_THROW(interp.run("for in [1]:\n    pass\n"), pk::ParseError);
  EXPECT_THROW(interp.run("1 = x\n"), pk::ParseError);
  EXPECT_THROW(interp.run("if 1:\npass\n"), pk::ParseError);
}
