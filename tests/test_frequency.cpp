// Tests for frequency-based feedback optimizations: profile extraction,
// inlining decisions, and branch layout.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "openuh/frequency.hpp"

namespace pk = perfknow;
using namespace pk::openuh;

namespace {

ProgramIR call_graph_program() {
  ProgramIR ir;
  ir.name = "callgraph";
  Procedure main_p;
  main_p.name = "main";
  main_p.straightline_statements = 20;
  main_p.callees = {"tiny_hot", "huge", "cold", "missing_extern"};
  ir.procedures.push_back(main_p);

  Procedure tiny;
  tiny.name = "tiny_hot";
  tiny.straightline_statements = 5;
  tiny.callees = {"leaf"};
  ir.procedures.push_back(tiny);

  Procedure huge;
  huge.name = "huge";
  huge.straightline_statements = 500;
  ir.procedures.push_back(huge);

  Procedure cold;
  cold.name = "cold";
  cold.straightline_statements = 10;
  ir.procedures.push_back(cold);

  Procedure leaf;
  leaf.name = "leaf";
  leaf.straightline_statements = 2;
  ir.procedures.push_back(leaf);
  return ir;
}

FrequencyProfile hot_profile() {
  FrequencyProfile fp;
  fp.set("tiny_hot", 1e7);
  fp.set("huge", 1e7);
  fp.set("cold", 3.0);
  fp.set("missing_extern", 1e7);
  fp.set("leaf", 2e7);
  return fp;
}

}  // namespace

TEST(FrequencyProfile, FromTrialSumsThreads) {
  pk::profile::Trial t("f");
  t.set_thread_count(3);
  t.add_metric("TIME");
  const auto e = t.add_event("kernel");
  for (std::size_t th = 0; th < 3; ++th) t.set_calls(th, e, 100, 0);
  const auto fp = FrequencyProfile::from_trial(t);
  EXPECT_DOUBLE_EQ(fp.calls("kernel"), 300.0);
  EXPECT_DOUBLE_EQ(fp.calls("absent"), 0.0);
}

TEST(Inlining, DecidesByFrequencyAndSize) {
  const auto ir = call_graph_program();
  const auto decisions = decide_inlining(ir, hot_profile());
  ASSERT_EQ(decisions.size(), 5u);  // 4 from main + 1 from tiny_hot

  auto find = [&](const std::string& caller, const std::string& callee)
      -> const InlineDecision& {
    for (const auto& d : decisions) {
      if (d.caller == caller && d.callee == callee) return d;
    }
    throw std::runtime_error("decision not found");
  };
  // Hot + tiny: inlined.
  EXPECT_TRUE(find("main", "tiny_hot").inlined);
  EXPECT_TRUE(find("tiny_hot", "leaf").inlined);
  // Hot but huge: rejected for size.
  EXPECT_FALSE(find("main", "huge").inlined);
  EXPECT_EQ(find("main", "huge").reason, "callee too large");
  // Tiny but cold: benefit too small.
  EXPECT_FALSE(find("main", "cold").inlined);
  EXPECT_EQ(find("main", "cold").reason, "benefit below threshold");
  // External: unknown callee.
  EXPECT_FALSE(find("main", "missing_extern").inlined);
  EXPECT_EQ(find("main", "missing_extern").reason, "unknown callee");
  // Benefit math: calls x overhead.
  EXPECT_DOUBLE_EQ(find("main", "tiny_hot").benefit_cycles, 1e7 * 40.0);
}

TEST(Inlining, GrowthBudgetLimitsAcceptance) {
  const auto ir = call_graph_program();
  InlineParams params;
  params.growth_budget_statements = 4.0;  // only the 2-statement leaf fits
  const auto decisions = decide_inlining(ir, hot_profile(), params);
  int inlined = 0;
  for (const auto& d : decisions) {
    if (d.inlined) {
      ++inlined;
      EXPECT_EQ(d.callee, "leaf");
    }
  }
  EXPECT_EQ(inlined, 1);
}

TEST(Inlining, ApplyFoldsBodiesAndRetargetsCallsites) {
  auto ir = call_graph_program();
  // Give tiny_hot a loop so folding of nests is exercised.
  LoopNest nest;
  nest.name = "tiny_loop";
  nest.trip_counts = {16};
  ir.procedures[1].loops.push_back(nest);

  const auto decisions = decide_inlining(ir, hot_profile());
  const auto out = apply_inlining(ir, decisions);

  const auto& main_p = out.procedure("main");
  // tiny_hot (5 + loop weight) folded into main.
  EXPECT_GT(main_p.straightline_statements, 20.0);
  // Callsite main->tiny_hot removed; transitive callee inherited.
  EXPECT_EQ(std::count(main_p.callees.begin(), main_p.callees.end(),
                       "tiny_hot"),
            0);
  EXPECT_GE(std::count(main_p.callees.begin(), main_p.callees.end(),
                       "leaf"),
            1);
  // The folded loop is namespaced into the caller.
  bool found_loop = false;
  for (const auto& l : main_p.loops) {
    if (l.name == "main::tiny_loop") found_loop = true;
  }
  EXPECT_TRUE(found_loop);
  // Callee still exists for other callers.
  EXPECT_TRUE(out.has_procedure("tiny_hot"));
}

TEST(Inlining, ApplyRejectsForeignDecisions) {
  const auto ir = call_graph_program();
  InlineDecision bogus;
  bogus.caller = "nope";
  bogus.callee = "tiny_hot";
  bogus.inlined = true;
  EXPECT_THROW(apply_inlining(ir, {bogus}), pk::InvalidArgumentError);
}

TEST(BranchLayout, HotDirectionFallsThrough) {
  const std::vector<BranchFrequency> branches = {
      {"mostly_taken", 900, 100},
      {"mostly_not_taken", 50, 950},
      {"balanced", 500, 500},
      {"never_run", 0, 0},
  };
  const auto layout = optimize_branches(branches);
  ASSERT_EQ(layout.size(), 4u);
  EXPECT_TRUE(layout[0].invert);
  EXPECT_NEAR(layout[0].predicted_mispredict_rate, 0.1, 1e-12);
  EXPECT_NEAR(layout[0].bias, 0.9, 1e-12);
  EXPECT_FALSE(layout[1].invert);
  EXPECT_NEAR(layout[1].predicted_mispredict_rate, 0.05, 1e-12);
  EXPECT_FALSE(layout[2].invert);
  EXPECT_NEAR(layout[2].predicted_mispredict_rate, 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(layout[3].predicted_mispredict_rate, 0.0);
  EXPECT_THROW(optimize_branches({{"bad", -1, 2}}),
               pk::InvalidArgumentError);
}
