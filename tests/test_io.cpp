// Tests for the unified io::open_trial / io::save_trial front door:
// auto-detection across all six registered formats, content-over-
// extension sniffing, and the candidate-listing failure diagnostics.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "common/error.hpp"
#include "io/format.hpp"
#include "perfdmf/tau_format.hpp"

namespace pk = perfknow;
namespace fs = std::filesystem;
using pk::profile::Trial;

namespace {

Trial make_trial(const std::string& name) {
  Trial t(name);
  const auto time = t.add_metric("TIME", "usec");
  const auto main = t.add_event("main", pk::profile::kNoEvent, "PROC");
  const auto loop = t.add_event("main => loop", main, "LOOP");
  t.set_thread_count(2);
  for (std::size_t th = 0; th < 2; ++th) {
    t.set_inclusive(th, main, time, 100.0 + th);
    t.set_exclusive(th, main, time, 10.0);
    t.set_inclusive(th, loop, time, 90.0 + th);
    t.set_exclusive(th, loop, time, 90.0 + th);
    t.set_calls(th, main, 1, 1);
    t.set_calls(th, loop, 1, 0);
  }
  return t;
}

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() /
           ("perfknow_io_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    fs::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return dir_; }

 private:
  fs::path dir_;
  static inline int counter_ = 0;
};

}  // namespace

TEST(IoRegistry, AllSixFormatsRegistered) {
  for (const char* name :
       {"pkb", "pkprof", "benchjson", "json", "csv", "tau"}) {
    EXPECT_NE(pk::io::find_format(name), nullptr) << name;
  }
  EXPECT_EQ(pk::io::formats().size(), 6u);  // tau covers files + dirs
  EXPECT_EQ(pk::io::find_format("bogus"), nullptr);
}

TEST(IoOpen, BenchmarkJsonDetectedBeforeTrialJson) {
  TempDir dir;
  // A Google-Benchmark document: object with "context", no "threads".
  const fs::path bench = dir.path() / "run.json";
  std::ofstream(bench) << R"({
    "context": {"host_name": "ci"},
    "benchmarks": [
      {"name": "BM_A", "run_type": "iteration", "iterations": 3,
       "real_time": 2.0, "cpu_time": 1.0, "time_unit": "us"}
    ]
  })";
  const Trial from_bench = pk::io::open_trial(bench);
  EXPECT_TRUE(from_bench.find_event("BM_A").has_value());
  EXPECT_TRUE(from_bench.find_metric("CPU_TIME").has_value());

  // The trial-schema JSON (has "threads") must keep its claim even when
  // a metadata value happens to contain the word "context".
  Trial t = make_trial("json keeps claim");
  t.set_metadata("note", "\"context\" appears here");
  const fs::path file = dir.path() / "trial.json";
  pk::io::save_trial(t, file, "json");
  const Trial back = pk::io::open_trial(file);
  EXPECT_EQ(back.thread_count(), 2u);
  EXPECT_TRUE(back.find_event("main => loop").has_value());
}

TEST(IoOpen, AutoDetectsEveryWritableFormatByContent) {
  TempDir dir;
  const Trial t = make_trial("detect me");
  for (const char* format : {"pkb", "pkprof", "json", "csv"}) {
    // Deliberately extension-less: detection must work off content.
    const fs::path file = dir.path() / (std::string("trial_") + format);
    pk::io::save_trial(t, file, format);
    const Trial back = pk::io::open_trial(file);
    EXPECT_EQ(back.thread_count(), 2u) << format;
    EXPECT_TRUE(back.find_event("main => loop").has_value()) << format;
    const auto m = back.metric_id("TIME");
    EXPECT_EQ(back.exclusive(1, back.event_id("main => loop"), m), 91.0)
        << format;
  }
}

TEST(IoOpen, DetectsTauDirectoryAndSingleProfile) {
  TempDir dir;
  const Trial t = make_trial("tau trial");
  const fs::path tau_dir = dir.path() / "taudir";
  pk::perfdmf::write_tau_profiles(t, "TIME", tau_dir);

  const Trial from_dir = pk::io::open_trial(tau_dir);
  EXPECT_EQ(from_dir.thread_count(), 2u);
  EXPECT_TRUE(from_dir.find_event("main => loop").has_value());

  // A single profile.N.C.T file detects by its header line.
  const Trial one = pk::io::open_trial(tau_dir / "profile.0.0.0");
  EXPECT_EQ(one.thread_count(), 1u);
}

TEST(IoOpen, DirectoryWithoutTauProfilesIsNotClaimed) {
  TempDir dir;
  const fs::path sub = dir.path() / "not_tau";
  fs::create_directories(sub);
  std::ofstream(sub / "notes.txt") << "just some files\n";
  // A directory with no profile.N.C.T files must not dispatch to the
  // TAU reader (whose parse error would be misleading).
  try {
    (void)pk::io::open_trial(sub);
    FAIL() << "directory of non-TAU files opened";
  } catch (const pk::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("unrecognized profile format"),
              std::string::npos)
        << e.what();
  }
}

TEST(IoOpen, FallsBackToExtensionWhenContentIsInconclusive) {
  TempDir dir;
  // An empty .csv has no header line to sniff, but the extension names
  // the format, whose reader then gives the format's own diagnostic.
  const fs::path file = dir.path() / "empty.csv";
  std::ofstream(file).close();
  EXPECT_THROW((void)pk::io::open_trial(file), pk::ParseError);
}

TEST(IoOpen, UnrecognizedInputListsCandidateFormats) {
  TempDir dir;
  const fs::path file = dir.path() / "mystery.dat";
  std::ofstream(file) << "no format looks like this\n";
  try {
    (void)pk::io::open_trial(file);
    FAIL() << "garbage opened";
  } catch (const pk::ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("mystery.dat"), std::string::npos) << what;
    for (const char* name : {"pkb", "pkprof", "json", "csv", "tau"}) {
      EXPECT_NE(what.find(name), std::string::npos) << what;
    }
  }
  EXPECT_THROW((void)pk::io::open_trial(dir.path() / "absent.pkb"),
               pk::IoError);
}

TEST(IoOpen, ExplicitFormatNameOverridesDetection) {
  TempDir dir;
  const Trial t = make_trial("explicit");
  const fs::path file = dir.path() / "data.bin";
  pk::io::save_trial(t, file, "csv");
  const Trial back = pk::io::open_trial(file, "csv");
  EXPECT_EQ(back.thread_count(), 2u);
  EXPECT_THROW((void)pk::io::open_trial(file, "nope"),
               pk::InvalidArgumentError);
}

TEST(IoSave, PicksFormatByExtension) {
  TempDir dir;
  const Trial t = make_trial("by ext");
  for (const char* ext : {".pkb", ".pkprof", ".json", ".csv"}) {
    const fs::path file = dir.path() / (std::string("trial") + ext);
    pk::io::save_trial(t, file);
    EXPECT_EQ(pk::io::open_trial(file).thread_count(), 2u) << ext;
  }
  try {
    pk::io::save_trial(t, dir.path() / "trial.xyz");
    FAIL() << "unknown extension accepted";
  } catch (const pk::InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("pkprof"), std::string::npos)
        << e.what();
  }
  // TAU is read-only through this API (its writer needs a metric + dir).
  EXPECT_THROW(pk::io::save_trial(t, dir.path() / "x", "tau"),
               pk::InvalidArgumentError);
}

TEST(IoOpen, MislabeledExtensionStillDetectsByMagic) {
  TempDir dir;
  const Trial t = make_trial("mislabeled");
  // A PKB snapshot wearing a .csv extension: content sniffing wins.
  const fs::path file = dir.path() / "actually_pkb.csv";
  pk::io::save_trial(t, file, "pkb");
  const Trial back = pk::io::open_trial(file);
  EXPECT_EQ(back.name(), "mislabeled");
}
