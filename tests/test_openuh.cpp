// Tests for the OpenUH compiler substrate: passes, cost models,
// feedback, compiler driver and kernel-work lowering.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/error.hpp"
#include "machine/machine.hpp"
#include "openuh/compiler.hpp"
#include "openuh/cost_model.hpp"
#include "openuh/feedback.hpp"
#include "openuh/ir.hpp"
#include "openuh/passes.hpp"

namespace pk = perfknow;
using namespace pk::openuh;
using pk::machine::MachineConfig;

namespace {

LoopNest stream_nest(std::uint64_t n = 1 << 16) {
  LoopNest nest;
  nest.name = "stream_loop";
  nest.trip_counts = {n};
  nest.flops_per_iter = 2.0;
  nest.int_ops_per_iter = 10.0;
  nest.parallelizable = true;
  ArrayRef a;
  a.name = "x";
  a.extent_elements = n;
  a.stride_elements = 1;
  a.passes = 4.0;
  nest.arrays.push_back(a);
  return nest;
}

ProgramIR small_program() {
  ProgramIR ir;
  ir.name = "demo";
  Procedure p;
  p.name = "kernel";
  p.loops.push_back(stream_nest());
  p.callees.push_back("helper");
  ir.procedures.push_back(p);
  Procedure helper;
  helper.name = "helper";
  helper.estimated_calls = 1e6;
  helper.straightline_statements = 1.0;
  ir.procedures.push_back(helper);
  return ir;
}

}  // namespace

TEST(Passes, LevelsParseAndStack) {
  EXPECT_EQ(opt_level_from_string("O2"), OptLevel::kO2);
  EXPECT_EQ(opt_level_from_string("-O3"), OptLevel::kO3);
  EXPECT_THROW((void)opt_level_from_string("O9"), pk::InvalidArgumentError);
  EXPECT_TRUE(pipeline_for(OptLevel::kO0).empty());
  EXPECT_GT(pipeline_for(OptLevel::kO3).size(),
            pipeline_for(OptLevel::kO2).size());
  EXPECT_GT(pipeline_for(OptLevel::kO2).size(),
            pipeline_for(OptLevel::kO1).size());
}

TEST(Passes, CodegenProfileTrendsMatchTableOne) {
  const auto o0 = codegen_profile(OptLevel::kO0);
  const auto o1 = codegen_profile(OptLevel::kO1);
  const auto o2 = codegen_profile(OptLevel::kO2);
  const auto o3 = codegen_profile(OptLevel::kO3);
  // Instruction count shrinks monotonically, with the big drop at O2.
  EXPECT_GT(o0.instruction_scale, o1.instruction_scale);
  EXPECT_GT(o1.instruction_scale, 3.0 * o2.instruction_scale);
  EXPECT_GE(o2.instruction_scale, o3.instruction_scale);
  // ILP recovers at O3 (software pipelining / vectorization).
  EXPECT_GT(o3.ilp, o2.ilp);
  EXPECT_GT(o1.ilp, o0.ilp);
  // Exposure of memory stalls falls with optimization.
  EXPECT_GT(o0.exposed_stall_fraction, o2.exposed_stall_fraction);
  EXPECT_GT(o2.exposed_stall_fraction, o3.exposed_stall_fraction);
}

TEST(CostModel, ProcessorCyclesScaleWithWorkAndIlp) {
  CostModel model(MachineConfig::altix300());
  const auto nest = stream_nest();
  auto cg0 = codegen_profile(OptLevel::kO0);
  auto cg3 = codegen_profile(OptLevel::kO3);
  EXPECT_GT(model.processor_cycles(nest, cg0),
            model.processor_cycles(nest, cg3));
}

TEST(CostModel, SpillCostOnlyUnderPressure) {
  CostModel model(MachineConfig::altix300());
  auto small = stream_nest();
  const auto cg = codegen_profile(OptLevel::kO2);
  EXPECT_DOUBLE_EQ(model.spill_cycles(small, cg), 0.0);
  auto big = stream_nest();
  big.flops_per_iter = 500.0;  // register pressure explodes
  EXPECT_GT(model.spill_cycles(big, cg), 0.0);
}

TEST(CacheModel, TilingRemovesCapacityMisses) {
  CostModel model(MachineConfig::altix300());
  auto nest = stream_nest(1 << 20);  // 8 MB array, 4 passes: streams L3
  const auto plain = model.predict_cache(nest);
  Transformation tile;
  tile.tile = true;
  tile.tile_bytes = 128 * 1024;  // fits L2
  const auto tiled = model.predict_cache(nest, tile);
  EXPECT_GT(plain.l3_misses, 2.0 * tiled.l3_misses);
  EXPECT_GT(plain.stall_cycles, tiled.stall_cycles);
}

TEST(CacheModel, InterchangeFixesStride) {
  CostModel model(MachineConfig::altix300());
  auto nest = stream_nest(1 << 18);
  // Column-major disaster: stride-64 sweeps repeated 64 times to cover
  // every element of the array.
  nest.arrays[0].stride_elements = 64;
  nest.arrays[0].passes = 64.0;
  const auto bad = model.predict_cache(nest);
  Transformation t;
  t.interchange = true;
  t.interchange_to_inner = 0;
  const auto good = model.predict_cache(nest, t);
  EXPECT_GT(bad.l1_misses, good.l1_misses);
}

TEST(CacheModel, StartupCostCountsInnerEntries) {
  CostModel model(MachineConfig::altix300());
  LoopNest nest = stream_nest();
  nest.trip_counts = {100, 50};  // 100 inner-loop entries
  const auto p = model.predict_cache(nest);
  EXPECT_DOUBLE_EQ(p.startup_cycles, 100.0 * 12.0);
}

TEST(ParallelModel, OverheadAndLevelChoice) {
  CostModel model(MachineConfig::altix300());
  auto nest = stream_nest(1 << 20);
  nest.trip_counts = {64, 1 << 14};
  const auto cg = codegen_profile(OptLevel::kO2);
  EXPECT_DOUBLE_EQ(model.parallel_overhead_cycles(nest, 1), 0.0);
  EXPECT_GT(model.parallel_overhead_cycles(nest, 8), 0.0);
  // Big nest: parallelizing the outermost level wins.
  const auto level = model.recommend_parallel_level(nest, cg, 8);
  ASSERT_TRUE(level.has_value());
  EXPECT_EQ(*level, 0u);
  // Tiny nest: not worth forking at all.
  LoopNest tiny = stream_nest(8);
  tiny.arrays.clear();
  const auto none = model.recommend_parallel_level(tiny, cg, 8);
  EXPECT_FALSE(none.has_value());
}

TEST(ParallelModel, ReductionAddsCost) {
  CostModel model(MachineConfig::altix300());
  auto nest = stream_nest();
  const double plain = model.parallel_overhead_cycles(nest, 8);
  nest.has_reduction = true;
  EXPECT_GT(model.parallel_overhead_cycles(nest, 8), plain);
}

TEST(BestPlan, PicksCheapestAndPrunesIllegal) {
  CostModel model(MachineConfig::altix300());
  auto nest = stream_nest(1 << 20);
  const auto cg = codegen_profile(OptLevel::kO2);
  std::vector<Transformation> candidates;
  Transformation tile;
  tile.tile = true;
  tile.tile_bytes = 128 * 1024;
  candidates.push_back(tile);
  Transformation illegal;
  illegal.interchange = true;
  illegal.interchange_to_inner = 99;  // no such array: pruned
  candidates.push_back(illegal);
  Transformation par;
  par.parallelize = true;
  par.num_threads = 8;
  par.parallel_level = 0;
  candidates.push_back(par);

  const auto plan = model.best_plan(nest, cg, candidates);
  // Parallel + nothing beats serial identity on a big nest.
  EXPECT_NE(plan.chosen.name(), "identity");
  // Pruned candidate is absent from the considered list.
  for (const auto& [name, _] : plan.considered) {
    EXPECT_EQ(name.find("a99"), std::string::npos);
  }
  EXPECT_GE(plan.considered.size(), 2u);
}

TEST(Feedback, MeasuredMissRatesOverrideModel) {
  CostModel model(MachineConfig::altix300());
  auto nest = stream_nest(1 << 20);
  const auto static_pred = model.predict_cache(nest);

  FeedbackData fb;
  RegionFeedback rf;
  rf.l3_miss_rate = 0.0;  // measured: everything fits after all
  rf.l2_miss_rate = 0.0;
  fb.set("stream_loop", rf);
  model.set_feedback(&fb);
  const auto fed = model.predict_cache(nest);
  EXPECT_LT(fed.stall_cycles, static_pred.stall_cycles);
  EXPECT_DOUBLE_EQ(fed.l3_misses, 0.0);
}

TEST(Feedback, RemoteRatioRaisesLatencyAndImbalanceAddsIdle) {
  CostModel model(MachineConfig::altix300());
  auto nest = stream_nest(1 << 20);
  const auto cg = codegen_profile(OptLevel::kO2);

  FeedbackData fb;
  RegionFeedback rf;
  rf.remote_access_ratio = 1.0;  // all remote
  rf.imbalance_cv = 0.5;
  fb.set("stream_loop", rf);

  const auto before = model.predict_cache(nest).stall_cycles;
  model.set_feedback(&fb);
  EXPECT_GT(model.predict_cache(nest).stall_cycles, before);

  Transformation par;
  par.parallelize = true;
  par.num_threads = 8;
  const auto cost = model.evaluate(nest, cg, par);
  EXPECT_GT(cost.imbalance_cycles, 0.0);
}

TEST(Feedback, FileRoundTrip) {
  namespace fs = std::filesystem;
  const auto path = fs::temp_directory_path() /
                    ("perfknow_fb_" + std::to_string(::getpid()) + ".tsv");
  FeedbackData fb;
  RegionFeedback rf;
  rf.measured_time_usec = 123.5;
  rf.calls = 7;
  rf.l3_miss_rate = 0.25;
  rf.imbalance_cv = 0.4;
  rf.recommendation = "use schedule(dynamic,1)";
  fb.set("outer_loop", rf);
  RegionFeedback partial;
  partial.measured_time_usec = 1.0;
  fb.set("other", partial);
  fb.save(path);

  const auto back = FeedbackData::load(path);
  ASSERT_EQ(back.size(), 2u);
  const auto* r = back.find("outer_loop");
  ASSERT_NE(r, nullptr);
  EXPECT_DOUBLE_EQ(r->measured_time_usec, 123.5);
  ASSERT_TRUE(r->l3_miss_rate.has_value());
  EXPECT_DOUBLE_EQ(*r->l3_miss_rate, 0.25);
  EXPECT_FALSE(r->l2_miss_rate.has_value());
  EXPECT_EQ(r->recommendation, "use schedule(dynamic,1)");
  EXPECT_FALSE(back.find("other")->imbalance_cv.has_value());
  EXPECT_EQ(back.find("missing"), nullptr);
  fs::remove(path);
}

TEST(Compiler, RegistersRegionsWithMapIds) {
  Compiler compiler(MachineConfig::altix300());
  CompileOptions opts;
  opts.instrumentation = pk::instrument::InstrumentationFlags::full_detail();
  const auto prog = compiler.compile(small_program(), opts);
  EXPECT_EQ(prog.name, "demo");
  // Procedures + loop + callsite registered, unique map ids.
  ASSERT_GE(prog.registry.size(), 4u);
  std::set<std::uint32_t> ids;
  for (const auto& r : prog.registry.all()) ids.insert(r.map_id);
  EXPECT_EQ(ids.size(), prog.registry.size());
  EXPECT_TRUE(prog.registry.find("kernel").has_value());
  EXPECT_TRUE(prog.registry.find("stream_loop").has_value());
  EXPECT_TRUE(prog.registry.find("kernel -> helper").has_value());
  EXPECT_NO_THROW((void)prog.loop("stream_loop"));
  EXPECT_THROW((void)prog.loop("nope"), pk::NotFoundError);
}

TEST(Compiler, LnoRunsOnlyAtO3) {
  Compiler compiler(MachineConfig::altix300());
  CompileOptions o2;
  o2.opt = OptLevel::kO2;
  const auto prog2 = compiler.compile(small_program(), o2);
  // At O2 the only candidates are the parallel ones (none: 1 thread).
  EXPECT_EQ(prog2.loops[0].plan.considered.size(), 1u);  // identity only

  CompileOptions o3;
  o3.opt = OptLevel::kO3;
  const auto prog3 = compiler.compile(small_program(), o3);
  EXPECT_GT(prog3.loops[0].plan.considered.size(), 1u);
}

TEST(Compiler, EmptyProgramRejected) {
  Compiler compiler(MachineConfig::altix300());
  EXPECT_THROW(compiler.compile(ProgramIR{}, CompileOptions{}),
               pk::InvalidArgumentError);
  ProgramIR bad;
  bad.name = "bad";
  Procedure p;
  p.name = "p";
  LoopNest nest;
  nest.name = "no_trips";
  p.loops.push_back(nest);
  bad.procedures.push_back(p);
  EXPECT_THROW(compiler.compile(bad, CompileOptions{}),
               pk::InvalidArgumentError);
}

TEST(KernelWork, LoweringHonorsCodegenAndScale) {
  const auto nest = stream_nest(1000);
  const auto cg0 = codegen_profile(OptLevel::kO0);
  const auto cg2 = codegen_profile(OptLevel::kO2);
  const std::map<std::string, std::uint64_t> bases = {{"x", 0x10000}};

  const auto w0 = kernel_work_for_nest(nest, cg0, 1.0, bases);
  const auto w2 = kernel_work_for_nest(nest, cg2, 1.0, bases);
  // FLOPs invariant; integer work scales with the instruction scale.
  EXPECT_DOUBLE_EQ(w0.flops, w2.flops);
  EXPECT_GT(w0.int_instructions, 5.0 * w2.int_instructions);
  // Stack-spill stream present at O0, with far more traffic than at O2.
  ASSERT_GE(w0.streams.size(), 2u);
  EXPECT_GT(w0.streams.back().passes, w2.streams.back().passes);
  // Array stream got the right base.
  EXPECT_EQ(w0.streams.front().base, 0x10000u);

  const auto half = kernel_work_for_nest(nest, cg0, 0.5, bases);
  EXPECT_DOUBLE_EQ(half.flops, w0.flops / 2.0);
  EXPECT_EQ(half.streams.front().extent_bytes,
            w0.streams.front().extent_bytes / 2);
  EXPECT_THROW(kernel_work_for_nest(nest, cg0, 0.0, bases),
               pk::InvalidArgumentError);
}

TEST(Ir, ProgramLookupAndTotals) {
  const auto ir = small_program();
  EXPECT_TRUE(ir.has_procedure("kernel"));
  EXPECT_FALSE(ir.has_procedure("nope"));
  EXPECT_THROW((void)ir.procedure("nope"), pk::NotFoundError);
  LoopNest nest;
  nest.trip_counts = {4, 5, 6};
  EXPECT_EQ(nest.total_iterations(), 120u);
  EXPECT_EQ(to_string(WhirlLevel::kHigh), "HIGH");
  EXPECT_EQ(to_string(OptLevel::kO1), "O1");
}

TEST(PhaseMap, ResolvesAcrossLevelsWithFallback) {
  PhaseMap pm;
  pm.record(WhirlLevel::kVeryHigh, 7, "matxvec_loop");
  pm.record(WhirlLevel::kHigh, 7, "matxvec_loop[tile(131072B)]");
  pm.record_derivation(WhirlLevel::kHigh, 7, "tile(131072B)");
  pm.record(WhirlLevel::kVeryHigh, 9, "diff_coeff");

  EXPECT_EQ(pm.resolve(7, WhirlLevel::kVeryHigh), "matxvec_loop");
  EXPECT_EQ(pm.resolve(7, WhirlLevel::kHigh),
            "matxvec_loop[tile(131072B)]");
  // No later recording: the HIGH node persists through CG.
  EXPECT_EQ(pm.resolve(7, WhirlLevel::kVeryLow),
            "matxvec_loop[tile(131072B)]");
  // Untouched construct persists from the source level.
  EXPECT_EQ(pm.resolve(9, WhirlLevel::kVeryLow), "diff_coeff");
  const auto chain = pm.derivation_chain(7, WhirlLevel::kVeryLow);
  ASSERT_EQ(chain.size(), 1u);
  EXPECT_EQ(chain[0], "tile(131072B)");
  EXPECT_TRUE(pm.derivation_chain(9, WhirlLevel::kVeryLow).empty());
  EXPECT_THROW((void)pm.resolve(99, WhirlLevel::kHigh), pk::NotFoundError);
  EXPECT_EQ(pm.ids().size(), 2u);
  EXPECT_NE(pm.str().find("id 7"), std::string::npos);
}

TEST(PhaseMap, CompilerRecordsConstructsAndLnoRewrites) {
  Compiler compiler(MachineConfig::altix300());
  CompileOptions o3;
  o3.opt = OptLevel::kO3;
  const auto prog = compiler.compile(small_program(), o3);
  // Every registered region has a VERY_HIGH node under its map_id.
  for (const auto& r : prog.registry.all()) {
    EXPECT_NO_THROW(
        (void)prog.phase_map.resolve(r.map_id, WhirlLevel::kVeryHigh));
  }
  // The stream loop was transformed by the LNO: its HIGH node differs
  // from the source node when a non-identity plan was chosen.
  const auto loop_region =
      prog.registry.get(*prog.registry.find("stream_loop"));
  const auto& src =
      prog.phase_map.resolve(loop_region.map_id, WhirlLevel::kVeryHigh);
  EXPECT_EQ(src, "stream_loop");
  if (prog.loops[0].plan.chosen.name() != "identity") {
    EXPECT_NE(prog.phase_map.resolve(loop_region.map_id, WhirlLevel::kHigh),
              src);
    EXPECT_FALSE(
        prog.phase_map.derivation_chain(loop_region.map_id,
                                        WhirlLevel::kVeryLow)
            .empty());
  }
}
