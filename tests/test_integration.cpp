// Integration tests: the full pipelines the paper demonstrates, crossing
// every module boundary — workload -> profile -> repository -> analysis
// -> facts -> rules -> diagnosis -> (feedback to the compiler).
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "analysis/facts.hpp"
#include "analysis/operations.hpp"
#include "apps/genidlest/genidlest.hpp"
#include "apps/msap/msap.hpp"
#include "machine/machine.hpp"
#include "openuh/compiler.hpp"
#include "perfdmf/repository.hpp"
#include "perfdmf/tau_format.hpp"
#include "power/power_model.hpp"
#include "rules/rulebases.hpp"
#include "script/bindings.hpp"

namespace pk = perfknow;
namespace gen = pk::apps::genidlest;
namespace msap = pk::apps::msap;
using pk::machine::Machine;
using pk::machine::MachineConfig;
using pk::runtime::Schedule;

namespace {

gen::GenResult run_gen(unsigned procs, gen::Model model, bool optimized) {
  Machine machine(MachineConfig::altix3600());
  auto cfg = gen::GenConfig::rib90();
  cfg.nprocs = procs;
  cfg.model = model;
  cfg.optimized = optimized;
  return gen::run_genidlest(machine, cfg);
}

}  // namespace

TEST(Integration, MsapImbalanceDiagnosisFiresAndFixWorks) {
  Machine machine(MachineConfig::altix300());
  msap::MsapConfig cfg;
  cfg.threads = 16;
  cfg.schedule = Schedule::static_even();
  const auto bad = msap::run_msap(machine, cfg);

  pk::rules::RuleHarness harness;
  pk::rules::builtin::use(harness, pk::rules::builtin::load_imbalance());
  pk::analysis::assert_load_balance_facts(harness, bad.trial);
  harness.process_rules();
  const auto diags = harness.diagnoses_for("LoadImbalance");
  ASSERT_GE(diags.size(), 1u);
  EXPECT_EQ(diags[0].event, "inner_loop");
  EXPECT_NE(diags[0].recommendation.find("dynamic,1"), std::string::npos);

  // Apply the fix; the diagnosis disappears and the run gets faster.
  Machine machine2(MachineConfig::altix300());
  cfg.schedule = Schedule::dynamic(1);
  const auto good = msap::run_msap(machine2, cfg);
  EXPECT_LT(good.elapsed_cycles, bad.elapsed_cycles);
  pk::rules::RuleHarness clean;
  pk::rules::builtin::use(clean, pk::rules::builtin::load_imbalance());
  pk::analysis::assert_load_balance_facts(clean, good.trial);
  clean.process_rules();
  EXPECT_TRUE(clean.diagnoses_for("LoadImbalance").empty());
}

TEST(Integration, GenidlestLocalityChainIdentifiesExchangeVar) {
  const auto unopt = run_gen(16, gen::Model::kOpenMP, false);
  auto trial = unopt.trial;

  pk::rules::RuleHarness harness;
  pk::rules::builtin::use(harness, pk::rules::builtin::openuh_rules());
  pk::analysis::derive_metric(trial, "BACK_END_BUBBLE_ALL", "CPU_CYCLES",
                              pk::analysis::DeriveOp::kDivide);
  pk::analysis::derive_metric(trial, "FP_OPS",
                              "(BACK_END_BUBBLE_ALL / CPU_CYCLES)",
                              pk::analysis::DeriveOp::kMultiply);
  pk::analysis::assert_compare_to_average_facts(
      harness, trial, "(FP_OPS * (BACK_END_BUBBLE_ALL / CPU_CYCLES))");
  pk::analysis::assert_stall_facts(harness, trial);
  pk::analysis::assert_memory_locality_facts(harness, trial);

  auto base = std::make_shared<pk::profile::Trial>(
      run_gen(1, gen::Model::kOpenMP, false).trial);
  auto at16 = std::make_shared<pk::profile::Trial>(unopt.trial);
  pk::analysis::ScalabilityAnalysis scaling({base, at16});
  pk::analysis::assert_scaling_facts(harness, scaling);

  harness.process_rules();
  // The computation procedures are flagged inefficient and
  // memory/FP-stall dominated.
  EXPECT_GE(harness.diagnoses_for("HighInefficiency").size(), 2u);
  EXPECT_GE(harness.diagnoses_for("MemoryFpStallDominated").size(), 2u);
  // The locality rules blame first-touch placement...
  EXPECT_GE(harness.diagnoses_for("RemoteMemoryDominates").size(), 2u);
  // ...and exchange_var__ is diagnosed as a sequential bottleneck.
  bool exchange_flagged = false;
  for (const auto& d : harness.diagnoses_for("SequentialBottleneck")) {
    if (d.event == "exchange_var__") exchange_flagged = true;
  }
  EXPECT_TRUE(exchange_flagged);
}

TEST(Integration, OptimizedRunProducesNoLocalityDiagnoses) {
  const auto opt = run_gen(16, gen::Model::kOpenMP, true);
  pk::rules::RuleHarness harness;
  pk::rules::builtin::use(harness, pk::rules::builtin::memory_locality());
  pk::analysis::assert_memory_locality_facts(harness, opt.trial);
  harness.process_rules();
  EXPECT_TRUE(harness.diagnoses_for("RemoteMemoryDominates").empty());
}

TEST(Integration, FeedbackClosesTheCompilerLoop) {
  // 1. Measure the unoptimized OpenMP run.
  const auto unopt = run_gen(16, gen::Model::kOpenMP, false);
  const auto& trial = unopt.trial;

  // 2. Export measured per-region facts as compiler feedback.
  pk::openuh::FeedbackData feedback;
  const auto l3 = trial.metric_id("L3_MISSES");
  const auto remote = trial.metric_id("REMOTE_MEMORY_ACCESSES");
  const auto time = trial.metric_id("TIME");
  for (const char* region : {"matxvec", "pc_jac_glb"}) {
    const auto e = trial.event_id(region);
    pk::openuh::RegionFeedback rf;
    rf.measured_time_usec = trial.mean_exclusive(e, time);
    const double misses = trial.mean_exclusive(e, l3);
    rf.remote_access_ratio =
        misses == 0.0 ? 0.0 : trial.mean_exclusive(e, remote) / misses;
    // Loop nests are named <proc>_loop in the IR.
    feedback.set(std::string(region) + "_loop", rf);
  }
  ASSERT_GT(*feedback.find("matxvec_loop")->remote_access_ratio, 0.5);

  // 3. Re-compile with feedback: the cost model now predicts remote
  // latency and its loop-cost estimate rises accordingly.
  pk::openuh::Compiler compiler(MachineConfig::altix3600());
  pk::openuh::CompileOptions plain;
  pk::openuh::CompileOptions fed;
  fed.feedback = &feedback;
  // Build the same IR the app uses by compiling through the app config.
  Machine m1(MachineConfig::altix3600());
  auto cfg = gen::GenConfig::rib90();
  // Private rebuild of the IR isn't exposed; instead verify on a nest
  // with the same name through the cost model directly.
  pk::openuh::CostModel model(MachineConfig::altix3600());
  pk::openuh::LoopNest nest;
  nest.name = "matxvec_loop";
  nest.trip_counts = {4, 128, 128};
  nest.flops_per_iter = 13.0;
  pk::openuh::ArrayRef a;
  a.name = "coef";
  a.extent_elements = 7ull * 4 * 128 * 128;
  nest.arrays.push_back(a);
  const auto cg = pk::openuh::codegen_profile(pk::openuh::OptLevel::kO2);
  const double before = model.evaluate(nest, cg).total();
  model.set_feedback(&feedback);
  const double after = model.evaluate(nest, cg).total();
  EXPECT_GT(after, 1.5 * before);
  (void)compiler;
  (void)plain;
  (void)cfg;
  (void)m1;
}

TEST(Integration, RepositoryScriptAndTauExportRoundTrip) {
  namespace fs = std::filesystem;
  // Profile -> repository -> script analysis -> TAU export -> re-import.
  Machine machine(MachineConfig::altix300());
  msap::MsapConfig cfg;
  cfg.threads = 8;
  cfg.schedule = Schedule::dynamic(1);  // balanced: inner_loop dominates
  auto result = msap::run_msap(machine, cfg);
  

  pk::perfdmf::Repository repo;
  auto trial = std::make_shared<pk::profile::Trial>(std::move(result.trial));
  repo.put("MSAP", "tuning", trial);

  pk::script::AnalysisSession session(pk::script::SessionOptions{&repo});
  session.run(R"(
t = TrialMeanResult(Utilities.getTrial("MSAP", "tuning", "msap_dynamic,1_8t"))
print(t.getMainEvent())
print(topEvents(t, 1)[0])
)");
  EXPECT_EQ(session.output()[0], "main");
  EXPECT_EQ(session.output()[1], "inner_loop");

  const auto dir = fs::temp_directory_path() /
                   ("perfknow_int_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  pk::perfdmf::write_tau_profiles(*trial, "TIME", dir);
  const auto back = pk::perfdmf::read_tau_profiles(dir);
  EXPECT_EQ(back.thread_count(), 8u);
  const auto m = back.metric_id("TIME");
  EXPECT_NEAR(back.mean_exclusive(back.event_id("inner_loop"), m),
              trial->mean_exclusive(trial->event_id("inner_loop"),
                                    trial->metric_id("TIME")),
              1e-6);
  fs::remove_all(dir);
}

TEST(Integration, PowerStudyRecommendationsMatchPaper) {
  pk::power::PowerStudy study(pk::power::PowerModel::itanium2());
  for (const auto level :
       {pk::openuh::OptLevel::kO0, pk::openuh::OptLevel::kO1,
        pk::openuh::OptLevel::kO2, pk::openuh::OptLevel::kO3}) {
    Machine machine(MachineConfig::altix3600());
    auto cfg = gen::GenConfig::rib90();
    cfg.model = gen::Model::kMpi;
    cfg.optimized = true;
    cfg.nprocs = 16;
    cfg.opt = level;
    const auto r = gen::run_genidlest(machine, cfg);
    study.add(level, r.aggregate_counters, r.elapsed_seconds, 16);
  }
  pk::rules::RuleHarness harness;
  pk::rules::builtin::use(harness, pk::rules::builtin::power());
  study.assert_facts(harness);
  harness.process_rules();
  // The paper's exact conclusion: O0 low power, O3 low energy, O2 both.
  ASSERT_EQ(harness.diagnoses_for("LowPowerSetting").size(), 1u);
  EXPECT_EQ(harness.diagnoses_for("LowPowerSetting")[0].event, "O0");
  ASSERT_EQ(harness.diagnoses_for("LowEnergySetting").size(), 1u);
  EXPECT_EQ(harness.diagnoses_for("LowEnergySetting")[0].event, "O3");
  ASSERT_EQ(harness.diagnoses_for("BalancedSetting").size(), 1u);
  EXPECT_EQ(harness.diagnoses_for("BalancedSetting")[0].event, "O2");
  // Table I shape assertions.
  const auto table = study.relative_table();
  const auto& time = table[0].second;
  EXPECT_GT(time[0], time[1]);
  EXPECT_GT(time[1], time[2]);
  EXPECT_GT(time[2], time[3]);
  const auto& instr = table[1].second;
  EXPECT_GT(instr[1], 3.0 * instr[2]);            // collapse at O2
  EXPECT_NEAR(instr[2], instr[3], instr[2] * 0.2);  // flat O2->O3
  const auto& watts = table[5].second;
  for (const double w : watts) {
    EXPECT_NEAR(w, 1.0, 0.2);  // power varies only slightly
  }
  const auto& fpj = table[7].second;
  EXPECT_GT(fpj[3], fpj[2]);
  EXPECT_GT(fpj[2], fpj[1]);
  EXPECT_GT(fpj[1], 1.5);
}

TEST(Integration, SelectiveInstrumentationTwoPhaseWorkflow) {
  // Phase 1: procedures only -> find the bottleneck procedure.
  // Phase 2: full detail on the flagged region (the paper's §III-B
  // "collection of in-depth performance information" run).
  pk::openuh::Compiler compiler(MachineConfig::altix300());
  pk::openuh::ProgramIR ir;
  ir.name = "app";
  pk::openuh::Procedure hot;
  hot.name = "hot_proc";
  pk::openuh::LoopNest nest;
  nest.name = "hot_loop";
  nest.trip_counts = {1000, 100};
  nest.flops_per_iter = 10;
  hot.loops.push_back(nest);
  ir.procedures.push_back(hot);

  pk::openuh::CompileOptions coarse;
  coarse.instrumentation =
      pk::instrument::InstrumentationFlags::procedures_only();
  const auto p1 = compiler.compile(ir, coarse);
  EXPECT_TRUE(p1.is_instrumented(*p1.registry.find("hot_proc")));
  EXPECT_FALSE(p1.is_instrumented(*p1.registry.find("hot_loop")));

  pk::openuh::CompileOptions fine;
  fine.instrumentation =
      pk::instrument::InstrumentationFlags::full_detail();
  const auto p2 = compiler.compile(ir, fine);
  EXPECT_TRUE(p2.is_instrumented(*p2.registry.find("hot_loop")));
}
